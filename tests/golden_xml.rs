//! Golden corpus for the unranked-XML pipeline: checked-in
//! `(transducer, encoding, XML input, XML output)` quadruples under
//! `tests/golden_xml/`, each run through **all four** evaluation modes
//! of the engine's encoded path (`DocFormat::Encoded`) and asserted
//! byte-identical against the expected XML text — the documents are
//! genuine unranked XML, encoded incrementally off the SAX tokenizer
//! and decoded back by the streaming writers.
//!
//! The corpus covers: the fc/ns encoding with deletion (pruned subtrees
//! are skipped, not built), the paper's `xmlflip` over a DTD-encoding
//! pair with distinct input/output schemas, and valued-pcdata text
//! handling through an alternating field swap.

use std::path::Path;
use std::sync::Arc;

use xtt::engine::{DocFormat, Engine, EngineOptions, EvalMode, XmlCodec};
use xtt::transducer::parse_dtop;
use xtt::xml::{Dtd, Encoding, PcDataMode};

struct GoldenXmlCase {
    name: String,
    transducer: String,
    encoding: String,
    input_dtd: String,
    output_dtd: String,
    pcdata: Option<Vec<String>>,
    input: String,
    expected: String,
}

fn parse_case(name: &str, text: &str) -> GoldenXmlCase {
    let mut sections: std::collections::HashMap<String, String> = Default::default();
    let mut current = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("//") || (trimmed.is_empty() && current != "transducer") {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("==") {
            current = header.trim().to_owned();
            continue;
        }
        assert!(
            !current.is_empty(),
            "{name}: content before a section: {line}"
        );
        let section = sections.entry(current.clone()).or_default();
        section.push_str(trimmed);
        section.push('\n');
    }
    let take = |key: &str| sections.get(key).map(|s| s.trim().to_owned());
    let required =
        |key: &str| take(key).unwrap_or_else(|| panic!("{name}: missing == {key} section"));
    let input_dtd = take("input-dtd").unwrap_or_default();
    GoldenXmlCase {
        name: name.to_owned(),
        transducer: required("transducer"),
        encoding: required("encoding"),
        output_dtd: take("output-dtd").unwrap_or_else(|| input_dtd.clone()),
        input_dtd,
        pcdata: take("pcdata").map(|v| v.split(',').map(|s| s.trim().to_owned()).collect()),
        input: required("input"),
        expected: required("expected"),
    }
}

fn load_corpus() -> Vec<GoldenXmlCase> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_xml");
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/golden_xml exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "golden") {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable golden file");
            cases.push(parse_case(&name, &text));
        }
    }
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(
        cases.len() >= 3,
        "XML golden corpus shrank: {}",
        cases.len()
    );
    cases
}

fn codec_for(case: &GoldenXmlCase) -> XmlCodec {
    match case.encoding.as_str() {
        "fcns" => XmlCodec::fcns(),
        "dtd" => {
            let mode = match &case.pcdata {
                None => PcDataMode::Abstract,
                Some(values) => PcDataMode::Valued(values.clone()),
            };
            let parse = |text: &str| {
                Arc::new(Encoding::new(
                    Dtd::parse(text).unwrap_or_else(|e| panic!("{}: bad DTD: {e}", case.name)),
                    mode.clone(),
                ))
            };
            XmlCodec::dtd_pair(parse(&case.input_dtd), parse(&case.output_dtd))
        }
        other => panic!("{}: unknown encoding kind {other:?}", case.name),
    }
}

/// Every case, through every eval mode (and both validation settings),
/// produces exactly the expected XML text.
#[test]
fn golden_xml_corpus_all_modes_exact() {
    for case in load_corpus() {
        let dtop = parse_dtop(&case.transducer)
            .unwrap_or_else(|e| panic!("{}: bad transducer: {e}", case.name));
        let format = DocFormat::Encoded(codec_for(&case));
        for validate in [false, true] {
            let engine = Engine::new(EngineOptions {
                workers: 1,
                validate,
                ..EngineOptions::default()
            });
            for mode in [
                EvalMode::Compiled,
                EvalMode::Streaming,
                EvalMode::Dag,
                EvalMode::TreeWalk,
            ] {
                let got = engine
                    .transform_with(&dtop, &case.input, mode, format.clone())
                    .unwrap_or_else(|e| {
                        panic!("{} [{mode:?} validate={validate}]: {e}", case.name)
                    });
                assert_eq!(
                    got, case.expected,
                    "{} [{mode:?} validate={validate}] output differs",
                    case.name
                );
            }
        }
    }
}

/// Streamed emission (`Engine::transform_streaming_with`) produces the
/// exact bytes of tree-at-root-close emission on every golden case,
/// with validation on and off — the refactor changed *when* bytes
/// leave, never *which* bytes.
#[test]
fn golden_xml_streamed_emission_is_byte_identical() {
    for case in load_corpus() {
        let dtop = parse_dtop(&case.transducer)
            .unwrap_or_else(|e| panic!("{}: bad transducer: {e}", case.name));
        let format = DocFormat::Encoded(codec_for(&case));
        let engine = Engine::new(EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        });
        for validate in [false, true] {
            let batch = engine
                .transform_with(&dtop, &case.input, EvalMode::Streaming, format.clone())
                .unwrap_or_else(|e| panic!("{} [batch validate={validate}]: {e}", case.name));
            let mut streamed = Vec::new();
            let outcome = engine
                .transform_streaming_with(
                    &dtop,
                    &case.input,
                    format.clone(),
                    validate,
                    &mut streamed,
                )
                .unwrap_or_else(|e| panic!("{} [streamed validate={validate}]: {e}", case.name));
            assert_eq!(
                String::from_utf8(streamed).expect("XML output is UTF-8"),
                batch,
                "{} [validate={validate}]: streamed bytes differ from tree-at-root-close",
                case.name
            );
            assert_eq!(batch, case.expected, "{}: output differs", case.name);
            assert_eq!(
                outcome.bytes_written as usize,
                case.expected.len(),
                "{}: reported byte count is off",
                case.name
            );
        }
    }
}

/// The expected output is itself a fixed point of parse→serialize (the
/// corpus files stay in the writers' canonical form).
#[test]
fn golden_xml_expected_is_canonical() {
    for case in load_corpus() {
        let parsed = xtt::xml::parse_xml(&case.expected)
            .unwrap_or_else(|e| panic!("{}: expected is not XML: {e}", case.name));
        assert_eq!(
            xtt::xml::write_xml(&parsed),
            case.expected,
            "{}: expected XML is not canonical",
            case.name
        );
    }
}
