//! Golden-corpus tests: checked-in `(transducer, input, expected)`
//! triples under `tests/golden/`, each run through all four evaluation
//! paths — the research tree-walk evaluator, the compiled interpreter,
//! the streaming evaluator, and the DAG evaluator — and diffed against
//! the expected output *exactly*. `!undefined` expects all four paths to
//! agree the input is outside the domain; `!type-error at <path>: …`
//! additionally pins the *diagnostic* that guarded (validate-mode)
//! evaluation must report, bit-identical across tree/stream/dag/walk.
//!
//! The corpus covers the paper's behavioral families: flipping
//! (permutation at the root), the library transformation, copying
//! (exponential output), deletion, relabeling, constant axioms, and
//! partial (undefined) regions.

use std::path::Path;

use xtt::engine::{compile, EvalScratch, StreamEvaluator};
use xtt::transducer::{eval, parse_dtop};
use xtt::trees::{parse_tree, Tree, TreeDag};

struct GoldenCase {
    name: String,
    transducer: String,
    input: String,
    expected: String,
}

fn parse_case(name: &str, text: &str) -> GoldenCase {
    let mut section = String::new();
    let mut transducer = String::new();
    let mut input = String::new();
    let mut expected = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("//") || trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("==") {
            section = header.trim().to_owned();
            continue;
        }
        match section.as_str() {
            "transducer" => {
                transducer.push_str(trimmed);
                transducer.push('\n');
            }
            "input" => input.push_str(trimmed),
            "expected" => expected.push_str(trimmed),
            other => panic!("{name}: line outside a known section ({other:?}): {line}"),
        }
    }
    assert!(!transducer.is_empty(), "{name}: missing == transducer");
    assert!(!input.is_empty(), "{name}: missing == input");
    assert!(!expected.is_empty(), "{name}: missing == expected");
    GoldenCase {
        name: name.to_owned(),
        transducer,
        input,
        expected,
    }
}

fn load_corpus() -> Vec<GoldenCase> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/golden exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "golden") {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable golden file");
            cases.push(parse_case(&name, &text));
        }
    }
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(
        cases.len() >= 10,
        "golden corpus shrank: {} cases",
        cases.len()
    );
    cases
}

/// All four evaluation paths on one input; `None` = outside the domain.
fn run_all_paths(case: &GoldenCase, input: &Tree) -> Vec<(&'static str, Option<Tree>)> {
    let dtop = parse_dtop(&case.transducer)
        .unwrap_or_else(|e| panic!("{}: bad transducer: {e}", case.name));
    let compiled = compile(&dtop).unwrap_or_else(|e| panic!("{}: compile failed: {e}", case.name));
    let mut scratch = EvalScratch::new();
    let mut stream = StreamEvaluator::new();
    let mut dag = TreeDag::new();
    let mut dag_scratch = EvalScratch::new();
    vec![
        ("eval", eval(&dtop, input)),
        ("compiled", compiled.eval(input, &mut scratch)),
        ("stream", stream.eval_tree(&compiled, input)),
        (
            "dag",
            compiled
                .eval_dag(input, &mut dag_scratch, &mut dag)
                .map(|id| dag.extract(id)),
        ),
    ]
}

#[test]
fn golden_corpus_all_paths_exact() {
    for case in load_corpus() {
        let input =
            parse_tree(&case.input).unwrap_or_else(|e| panic!("{}: bad input: {e}", case.name));
        for (path, result) in run_all_paths(&case, &input) {
            // Both failure expectations mean "outside the domain" for the
            // unguarded paths; the diagnostic itself is pinned separately.
            let expect_undefined =
                case.expected == "!undefined" || case.expected.starts_with("!type-error ");
            match (expect_undefined, result) {
                (true, None) => {}
                (true, Some(got)) => {
                    panic!("{} [{path}]: expected undefined, got {got}", case.name)
                }
                (false, None) => panic!(
                    "{} [{path}]: expected {}, got undefined",
                    case.name, case.expected
                ),
                (false, Some(got)) => {
                    assert_eq!(
                        got.to_string(),
                        case.expected,
                        "{} [{path}] output differs",
                        case.name
                    )
                }
            }
        }
    }
}

/// The `!type-error` triples: guarded evaluation must report *exactly*
/// the pinned diagnostic — first-violation path included — bit-identical
/// across all four eval modes, through the engine's batch path too.
#[test]
fn golden_type_error_diagnostics_exact_across_guarded_modes() {
    use xtt::engine::{DocFormat, Engine, EngineError, EngineOptions, EvalMode};
    let engine = Engine::new(EngineOptions {
        validate: true,
        workers: 1,
        ..EngineOptions::default()
    });
    let mut covered = 0;
    for case in load_corpus() {
        if !case.expected.starts_with("!type-error ") {
            continue;
        }
        covered += 1;
        let dtop = parse_dtop(&case.transducer).unwrap();
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let err = engine
                .transform_with(&dtop, &case.input, mode, DocFormat::Term)
                .unwrap_err();
            let EngineError::Type(violation) = &err else {
                panic!(
                    "{} [{mode:?}]: expected a type error, got {err:?}",
                    case.name
                );
            };
            assert_eq!(
                format!("!type-error {violation}"),
                case.expected,
                "{} [{mode:?}] diagnostic differs",
                case.name
            );
        }
    }
    assert!(covered >= 3, "only {covered} type-error golden cases");
}

/// The corpus transducers round-trip through the engine's serving layer
/// too: `Engine::transform` returns the same text the golden file pins.
#[test]
fn golden_corpus_through_the_engine() {
    use xtt::engine::{Engine, EngineError, EngineOptions};
    let engine = Engine::new(EngineOptions::default());
    for case in load_corpus() {
        let dtop = parse_dtop(&case.transducer).unwrap();
        match engine.transform(&dtop, &case.input) {
            Ok(got) => assert_eq!(got, case.expected, "{} engine output differs", case.name),
            Err(EngineError::Undefined) => {
                assert!(
                    case.expected == "!undefined" || case.expected.starts_with("!type-error "),
                    "{} unexpectedly undefined",
                    case.name
                )
            }
            Err(e) => panic!("{}: engine error: {e}", case.name),
        }
    }
}
