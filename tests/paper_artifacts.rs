//! Every concrete artifact exhibited in the paper, checked end to end
//! through the facade crate.

use xtt::learn::strings::{sequential_to_dtop, StringAlphabet};
use xtt::prelude::*;
use xtt::transducer::examples as fixtures;
use xtt::transducer::{state_io_paths, QId};

/// §1: the minimal earliest uniform dtop Mflip has 4 states, the axiom
/// root(⟨q1,x0⟩,⟨q2,x0⟩), and the six listed rules.
#[test]
fn section1_mflip_shape() {
    let fix = fixtures::flip();
    let m = &fix.dtop;
    assert_eq!(m.state_count(), 4);
    let text = m.to_string();
    for expected in [
        "ax = root(<q1,x0>,<q2,x0>)",
        "q1(root(x1,x2)) -> <q3,x2>",
        "q2(root(x1,x2)) -> <q4,x1>",
        "q3(#) -> #",
        "q3(b(x1,x2)) -> b(#,<q3,x2>)",
        "q4(#) -> #",
        "q4(a(x1,x2)) -> a(#,<q4,x2>)",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in\n{text}");
    }
}

/// §1: τflip has exactly 4 equivalence classes with the listed shortest
/// representatives.
#[test]
fn section1_flip_io_paths() {
    let fix = fixtures::flip();
    let canon = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
    let paths: Vec<String> = state_io_paths(&canon)
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        paths,
        vec![
            "(ε; (root,1))",
            "(ε; (root,2))",
            "((root,2); (root,1))",
            "((root,1); (root,2))",
        ]
    );
}

/// §1 / Example 7: the four-pair characteristic sample infers Mflip.
#[test]
fn section1_flip_characteristic_sample() {
    let fix = fixtures::flip();
    let pairs = [
        ("root(#,#)", "root(#,#)"),
        ("root(a(#,#),#)", "root(#,a(#,#))"),
        ("root(#,b(#,#))", "root(b(#,#),#)"),
        (
            "root(a(#,a(#,#)),b(#,b(#,#)))",
            "root(b(#,b(#,#)),a(#,a(#,#)))",
        ),
    ];
    let sample = Sample::from_pairs(
        pairs
            .iter()
            .map(|(s, t)| (parse_tree(s).unwrap(), parse_tree(t).unwrap())),
    )
    .unwrap();
    let learned = rpni_dtop(&sample, &fix.domain, fix.dtop.output()).unwrap();
    assert!(equivalent(
        &learned.dtop,
        Some(&fix.domain),
        &fix.dtop,
        Some(&fix.domain)
    )
    .unwrap());
}

/// Example 1 + Example 2: M1 is earliest; M2 and M3 are not, and all three
/// are equivalent.
#[test]
fn examples_1_and_2_constant_transducers() {
    let m1 = fixtures::constant_m1();
    let m2 = fixtures::constant_m2();
    let m3 = fixtures::constant_m3();
    // all three map everything to b
    for input in ["a", "f(a,a)", "f(f(a,a),a)"] {
        let t = parse_tree(input).unwrap();
        for fix in [&m1, &m2, &m3] {
            assert_eq!(eval(&fix.dtop, &t).unwrap().to_string(), "b");
        }
    }
    // M1 already earliest (axiom only); the canonical form of M2/M3 is M1
    for fix in [&m2, &m3] {
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        assert_eq!(c.dtop.state_count(), 0);
        assert_eq!(c.dtop.show_rhs(c.dtop.axiom(), true), "b");
    }
}

/// Example 3: τ = {(f(0,0),0),(f(0,1),0),(f(1,0),0),(f(1,1),1)} has (ε,ε)
/// as its only io-path and is not realizable by any dtop — the learner
/// cannot find a consistent alignment.
#[test]
fn example_3_not_top_down() {
    let alpha = RankedAlphabet::from_pairs([("f", 2), ("0", 0), ("1", 0)]);
    let mut d = DttaBuilder::new(alpha.clone());
    let root = d.add_state("root");
    let bit = d.add_state("bit");
    d.add_transition(root, Symbol::new("f"), vec![bit, bit])
        .unwrap();
    d.add_transition(bit, Symbol::new("0"), vec![]).unwrap();
    d.add_transition(bit, Symbol::new("1"), vec![]).unwrap();
    let domain = d.build().unwrap();

    let sample = Sample::from_pairs([
        (parse_tree("f(0,0)").unwrap(), parse_tree("0").unwrap()),
        (parse_tree("f(0,1)").unwrap(), parse_tree("0").unwrap()),
        (parse_tree("f(1,0)").unwrap(), parse_tree("0").unwrap()),
        (parse_tree("f(1,1)").unwrap(), parse_tree("1").unwrap()),
    ])
    .unwrap();
    // out_S(ε) = ⊥, and no child alignment for the hole is functional:
    // p = ((f,1),ε) has residual {(0,0),(1,0),(1,1)} — not functional.
    let err = rpni_dtop(&sample, &domain, &alpha).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no functional alignment"), "{msg}");
}

/// Example 6: the four variants all define the restricted identity on
/// D = {f(c,a), f(c,b)}; their canonical form is M1 (2 states), and no
/// dtop realizes τ without inspection.
#[test]
fn example_6_compatibility() {
    let variants = [
        fixtures::example6_m0(),
        fixtures::example6_m1(),
        fixtures::example6_m2(),
        fixtures::example6_m3(),
    ];
    for fix in &variants {
        for (input, output) in [("f(c,a)", "f(c,a)"), ("f(c,b)", "f(c,b)")] {
            assert_eq!(
                eval(&fix.dtop, &parse_tree(input).unwrap()).unwrap(),
                parse_tree(output).unwrap()
            );
        }
    }
    let canon: Vec<Canonical> = variants
        .iter()
        .map(|f| canonical_form(&f.dtop, Some(&f.domain)).unwrap())
        .collect();
    for c in &canon[1..] {
        assert!(same_canonical(&canon[0], c));
    }
    assert_eq!(canon[0].dtop.state_count(), 2);
    // the deletion happens in the axiom: f(c, ⟨q0,x0⟩)
    assert_eq!(
        canon[0].dtop.show_rhs(canon[0].dtop.axiom(), true),
        "f(c,<q0,x0>)"
    );
}

/// §10: the library transformation — swap, copy, delete — is learned from
/// a generated characteristic sample; paper-vs-measured state counts are
/// recorded in EXPERIMENTS.md (paper: 14; measured: 15 — the paper's rule
/// table uses one state for two different node kinds).
#[test]
fn section10_library_learned() {
    let fix = fixtures::library();
    let target = canonical_form(&fix.dtop, None).unwrap();
    assert_eq!(target.dtop.state_count(), 15);
    let sample = characteristic_sample(&target).unwrap();
    let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
    assert!(same_canonical(&target, &got));

    // spot-check the translation of s2 (two books)
    let s2 = fixtures::library_input(2);
    assert_eq!(eval(&learned.dtop, &s2), eval(&fix.dtop, &s2),);
}

/// §10 intro claim: dtops over DTD encodings realize xmlflip; the encoded
/// example from §1 translates as displayed.
#[test]
fn section10_xmlflip_encoding() {
    use xtt::xml::xmlflip;
    let enc_in = xmlflip::input_encoding();
    let enc_out = xmlflip::output_encoding();
    let doc = xmlflip::document(2, 1);
    let input = enc_in.encode(&doc).unwrap();
    let m = xmlflip::target_dtop();
    let out = eval(&m, &input).unwrap();
    assert_eq!(out, enc_out.encode(&xmlflip::flip_document(&doc)).unwrap());
}

/// Related work: minimal subsequential string transducers over monadic
/// trees.
#[test]
fn string_transducers_via_monadic_trees() {
    let input = StringAlphabet::new(&['a', 'b']);
    let output = StringAlphabet::new(&['x', 'y']);
    // swap a↔b, as strings
    let delta = vec![
        ((0, 'a'), (0, "y".to_owned())),
        ((0, 'b'), (0, "x".to_owned())),
    ];
    let target = sequential_to_dtop(&input, &output, 1, &delta, &[(0, String::new())]).unwrap();
    assert_eq!(target.dtop.state_count(), 1);
    let sample = characteristic_sample(&target).unwrap();
    let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
    assert!(same_canonical(&target, &got));
}

/// Section 6's motivating counterexample: τ = {(f(c,a),a),(f(c,b),b)}
/// cannot be realized without inspection, but min(τ) with inspection
/// exists and deletes the first subtree.
#[test]
fn section6_deletion_needs_inspection() {
    let fix = fixtures::example6_m1();
    let canon = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
    // q0 deletes x1 (no call mentions it) — the c-subtree is checked only
    // by the domain automaton
    let q0 = QId(0);
    let f = Symbol::new("f");
    let rhs = canon.dtop.rule(q0, f).unwrap();
    let calls = rhs.calls();
    assert_eq!(calls.len(), 1);
    assert_eq!(calls[0].2, 1, "only x2 is used");
    // the evaluator alone accepts junk in the deleted slot...
    let junk = parse_tree("f(a,b)").unwrap();
    assert!(eval(&canon.dtop, &junk).is_some());
    // ...but the domain automaton rejects it
    assert!(!canon.domain.accepts(&junk));
}
