//! End-to-end pipelines through the facade crate: canonicalize →
//! characteristic sample → learn → compare, plus the XML round trips.

use xtt::prelude::*;
use xtt::transducer::examples as fixtures;
use xtt::xml::xmlflip;

/// The full Gold-style loop on every fixture family.
#[test]
fn teach_and_learn_all_families() {
    let cases: Vec<(&str, fixtures::Fixture)> = vec![
        ("flip", fixtures::flip()),
        ("constant_m1", fixtures::constant_m1()),
        ("constant_m2", fixtures::constant_m2()),
        ("example6_m0", fixtures::example6_m0()),
        ("example6_m2", fixtures::example6_m2()),
        ("library", fixtures::library()),
        ("monadic_to_binary", fixtures::monadic_to_binary()),
        ("flip_k(2)", fixtures::flip_k(2)),
        ("flip_k(5)", fixtures::flip_k(5)),
        ("relabel_chain(4)", fixtures::relabel_chain(4)),
    ];
    for (name, fix) in cases {
        let target = canonical_form(&fix.dtop, Some(&fix.domain))
            .unwrap_or_else(|e| panic!("{name}: canonicalization failed: {e}"));
        let sample = characteristic_sample(&target)
            .unwrap_or_else(|e| panic!("{name}: sample generation failed: {e}"));
        let report = check_characteristic_conditions(&target, &sample);
        assert!(report.ok(), "{name}: sample conditions violated:\n{report}");
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output())
            .unwrap_or_else(|e| panic!("{name}: learning failed: {e}"));
        let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
        assert!(
            same_canonical(&target, &got),
            "{name}: learned transducer differs\n== target ==\n{}\n== learned ==\n{}",
            target.dtop,
            got.dtop
        );
    }
}

/// Learned transducers agree with the targets on inputs far larger than
/// anything in the sample.
#[test]
fn learned_transducers_generalize() {
    let fix = fixtures::flip();
    let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
    let sample = characteristic_sample(&target).unwrap();
    let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    let max_sample_input = sample.pairs().iter().map(|(s, _)| s.size()).max().unwrap();
    for (n, m) in [(10usize, 10usize), (25, 3), (0, 40)] {
        let input = fixtures::flip_input(n, m);
        assert!(input.size() > max_sample_input);
        assert_eq!(
            eval(&learned.dtop, &input),
            eval(&fix.dtop, &input),
            "n={n} m={m}"
        );
    }
}

/// Characteristic samples survive arbitrary correct extensions — the
/// defining property of Gold-style learning from characteristic sets.
#[test]
fn supersets_do_not_change_the_result() {
    let fix = fixtures::flip_k(3);
    let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
    let mut sample = characteristic_sample(&target).unwrap();
    let baseline = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    // add 30 extra in-domain pairs of growing size
    let extra = xtt::automata::enumerate_language(&fix.domain, fix.domain.initial(), 30, 40);
    for s in extra {
        let t = eval(&fix.dtop, &s).unwrap();
        sample.add(s, t).unwrap();
    }
    let enlarged = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    let a = canonical_form(&baseline.dtop, Some(&target.domain)).unwrap();
    let b = canonical_form(&enlarged.dtop, Some(&target.domain)).unwrap();
    assert!(same_canonical(&a, &b));
}

/// XML in, XML out: the xmlflip pipeline over real documents.
#[test]
fn xml_document_pipeline() {
    let learner = xtt::xml::XmlLearner::new(
        xmlflip::input_dtd(),
        xmlflip::output_dtd(),
        PcDataMode::Abstract,
    );
    // teacher: produce characteristic document pairs via the ranked side
    let enc_in = xmlflip::input_encoding_pc();
    let enc_out = xmlflip::output_encoding_pc();
    let domain = enc_in.domain();
    let target = canonical_form(&xmlflip::target_dtop_pc(), Some(&domain)).unwrap();
    let pairs: Vec<(UTree, UTree)> = characteristic_sample(&target)
        .unwrap()
        .pairs()
        .iter()
        .map(|(s, t)| (enc_in.decode(s).unwrap(), enc_out.decode(t).unwrap()))
        .collect();

    let transformation = learner.learn(&pairs).unwrap();
    // apply to XML text
    let doc = parse_xml("<root><a/><a/><a/><b/><b/></root>").unwrap();
    let result = transformation.apply(&doc).unwrap();
    assert_eq!(
        xtt::xml::write_xml(&result),
        "<root><b/><b/><a/><a/><a/></root>"
    );
    // the stylesheet mentions every state as a mode
    let xslt = transformation.to_xslt();
    for q in transformation.dtop().states() {
        assert!(xslt.contains(&format!("mode=\"{}\"", transformation.dtop().state_name(q))));
    }
}

/// Equivalence checking distinguishes all pairwise-inequivalent fixtures
/// and confirms self-equivalence.
#[test]
fn equivalence_matrix() {
    let fixtures_list = [
        fixtures::flip(),
        fixtures::constant_m1(),
        fixtures::example6_m1(),
    ];
    for (i, a) in fixtures_list.iter().enumerate() {
        for (j, b) in fixtures_list.iter().enumerate() {
            // alphabets differ across some pairs; equivalence is still
            // well-defined (different domains/outputs ⇒ inequivalent)
            let result = equivalent(&a.dtop, Some(&a.domain), &b.dtop, Some(&b.domain)).unwrap();
            assert_eq!(result, i == j, "fixtures {i} vs {j}");
        }
    }
}

/// DAG representation of outputs: exponential outputs stay polynomial as
/// DAGs (the §1 remark).
#[test]
fn sample_outputs_as_dags() {
    use xtt::trees::TreeDag;
    let fix = fixtures::monadic_to_binary();
    let mut input = parse_tree("e").unwrap();
    for _ in 0..18 {
        input = Tree::node("f", vec![input]);
    }
    let output = eval(&fix.dtop, &input).unwrap();
    assert_eq!(output.size(), (1 << 19) - 1);
    let mut dag = TreeDag::new();
    let id = dag.insert(&output);
    let stats = dag.stats(id);
    assert_eq!(stats.dag_size, 19);
    assert!(stats.compression_ratio() > 20_000.0);
}
