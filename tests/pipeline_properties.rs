//! Property-based tests of the whole pipeline: randomized parameters,
//! randomized sample extensions, randomized inputs.

use proptest::prelude::*;
use xtt::prelude::*;
use xtt::transducer::examples as fixtures;

// earliest + minimize preserve the transduction on arbitrary domain trees.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn canonicalization_preserves_semantics(k in 1usize..5, sizes in proptest::collection::vec(0usize..6, 1..6)) {
        let fix = fixtures::flip_k(k);
        let canon = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        // build an input with the given list lengths (padded/truncated to k)
        let mut lists = sizes;
        lists.resize(k, 0);
        let input = flip_k_input(k, &lists);
        prop_assert!(fix.domain.accepts(&input));
        prop_assert_eq!(eval(&fix.dtop, &input), eval(&canon.dtop, &input));
    }

    #[test]
    fn learned_equals_target_on_random_inputs(k in 1usize..4, sizes in proptest::collection::vec(0usize..5, 1..4)) {
        let fix = fixtures::flip_k(k);
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let sample = characteristic_sample(&target).unwrap();
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        let mut lists = sizes;
        lists.resize(k, 0);
        let input = flip_k_input(k, &lists);
        prop_assert_eq!(eval(&learned.dtop, &input), eval(&fix.dtop, &input));
    }

    #[test]
    fn random_supersets_keep_the_sample_characteristic(extra in proptest::collection::vec(0usize..30, 0..8)) {
        let fix = fixtures::flip();
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let mut sample = characteristic_sample(&target).unwrap();
        let pool = xtt::automata::enumerate_language(&fix.domain, fix.domain.initial(), 30, 25);
        for i in extra {
            let s = pool[i % pool.len()].clone();
            let t = eval(&fix.dtop, &s).unwrap();
            sample.add(s, t).unwrap();
        }
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
        prop_assert!(same_canonical(&target, &got));
    }

    #[test]
    fn chain_lengths_learned_exactly(n in 1usize..7) {
        let fix = fixtures::relabel_chain(n);
        let target = canonical_form(&fix.dtop, None).unwrap();
        prop_assert_eq!(target.dtop.state_count(), n);
        let sample = characteristic_sample(&target).unwrap();
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        prop_assert_eq!(learned.dtop.state_count(), n);
    }

    #[test]
    fn xml_roundtrip_random_flip_documents(n in 0usize..8, m in 0usize..8) {
        use xtt::xml::xmlflip;
        let enc = xmlflip::input_encoding();
        let doc = xmlflip::document(n, m);
        let t = enc.encode(&doc).unwrap();
        prop_assert_eq!(enc.decode(&t).unwrap(), doc.clone());
        // path-closed style too
        let enc_pc = xmlflip::input_encoding_pc();
        let t2 = enc_pc.encode(&doc).unwrap();
        prop_assert_eq!(enc_pc.decode(&t2).unwrap(), doc.clone());
        // fc/ns as baseline
        let t3 = xtt::xml::fcns_encode(&doc);
        prop_assert_eq!(xtt::xml::fcns_decode(&t3).unwrap(), doc);
    }

    #[test]
    fn equivalence_agrees_with_behaviour(k1 in 1usize..4, k2 in 1usize..4) {
        let a = fixtures::flip_k(k1);
        let b = fixtures::flip_k(k2);
        let eq = equivalent(&a.dtop, Some(&a.domain), &b.dtop, Some(&b.domain)).unwrap();
        prop_assert_eq!(eq, k1 == k2);
    }
}

fn flip_k_input(k: usize, lists: &[usize]) -> Tree {
    let mut children = Vec::with_capacity(k);
    for (i, &len) in lists.iter().enumerate().take(k) {
        let letter = format!("c{i}");
        let mut list = Tree::leaf_named("#");
        for _ in 0..len {
            list = Tree::node(&letter, vec![Tree::leaf_named("#"), list]);
        }
        children.push(list);
    }
    Tree::node("root", children)
}
