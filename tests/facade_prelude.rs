//! The public facade, exercised through `xtt::prelude::*` alone.
//!
//! Guards the prelude against regressions outside doctests: everything a
//! first-time user needs for the quickstart pipeline (teach τflip from its
//! characteristic sample, learn it back, canonically compare) must be
//! reachable from the prelude — no deep module paths.

use xtt::prelude::*;

/// The paper's τflip domain: root(a-list, b-list), fc/ns encoded.
fn flip_domain(alpha: &RankedAlphabet) -> Dtta {
    let mut d = DttaBuilder::new(alpha.clone());
    let start = d.add_state("start");
    let alist = d.add_state("alist");
    let blist = d.add_state("blist");
    let nil = d.add_state("nil");
    d.add_transition(start, Symbol::new("root"), vec![alist, blist])
        .unwrap();
    d.add_transition(alist, Symbol::new("a"), vec![nil, alist])
        .unwrap();
    d.add_transition(alist, Symbol::new("#"), vec![]).unwrap();
    d.add_transition(blist, Symbol::new("b"), vec![nil, blist])
        .unwrap();
    d.add_transition(blist, Symbol::new("#"), vec![]).unwrap();
    d.add_transition(nil, Symbol::new("#"), vec![]).unwrap();
    d.build().unwrap()
}

/// The reference min(τflip) from §1 of the paper, built via the prelude's
/// `DtopBuilder`.
fn flip_target(alpha: &RankedAlphabet) -> Dtop {
    let mut b = DtopBuilder::new(alpha.clone(), alpha.clone());
    for name in ["q1", "q2", "q3", "q4"] {
        b.add_state(name);
    }
    b.set_axiom_str("root(<q1,x0>,<q2,x0>)").unwrap();
    b.add_rule_str("q1", "root", "<q3,x2>").unwrap();
    b.add_rule_str("q2", "root", "<q4,x1>").unwrap();
    b.add_rule_str("q3", "#", "#").unwrap();
    b.add_rule_str("q3", "b", "b(#,<q3,x2>)").unwrap();
    b.add_rule_str("q4", "#", "#").unwrap();
    b.add_rule_str("q4", "a", "a(#,<q4,x2>)").unwrap();
    b.build().unwrap()
}

#[test]
fn quickstart_pipeline_via_prelude_only() {
    let alpha = RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
    let domain = flip_domain(&alpha);
    let target_dtop = flip_target(&alpha);

    // Teacher: the characteristic sample exhibited in the paper.
    let pairs = [
        ("root(#,#)", "root(#,#)"),
        ("root(a(#,#),#)", "root(#,a(#,#))"),
        ("root(#,b(#,#))", "root(b(#,#),#)"),
        (
            "root(a(#,a(#,#)),b(#,b(#,#)))",
            "root(b(#,b(#,#)),a(#,a(#,#)))",
        ),
    ];
    let sample = Sample::from_pairs(
        pairs
            .iter()
            .map(|(s, t)| (parse_tree(s).unwrap(), parse_tree(t).unwrap())),
    )
    .expect("sample is functional");

    // Learner: RPNIdtop identifies min(τflip) from the sample.
    let learned =
        rpni_dtop(&sample, &domain, target_dtop.output()).expect("sample is characteristic");
    assert_eq!(learned.dtop.state_count(), 4);

    // The result is canonically *the* minimal earliest compatible dtop.
    let target: Canonical = canonical_form(&target_dtop, Some(&domain)).unwrap();
    let got: Canonical = canonical_form(&learned.dtop, Some(&domain)).unwrap();
    assert!(same_canonical(&target, &got));

    // And it generalizes to fresh inputs.
    let input = parse_tree("root(a(#,a(#,a(#,#))),b(#,#))").unwrap();
    let expected = parse_tree("root(b(#,#),a(#,a(#,a(#,#))))").unwrap();
    assert_eq!(eval(&learned.dtop, &input).unwrap(), expected);
}

#[test]
fn characteristic_sample_generation_via_prelude_only() {
    let alpha = RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
    let domain = flip_domain(&alpha);
    let target = canonical_form(&flip_target(&alpha), Some(&domain)).unwrap();

    // Machine teacher: generate the characteristic sample (Prop. 34)…
    let sample = characteristic_sample(&target).unwrap();
    let report = check_characteristic_conditions(&target, &sample);
    assert!(report.ok(), "conditions (C), (A), (T), (O):\n{report}");

    // …and learn it back (Theorem 38).
    let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
    assert!(same_canonical(&target, &got));
}
