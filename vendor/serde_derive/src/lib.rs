//! Vendored subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes the workspace actually declares: non-generic structs (named,
//! tuple, unit) and non-generic enums (unit, tuple, and struct variants),
//! honouring `#[serde(skip)]` on named fields. The generated `Serialize`
//! impls drive the full vendored data model; generated `Deserialize`
//! impls exist for API parity and error out at runtime (nothing in-tree
//! deserializes a derived type — only the manual string impls are used).
//!
//! Parsing is done directly over `proc_macro::TokenStream` so the stub
//! needs no `syn`/`quote` (unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Input {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("vendored serde_derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}`")),
    };

    Ok(Input { name, body })
}

/// Skips doc comments, attributes, and a leading visibility modifier,
/// returning whether any skipped attribute was `#[serde(skip...)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    skip |= attr_is_serde_skip(g.stream());
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return skip,
        }
    }
}

/// True for `serde(skip)` / `serde(skip_serializing)` attribute bodies.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string().starts_with("skip")))
        }
        _ => false,
    }
}

/// Splits a token stream at top-level commas, treating `<...>` spans as
/// nested (delimiter groups are already atomic `TokenTree::Group`s, but
/// generic arguments use bare `<`/`>` puncts). `->` is skipped as a unit.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    let mut iter = stream.into_iter().peekable();
    while let Some(tok) = iter.next() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '-' => {
                    if matches!(iter.peek(), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                        cur.push(tok);
                        cur.push(iter.next().unwrap());
                        continue;
                    }
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        let skip = skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match part.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        // Anything after an optional payload group is a discriminant
        // (`= expr`); it does not affect serialization shape.
        let kind = match part.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::UnitStruct => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, {name:?})")
        }
        Body::TupleStruct(1) => {
            format!(
                "::serde::Serializer::serialize_newtype_struct(__serializer, {name:?}, &self.0)"
            )
        }
        Body::TupleStruct(n) => {
            let mut s = format!(
                "let mut __seq = ::serde::Serializer::serialize_seq(__serializer, \
                 ::core::option::Option::Some({n}))?;\n"
            );
            for idx in 0..*n {
                s += &format!(
                    "::serde::ser::SerializeSeq::serialize_element(&mut __seq, &self.{idx})?;\n"
                );
            }
            s += "::serde::ser::SerializeSeq::end(__seq)";
            s
        }
        Body::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, {name:?}, {})?;\n",
                live.len()
            );
            for f in &live {
                s += &format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, {:?}, &self.{})?;\n",
                    f.name, f.name
                );
            }
            s += "::serde::ser::SerializeStruct::end(__st)";
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms += &format!(
                            "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                             __serializer, {name:?}, {vi}, {vname:?}),\n"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(\
                             __serializer, {name:?}, {vi}, {vname:?}, __f0),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!("{name}::{vname}({}) => {{\n", binders.join(", "));
                        arm += &format!(
                            "let mut __tv = ::serde::Serializer::serialize_tuple_variant(\
                             __serializer, {name:?}, {vi}, {vname:?}, {n})?;\n"
                        );
                        for b in &binders {
                            arm += &format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {b})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeTupleVariant::end(__tv)\n}\n";
                        arms += &arm;
                    }
                    VariantKind::Named(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!("{name}::{vname} {{ {} }} => {{\n", names.join(", "));
                        arm += &format!(
                            "let mut __sv = ::serde::Serializer::serialize_struct_variant(\
                             __serializer, {name:?}, {vi}, {vname:?}, {})?;\n",
                            fields.len()
                        );
                        for f in fields {
                            arm += &format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __sv, {:?}, {})?;\n",
                                f.name, f.name
                            );
                        }
                        arm += "::serde::ser::SerializeStructVariant::end(__sv)\n}\n";
                        arms += &arm;
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(_deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                     \"vendored serde stub cannot deserialize `{name}`\"))\n\
             }}\n\
         }}"
    )
}
