//! Vendored subset of the `rand` 0.8 API: `Rng::gen_range` over
//! half-open ranges, `SeedableRng::seed_from_u64`, and a deterministic
//! `rngs::StdRng` (xoshiro256++ seeded via splitmix64). API names match
//! rand 0.8 so the real crate can be swapped back in.

use std::ops::Range;

/// Core entropy source (mirrors `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types uniformly samplable from a range (stands in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($ty:ty),* $(,)?) => {
        $(impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift keeps the modulo bias negligible for the
                // small spans used in-tree.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as Self
            }
        })*
    };
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),* $(,)?) => {
        $(impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                // Widen before subtracting: spans wider than the narrow
                // type's positive half must not wrap (e.g. -100i8..100i8).
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as Self)
            }
        })*
    };
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Rngs constructible from seeds (mirrors the slice of `rand::SeedableRng`
/// the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`;
    /// same trait surface, different — but fixed — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn signed_range_spanning_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x));
            lo |= x < -50;
            hi |= x > 50;
        }
        assert!(lo && hi, "both halves of the range should be hit");
    }

    #[test]
    fn spread_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
