//! Vendored subset of the `criterion` API. The bench sources compile and
//! run unmodified: each `Bencher::iter` call does one warmup run, times a
//! fixed number of iterations, and prints mean wall time per iteration.
//! No statistics, plotting, or baseline storage — swap the real crate
//! back in for publishable numbers.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench driver (stands in for `criterion::Criterion<WallTime>`).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: Into<BenchmarkId>,
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b),
        );
        self
    }

    pub fn bench_with_input<F, I, P>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
        I: Into<BenchmarkId>,
        P: ?Sized,
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

/// Throughput annotation (accepted and ignored by the stub).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs and times closures (stands in for `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    measurements: Vec<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.measurements.push((self.iters, start.elapsed()));
    }
}

fn run_one(id: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: sample_size.max(1),
        measurements: Vec::new(),
    };
    f(&mut bencher);
    for (iters, total) in &bencher.measurements {
        let mean = total.as_secs_f64() / *iters as f64 * 1e6;
        println!("bench {id}: {mean:.2} µs/iter (mean of {iters})");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
