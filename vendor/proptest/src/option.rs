//! Option strategies (mirrors `proptest::option`).

use crate::{Strategy, TestRng};

/// Strategy for `Option`s; `None` one time in four (the real crate's
/// default `None` probability is 10%, slightly raised here because the
/// stub draws far fewer cases by default).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `of(strategy)` — `Some(sample)` most of the time, `None` sometimes.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
