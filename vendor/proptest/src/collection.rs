//! Collection strategies (mirrors `proptest::collection`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy for `Vec`s with lengths drawn from a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `vec(element, 0..5)` — a vector of 0–4 sampled elements.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}
