//! Vendored subset of the `proptest` API: the `proptest!` test macro,
//! `prop_assert*`, and a strategy-combinator core (`Just`, ranges,
//! tuples, `prop_map`, `prop_oneof!`, `prop_recursive`, `collection::vec`,
//! `option::of`, `any::<bool>()`, `BoxedStrategy`).
//!
//! Differences from the real crate, by design: sampling is driven by a
//! fixed per-test deterministic RNG (no persisted failure seeds), there
//! is no shrinking (a failing case reports the assertion message only),
//! and `prop_recursive` bounds depth strictly by its `depth` argument.

use std::ops::Range;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod option;

/// Deterministic RNG handed to strategies by the `proptest!` runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives a per-test RNG from the test's name, so every test sees a
    /// stable but distinct stream across runs.
    pub fn deterministic(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }

    pub(crate) fn in_range<T: rand::SampleUniform>(&mut self, range: Range<T>) -> T {
        self.0.gen_range(range)
    }
}

/// A source of random values of one type (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Bounded recursive strategy. Level 0 is `self`; each further level
    /// applies `recurse` to a strategy for the levels below, mixed 2:1
    /// with stopping early so samples vary in depth.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current =
                Union::weighted(vec![(2, recurse(current.clone()).boxed()), (1, current)]).boxed();
        }
        current
    }
}

/// Type-erased, cheaply clonable strategy (mirrors `BoxedStrategy`).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.in_range(self.clone())
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Maps a strategy's values through a function.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w).sum();
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight as usize) as u32;
        for (weight, option) in &self.options {
            if pick < *weight {
                return option.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        })*
    };
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical strategy (mirrors `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),* $(,)?) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.0.next_u64() as $ty
            }
        })*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy for any `Arbitrary` type; build with [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Test-runner configuration (mirrors the slice of `ProptestConfig` used).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod strategy {
    pub use crate::{Any, BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    pub use crate::strategy::*;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests. Each body runs `config.cases` times with
/// fresh samples; `prop_assert*` failures abort the case with a panic
/// that reports the failing message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), String> = (|| {
                        $(let $arg_pat = $crate::Strategy::sample(&($arg_strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}
