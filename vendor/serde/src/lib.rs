//! Vendored subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of serde it actually exercises: the
//! `Serialize`/`Serializer` data model (enough for `serde_json::to_value`
//! over derived structs and enums), and a `Deserialize` trait whose only
//! runtime implementations are the manual string-roundtrip impls in
//! `xtt-trees`. The trait and method names match real serde so swapping
//! the real crate back in is a one-line manifest change.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
