//! Deserialization half of the vendored serde data model.
//!
//! Only the string-shaped entry point is modeled: the workspace's manual
//! `Deserialize` impls (`Symbol`, `Tree` in `xtt-trees`) round-trip
//! through their `Display`/parse syntax, so a deserializer only needs to
//! produce a `String`. Derived `Deserialize` impls exist for API parity
//! but report an error if invoked (nothing in-tree deserializes them).

use std::fmt::Display;

/// Error trait for deserializers (mirrors `serde::de::Error`).
pub trait Error: Sized {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be deserialized (mirrors `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format that can deserialize strings (mirrors the slice of
/// `serde::Deserializer` the workspace uses).
pub trait Deserializer<'de>: Sized {
    type Error: Error;
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        deserializer.deserialize_string()
    }
}
