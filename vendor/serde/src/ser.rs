//! Serialization half of the vendored serde data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;

/// Error trait for serializers (mirrors `serde::ser::Error`).
pub trait Error: Sized {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized (mirrors `serde::Serialize`).
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the data model (mirrors
/// `serde::Serializer`, minus the zero-copy and specialized-width entry
/// points the workspace never calls).
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;

    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(v.encode_utf8(&mut [0u8; 4]))
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Self::Ok, Self::Error> {
        self.serialize_unit()
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_int {
    ($($ty:ty => $method:ident as $as:ty),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $as)
            }
        })*
    };
}

impl_serialize_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    u128 => serialize_u128 as u128,
    f32 => serialize_f64 as f64,
    f64 => serialize_f64 as f64,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S: Serializer, T: Serialize>(
    serializer: S,
    iter: impl ExactSizeIterator<Item = T>,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(iter.len()))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

fn serialize_map_iter<'a, S: Serializer, K: Serialize + 'a, V: Serialize + 'a>(
    serializer: S,
    iter: impl ExactSizeIterator<Item = (&'a K, &'a V)>,
) -> Result<S::Ok, S::Error> {
    let mut map = serializer.serialize_map(Some(iter.len()))?;
    for (k, v) in iter {
        map.serialize_entry(k, v)?;
    }
    map.end()
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(0 $(+ { let _ = stringify!($name); 1 })+))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        })*
    };
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
