//! Vendored subset of `serde_json`: a JSON [`Value`], the [`json!`]
//! macro, and [`to_value`]/[`to_string`] driven by the vendored serde
//! `Serializer` trait. Enough for the workspace's JSONL experiment
//! emitters; no parsing (nothing in-tree deserializes JSON).

use std::fmt;

use serde::ser::{
    self, SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant,
    SerializeTupleVariant,
};
use serde::Serialize;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    UInt128(u128),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (the real crate preserves order with its
    /// default feature set too).
    Object(Vec<(String, Value)>),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::UInt128(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Serialization error (the `Value` serializer itself never fails; this
/// exists to satisfy the trait bounds and `ser::Error::custom`).
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Converts any `Serialize` value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value
        .serialize(ValueSerializer)
        .expect("Value serialization is infallible")
}

/// Renders any `Serialize` value as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value).to_string())
}

/// JSON keys must be strings; scalars stringify naturally, composites
/// fall back to their JSON rendering.
fn key_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Bool(_) | Value::Int(_) | Value::UInt(_) | Value::UInt128(_) | Value::Float(_) => {
            v.to_string()
        }
        other => other.to_string(),
    }
}

struct ValueSerializer;

pub struct SeqBuilder(Vec<Value>);
pub struct MapBuilder(Vec<(String, Value)>);
pub struct VariantSeqBuilder(&'static str, Vec<Value>);
pub struct VariantMapBuilder(&'static str, Vec<(String, Value)>);

impl serde::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeMap = MapBuilder;
    type SerializeStruct = MapBuilder;
    type SerializeTupleVariant = VariantSeqBuilder;
    type SerializeStructVariant = VariantMapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Int(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::UInt(v))
    }
    fn serialize_u128(self, v: u128) -> Result<Value, Error> {
        Ok(Value::UInt128(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Float(v))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_owned()))
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        Ok(Value::Object(vec![(variant.to_owned(), to_value(value))]))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<MapBuilder, Error> {
        Ok(MapBuilder(Vec::with_capacity(len)))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<VariantSeqBuilder, Error> {
        Ok(VariantSeqBuilder(variant, Vec::with_capacity(len)))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<VariantMapBuilder, Error> {
        Ok(VariantMapBuilder(variant, Vec::with_capacity(len)))
    }
}

impl SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.0.push(to_value(value));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.0))
    }
}

impl SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        self.0.push((key_string(to_value(key)), to_value(value)));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.0.push((key.to_owned(), to_value(value)));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeTupleVariant for VariantSeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.1.push(to_value(value));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(vec![(
            self.0.to_owned(),
            Value::Array(self.1),
        )]))
    }
}

impl SerializeStructVariant for VariantMapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.1.push((key.to_owned(), to_value(value)));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(vec![(
            self.0.to_owned(),
            Value::Object(self.1),
        )]))
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Supports `null`, `true`,
/// `false`, arrays, objects with string-literal keys, and arbitrary
/// `Serialize` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_escapes_and_nests() {
        let v = json!({
            "s": "a\"b\\c\nd",
            "n": 3usize,
            "arr": [1i64, null, true],
            "nested": { "k": "v" }
        });
        assert_eq!(
            v.to_string(),
            r#"{"s":"a\"b\\c\nd","n":3,"arr":[1,null,true],"nested":{"k":"v"}}"#
        );
    }

    #[test]
    fn to_value_on_std_types() {
        assert_eq!(to_value(&vec![1u32, 2]), json!([1u32, 2u32]));
        assert_eq!(to_value(&Option::<u32>::None), Value::Null);
        assert_eq!(to_value(&"hi"), Value::String("hi".into()));
    }
}
