//! Vendored subset of `serde_json`: a JSON [`Value`], the [`json!`]
//! macro, [`to_value`]/[`to_string`] driven by the vendored serde
//! `Serializer` trait, and a strict [`from_str`] parser with the usual
//! `Value` accessors (`as_u64`, indexing by key). Enough for the
//! workspace's JSONL experiment emitters and the serving tests that
//! validate `/stats` snapshots.

use std::fmt;

use serde::ser::{
    self, SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant,
    SerializeTupleVariant,
};
use serde::Serialize;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    UInt128(u128),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (the real crate preserves order with its
    /// default feature set too).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (None on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            Value::UInt128(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::UInt128(n) => Some(n as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Missing keys index to `Null`, as in the real crate.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::UInt128(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Serialization error (the `Value` serializer itself never fails; this
/// exists to satisfy the trait bounds and `ser::Error::custom`).
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Converts any `Serialize` value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value
        .serialize(ValueSerializer)
        .expect("Value serialization is infallible")
}

/// Renders any `Serialize` value as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value).to_string())
}

/// Parses a complete JSON document (strict grammar: one value, no
/// trailing garbage, no trailing commas, no comments).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not recomposed; the
                            // replacement char keeps parsing total.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control byte in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<u128>().map(Value::UInt128))
                .map_err(|_| self.err("bad number"))
        }
    }
}

/// JSON keys must be strings; scalars stringify naturally, composites
/// fall back to their JSON rendering.
fn key_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Bool(_) | Value::Int(_) | Value::UInt(_) | Value::UInt128(_) | Value::Float(_) => {
            v.to_string()
        }
        other => other.to_string(),
    }
}

struct ValueSerializer;

pub struct SeqBuilder(Vec<Value>);
pub struct MapBuilder(Vec<(String, Value)>);
pub struct VariantSeqBuilder(&'static str, Vec<Value>);
pub struct VariantMapBuilder(&'static str, Vec<(String, Value)>);

impl serde::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeMap = MapBuilder;
    type SerializeStruct = MapBuilder;
    type SerializeTupleVariant = VariantSeqBuilder;
    type SerializeStructVariant = VariantMapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Int(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::UInt(v))
    }
    fn serialize_u128(self, v: u128) -> Result<Value, Error> {
        Ok(Value::UInt128(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Float(v))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_owned()))
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        Ok(Value::Object(vec![(variant.to_owned(), to_value(value))]))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<MapBuilder, Error> {
        Ok(MapBuilder(Vec::with_capacity(len)))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<VariantSeqBuilder, Error> {
        Ok(VariantSeqBuilder(variant, Vec::with_capacity(len)))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<VariantMapBuilder, Error> {
        Ok(VariantMapBuilder(variant, Vec::with_capacity(len)))
    }
}

impl SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.0.push(to_value(value));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.0))
    }
}

impl SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        self.0.push((key_string(to_value(key)), to_value(value)));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.0.push((key.to_owned(), to_value(value)));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeTupleVariant for VariantSeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.1.push(to_value(value));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(vec![(
            self.0.to_owned(),
            Value::Array(self.1),
        )]))
    }
}

impl SerializeStructVariant for VariantMapBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.1.push((key.to_owned(), to_value(value)));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(vec![(
            self.0.to_owned(),
            Value::Object(self.1),
        )]))
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Supports `null`, `true`,
/// `false`, arrays, objects with string-literal keys, and arbitrary
/// `Serialize` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_escapes_and_nests() {
        let v = json!({
            "s": "a\"b\\c\nd",
            "n": 3usize,
            "arr": [1i64, null, true],
            "nested": { "k": "v" }
        });
        assert_eq!(
            v.to_string(),
            r#"{"s":"a\"b\\c\nd","n":3,"arr":[1,null,true],"nested":{"k":"v"}}"#
        );
    }

    #[test]
    fn to_value_on_std_types() {
        assert_eq!(to_value(&vec![1u32, 2]), json!([1u32, 2u32]));
        assert_eq!(to_value(&Option::<u32>::None), Value::Null);
        assert_eq!(to_value(&"hi"), Value::String("hi".into()));
    }

    #[test]
    fn from_str_roundtrips_rendered_values() {
        let v = json!({
            "s": "a\"b\\c\nd",
            "neg": (-7i64),
            "big": (u64::MAX),
            "pi": 3.5f64,
            "arr": [1u32, null, true, []],
            "nested": { "k": "v", "empty": {} }
        });
        assert_eq!(from_str(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn from_str_accessors_and_indexing() {
        let v = from_str(r#"{"a":{"b":42},"list":[10,20]}"#).unwrap();
        assert_eq!(v["a"]["b"].as_u64(), Some(42));
        assert!(v["a"]["b"].is_u64());
        assert_eq!(v["list"][1].as_u64(), Some(20));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["a"]["b"].as_f64(), Some(42.0));
    }

    #[test]
    fn from_str_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "01x",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }
}
