//! # xtt — learning top-down XML transformations
//!
//! A full reproduction of *"A Learning Algorithm for Top-Down XML
//! Transformations"* (Aurélien Lemay, Sebastian Maneth, Joachim Niehren;
//! PODS 2010): deterministic top-down tree transducers (dtops), their
//! Myhill–Nerode theory (earliest normal form, unique minimal compatible
//! transducer, io-paths), the Gold-style learner `RPNIdtop` with
//! polynomial characteristic samples, and the DTD-based encoding that
//! makes the machinery applicable to XML.
//!
//! ## Quickstart
//!
//! ```
//! use xtt::prelude::*;
//!
//! // The paper's τflip: swap an a-list and a b-list (fc/ns encoded).
//! let fixture = xtt::transducer::examples::flip();
//!
//! // 1. canonicalize the target: unique minimal earliest compatible dtop
//! let target = canonical_form(&fixture.dtop, Some(&fixture.domain)).unwrap();
//!
//! // 2. generate a characteristic sample (Proposition 34)
//! let sample = characteristic_sample(&target).unwrap();
//!
//! // 3. learn it back with RPNIdtop (Figure 1)
//! let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
//!
//! // 4. the result is exactly min(τ) (Theorem 38)
//! let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
//! assert!(same_canonical(&target, &got));
//! assert_eq!(learned.dtop.state_count(), 4);
//! ```
//!
//! ## Serving at scale
//!
//! Once a transducer is learned, [`engine`] (`xtt-engine`) turns it into a
//! production runtime: [`engine::compile`] lowers it to flat jump tables,
//! [`engine::Engine::transform_batch`] shards document batches across a
//! worker pool (with an LRU of compiled transducers), and the streaming
//! front end applies it directly to SAX-style XML events. The
//! `xtt-transform` CLI wraps the same API for newline-delimited corpora.
//!
//! ```
//! use xtt::prelude::*;
//!
//! let flip = xtt::transducer::examples::flip().dtop;
//! let engine = Engine::new(EngineOptions::default());
//! let out = engine.transform(&flip, "root(a(#,#),b(#,#))").unwrap();
//! assert_eq!(out, "root(b(#,#),a(#,#))");
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`trees`] | `xtt-trees` | ranked trees, paths, `⊔`, minimal DAGs, event streams |
//! | [`automata`] | `xtt-automata` | deterministic top-down tree automata |
//! | [`transducer`] | `xtt-transducer` | dtops, earliest form, `min(τ)`, equivalence |
//! | [`learn`] | `xtt-core` | samples, `RPNIdtop`, characteristic samples |
//! | [`xml`] | `xtt-xml` | unranked trees, DTDs, encodings, SAX reader, XSLT export |
//! | [`unranked`] | `xtt-unranked` | streaming unranked-XML pipeline (SAX → ranked events → XML out, no intermediate trees) |
//! | [`engine`] | `xtt-engine` | compiled + streaming execution, batch serving, CLI |
//! | [`typecheck`] | `xtt-typecheck` | compiled domain guards, fail-fast validation, output typechecking |
//! | [`serve`] | `xtt-serve` | HTTP transformation service (`xtt-serve` binary) |

pub use xtt_automata as automata;
pub use xtt_core as learn;
pub use xtt_engine as engine;
pub use xtt_serve as serve;
pub use xtt_transducer as transducer;
pub use xtt_trees as trees;
pub use xtt_typecheck as typecheck;
pub use xtt_unranked as unranked;
pub use xtt_xml as xml;

/// The most common imports for working with the library.
pub mod prelude {
    pub use xtt_automata::{parse_dtta, Dtta, DttaBuilder};
    pub use xtt_core::{characteristic_sample, check_characteristic_conditions, rpni_dtop, Sample};
    pub use xtt_engine::{
        compile, CompiledDtop, DocFormat, Engine, EngineOptions, EvalMode, EvalScratch,
        StreamEvaluator,
    };
    pub use xtt_serve::{ServeClient, ServeOptions, Server};
    pub use xtt_transducer::{
        canonical_form, equivalent, eval, parse_dtop, same_canonical, Canonical, Dtop, DtopBuilder,
    };
    pub use xtt_trees::{parse_tree, FPath, RankedAlphabet, Symbol, Tree, TreeEvent};
    pub use xtt_typecheck::{
        domain_guard, output_typecheck, CompiledDtta, GuardedEvents, TypeError, TypecheckVerdict,
    };
    pub use xtt_unranked::{UnrankedError, UnrankedEvents, XmlCodec};
    pub use xtt_xml::{parse_xml, Dtd, Encoding, PcDataMode, UTree};
}
