//! The streaming unranked-XML pipeline end to end: genuine XML in,
//! transformed XML out — encoded incrementally off the SAX tokenizer
//! (no `UTree`, no materialized ranked input) and decoded back by the
//! streaming writer.
//!
//! ```console
//! $ cargo run --example unranked_pipeline
//! ```

use std::sync::Arc;

use xtt::engine::{DocFormat, Engine, EngineOptions, EvalMode, XmlCodec};
use xtt::prelude::*;
use xtt::xml::xmlflip;

fn main() {
    // 1. The paper's xmlflip over its DTD-encoding pair: the input
    //    follows root → (a*,b*), the output root → (b*,a*).
    let engine = Engine::new(EngineOptions::default());
    let flip_codec = XmlCodec::dtd_pair(
        Arc::new(xmlflip::input_encoding()),
        Arc::new(xmlflip::output_encoding()),
    );
    let doc = "<root><a/><a/><b/></root>";
    let out = engine
        .transform_with(
            &xmlflip::target_dtop(),
            doc,
            EvalMode::Streaming,
            DocFormat::Encoded(flip_codec.clone()),
        )
        .expect("in-domain document");
    println!("xmlflip (DTD encoding, streaming): {doc}  ->  {out}");
    assert_eq!(out, "<root><b/><a/><a/></root>");

    // 2. The same streaming encoder feeds every mode — outputs agree.
    for mode in [EvalMode::Compiled, EvalMode::Dag, EvalMode::TreeWalk] {
        let again = engine
            .transform_with(
                &xmlflip::target_dtop(),
                doc,
                mode,
                DocFormat::Encoded(flip_codec.clone()),
            )
            .unwrap();
        assert_eq!(again, out, "{mode:?}");
    }

    // 3. fc/ns with deletion: prune every <b> subtree. The streaming
    //    evaluator skips deleted subtrees at the *tokenizer* level.
    let prune = parse_dtop(
        "ax = <q0,x0>\n\
         q0(root(x1,x2)) -> root(<q,x1>,<q,x2>)\n\
         q(a(x1,x2)) -> a(<q,x1>,<q,x2>)\n\
         q(b(x1,x2)) -> <q,x2>\n\
         q(#) -> #\n",
    )
    .unwrap();
    let doc = "<root><a><b>discarded <junk/> without tokenizing</b><a/></a><b/></root>";
    let out = engine
        .transform_with(
            &prune,
            doc,
            EvalMode::Streaming,
            DocFormat::parse("fcns").unwrap(),
        )
        .unwrap();
    println!("prune (fc/ns encoding, streaming):  {doc}  ->  {out}");
    assert_eq!(out, "<root><a><a/></a></root>");

    // 4. The raw pieces, without the engine: SAX events → ranked events
    //    (O(depth) frames) → evaluator → streaming writer.
    let codec = XmlCodec::fcns();
    let mut events = codec.events("<root><a/><a/></root>");
    let ranked: Vec<_> = (&mut events).map(Result::unwrap).collect();
    println!(
        "ranked events: {} (peak live frames: {})",
        ranked.len(),
        events.peak_frames()
    );
    let tree = codec.ranked_tree("<root><a/><a/></root>").unwrap();
    assert_eq!(codec.decode_tree(&tree).unwrap(), "<root><a/><a/></root>");
    println!("decode ∘ encode is the identity — pipeline closed.");
}
