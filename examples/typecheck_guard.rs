//! Typechecking end to end: compiled domain guards, fail-fast guarded
//! evaluation with violation paths, and output typechecking with
//! counterexamples.
//!
//! ```console
//! $ cargo run --example typecheck_guard
//! ```

use xtt::prelude::*;

fn main() {
    let fix = xtt::transducer::examples::flip();

    // 1. Every transducer carries a guard automaton: dom(τ), extracted by
    //    the subset construction and compiled to dense jump tables.
    let guard = domain_guard(&fix.dtop).expect("guard construction");
    println!(
        "flip's domain guard: {} states over {} symbols",
        guard.state_count(),
        guard.alphabet().len()
    );

    // 2. Guarded evaluation: out-of-domain documents fail at the *first
    //    violating node*, with a typed diagnostic instead of a bare None.
    let engine = Engine::new(EngineOptions {
        validate: true,
        ..EngineOptions::default()
    });
    let ok = engine.transform(&fix.dtop, "root(a(#,#),b(#,#))").unwrap();
    println!("in-domain: root(a(#,#),b(#,#)) -> {ok}");
    let err = engine
        .transform(&fix.dtop, "root(a(#,b(#,#)),b(#,#))")
        .unwrap_err();
    println!("out-of-domain: {err}");

    // 3. The streaming guard consumes strictly fewer events than the
    //    document contains: rejection costs a prefix, not a parse.
    let bad = parse_tree("root(a(#,b(#,#)),b(#,b(#,b(#,#))))").unwrap();
    let mut guarded = GuardedEvents::new(&guard, bad.events());
    (&mut guarded).for_each(drop);
    println!(
        "streaming rejection consumed {} of {} events ({})",
        guarded.events_consumed(),
        2 * bad.size(),
        guarded.violation().expect("out of domain"),
    );

    // 4. Output typechecking: dom(τ) ⊆ τ⁻¹(L(S_out))? The correct output
    //    schema passes; demanding the *input* shape yields a concrete
    //    counterexample.
    let correct = parse_dtta(
        "dtta (initial s)\n\
         s(root(x1,x2)) -> root(<bl,x1>,<al,x2>)\n\
         bl(b(x1,x2)) -> b(<nil,x1>,<bl,x2>)\n\
         bl(#) -> #\n\
         al(a(x1,x2)) -> a(<nil,x1>,<al,x2>)\n\
         al(#) -> #\n\
         nil(#) -> #\n",
    )
    .unwrap();
    assert!(output_typecheck(&fix.dtop, Some(&fix.domain), &correct).is_well_typed());
    println!("flip typechecks against root(b-list, a-list)");

    let wrong = parse_dtta(
        &correct
            .to_string()
            .replace("root(<bl,x1>,<al,x2>)", "root(<al,x1>,<bl,x2>)"),
    )
    .unwrap();
    match output_typecheck(&fix.dtop, Some(&fix.domain), &wrong) {
        TypecheckVerdict::Counterexample { input, output } => {
            println!("against root(a-list, b-list): counterexample {input} -> {output}");
        }
        TypecheckVerdict::WellTyped => unreachable!("flip permutes the lists"),
    }
}
