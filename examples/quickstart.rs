//! Quickstart: learn the paper's τflip from its four-example
//! characteristic sample and print the inferred transducer.
//!
//! Run with `cargo run --example quickstart`.

use xtt::prelude::*;

fn main() {
    // τflip (paper, introduction): exchange a list of a-nodes with a list
    // of b-nodes, both in first-child/next-sibling encoding.
    //
    // We play the teacher: the four input/output pairs below are exactly
    // the characteristic sample the paper exhibits (with the 4th pair in
    // rule-consistent child order).
    let pairs = [
        ("root(#,#)", "root(#,#)"),
        ("root(a(#,#),#)", "root(#,a(#,#))"),
        ("root(#,b(#,#))", "root(b(#,#),#)"),
        (
            "root(a(#,a(#,#)),b(#,b(#,#)))",
            "root(b(#,b(#,#)),a(#,a(#,#)))",
        ),
    ];
    let sample = Sample::from_pairs(
        pairs
            .iter()
            .map(|(s, t)| (parse_tree(s).unwrap(), parse_tree(t).unwrap())),
    )
    .expect("sample is functional");

    println!("== sample ==\n{sample}");

    // The learner also needs the domain: root(a-list, b-list).
    let fixture = xtt::transducer::examples::flip();
    let domain = &fixture.domain;
    println!("== domain automaton ==\n{domain}");

    // Run RPNIdtop.
    let learned =
        rpni_dtop(&sample, domain, fixture.dtop.output()).expect("sample is characteristic");

    println!(
        "== learned transducer ({} states, {} rules) ==",
        learned.dtop.state_count(),
        learned.dtop.rule_count()
    );
    println!("{}", learned.dtop);

    println!("== states were identified by these io-paths ==");
    for (i, p) in learned.states.iter().enumerate() {
        println!("  q{i} <- {p}");
    }
    println!("== merges performed ==");
    for (p, i) in &learned.merges {
        println!("  {p} merged into q{i}");
    }

    // Apply the learned transducer to a fresh input.
    let input = parse_tree("root(a(#,a(#,a(#,#))),b(#,#))").unwrap();
    let output = eval(&learned.dtop, &input).unwrap();
    println!("== applying to a fresh input ==\n{input}\n  ->\n{output}");

    // And verify it is *the* canonical minimal earliest transducer.
    let target = canonical_form(&fixture.dtop, Some(domain)).unwrap();
    let got = canonical_form(&learned.dtop, Some(domain)).unwrap();
    assert!(same_canonical(&target, &got));
    println!("\nlearned transducer == min(τflip)  ✓");
}
