//! The transformation service end to end, in one process: boot
//! `xtt-serve` on an ephemeral port, learn a transducer over the wire
//! from `input => output` examples, batch-transform documents (with a
//! positional failure), read the stats, and shut down gracefully.
//!
//! Run with `cargo run --example transform_service`.

use xtt::prelude::*;
use xtt::serve::ServeOptions;

fn main() {
    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let addr = server.local_addr().unwrap();
    let runner = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr).expect("client");
    assert!(client.wait_ready(std::time::Duration::from_secs(5)));
    println!("serving on http://{addr}");

    // Teach the server the monadic→binary copier from examples alone:
    // the PODS 2010 learner runs server-side on the uploaded sample.
    let fixture = xtt::transducer::examples::monadic_to_binary();
    let canonical = canonical_form(&fixture.dtop, Some(&fixture.domain)).unwrap();
    let sample: String = characteristic_sample(&canonical)
        .unwrap()
        .pairs()
        .iter()
        .map(|(i, o)| format!("{i} => {o}\n"))
        .collect();
    let resp = client.learn_transducer("copy", &sample).expect("learn");
    println!(
        "PUT /transducers/copy?learn=1 -> {} {}",
        resp.status,
        resp.body_str()
    );

    // Batch-transform; the malformed document fails positionally.
    let docs = ["f(e)", "f(f(f(e)))", "oops((", "e"];
    let (resp, lines) = client
        .transform("copy", "?mode=dag", &docs)
        .expect("transform");
    println!("POST /transform/copy?mode=dag -> {}", resp.status);
    for (doc, line) in docs.iter().zip(&lines) {
        println!("  {doc:12} -> {line}");
    }
    assert!(lines[2].starts_with("!error:"));

    let stats = client.stats().expect("stats");
    println!("GET /stats -> {}", stats.body_str());

    client.shutdown().expect("shutdown");
    runner.join().unwrap().expect("clean exit");
    println!("server drained and stopped.");
}
