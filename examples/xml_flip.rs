//! `xmlflip` (paper §1/§10): reorder a block of `a`-children before a
//! block of `b`-children — the transformation that motivates the paper's
//! DTD-based encoding, because no dtop can do it over the classical
//! first-child/next-sibling encoding.
//!
//! Run with `cargo run --example xml_flip`.

use xtt::prelude::*;
use xtt::xml::xmlflip;

fn main() {
    // Input documents conform to  <!ELEMENT root (a*,b*) >,
    // outputs to the same DTD with (b*,a*).
    let enc_in = xmlflip::input_encoding();
    let enc_out = xmlflip::output_encoding();
    println!("== input DTD ==\n{}", enc_in.dtd());
    println!("== output DTD ==\n{}", enc_out.dtd());

    let doc = parse_xml("<root><a/><a/><b/></root>").unwrap();
    let encoded = enc_in.encode(&doc).unwrap();
    println!("document        : {doc}");
    println!("DTD-encoded     : {encoded}\n");

    // Learn the transformation from a characteristic sample of the target.
    let target_dtop = xmlflip::target_dtop();
    let domain = enc_in.domain();
    let target = canonical_form(&target_dtop, Some(&domain)).unwrap();
    let sample = characteristic_sample(&target).unwrap();
    println!(
        "characteristic sample: {} pairs (paper: \"can still be inferred by four examples\")",
        sample.len()
    );
    let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    println!(
        "learned transducer: {} states, {} rules (paper reports 12 states / 16 rules)\n",
        learned.dtop.state_count(),
        learned.dtop.rule_count()
    );

    // Apply it: encode → transduce → decode.
    for (n, m) in [(2usize, 1usize), (0, 3), (4, 2)] {
        let doc = xmlflip::document(n, m);
        let out_enc = eval(&learned.dtop, &enc_in.encode(&doc).unwrap()).unwrap();
        let out_doc = enc_out.decode(&out_enc).unwrap();
        println!("{doc}  ->  {out_doc}");
        assert_eq!(out_doc, xmlflip::flip_document(&doc));
    }

    // The fc/ns side: the same function needs unboundedly many residuals.
    println!("\n== why fc/ns encodings cannot work (Myhill–Nerode) ==");
    println!("fcns(root(a,a,b))  = {}", xmlflip::fcns_flip_input(2, 1));
    println!("fcns(root(b,a,a))  = {}", xmlflip::fcns_flip_output(2, 1));
    println!(
        "the b-block is a *descendant* of every a: a dtop cannot exchange \
         a node with a descendant, so each number of leading a's needs its \
         own state — see `cargo run -p xtt-bench --bin exp_e3_xmlflip` for \
         the measured residual growth."
    );
}
