//! Minimal subsequential string transducers via monadic trees (paper,
//! Related Work: "our result, applied to tree translations over monadic
//! trees, also allows to infer minimal string transducers").
//!
//! Run with `cargo run --example string_rewriter`.

use xtt::learn::strings::{
    learn_string_transducer, sequential_to_dtop, string_characteristic_sample, StringAlphabet,
};

fn main() {
    // Target: rewrite a→x and b→y, but after the first b every a becomes z
    // (a 2-state subsequential function).
    let input = StringAlphabet::new(&['a', 'b']);
    let output = StringAlphabet::new(&['x', 'y', 'z']);
    let delta = vec![
        ((0, 'a'), (0, "x".to_owned())),
        ((0, 'b'), (1, "y".to_owned())),
        ((1, 'a'), (1, "z".to_owned())),
        ((1, 'b'), (1, "y".to_owned())),
    ];
    let finals = vec![(0, String::new()), (1, String::new())];
    let target = sequential_to_dtop(&input, &output, 2, &delta, &finals).unwrap();

    // Teacher side: generate a characteristic sample, as strings.
    let pairs = string_characteristic_sample(&target, &input, &output).unwrap();
    println!("== characteristic sample ({} string pairs) ==", pairs.len());
    for (s, t) in &pairs {
        println!("  {s:?} -> {t:?}");
    }

    // Learner side: infer the machine from the pairs alone.
    let borrowed: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let learned = learn_string_transducer(&input, &output, &borrowed).unwrap();
    println!(
        "\nlearned a minimal subsequential transducer with {} states:",
        learned.state_count()
    );
    println!("{}", learned.dtop);

    for s in ["", "aa", "ab", "aba", "baa", "aabab"] {
        println!("  {:10} -> {}", format!("{s:?}"), learned.apply(s).unwrap());
    }
    assert_eq!(learned.apply("aabaa").unwrap(), "xxyzz");
}
