//! The `xtt-engine` execution pipeline end to end: compile a learned
//! transducer, evaluate it three ways (tree-walk, compiled, streaming
//! over XML events), serve a batch across the worker pool, and produce an
//! exponentially large output as a minimal DAG.
//!
//! Run with `cargo run --release --example streaming_transform`.

use std::time::Instant;

use xtt::engine::{tree_to_xml, DagSink, DocFormat};
use xtt::prelude::*;
use xtt::transducer::examples;
use xtt::trees::TreeDag;

fn main() {
    // τflip again — but this time as a compiled object applied to
    // document streams, not a research artifact.
    let fixture = examples::flip();
    let compiled = compile(&fixture.dtop).unwrap();
    println!(
        "compiled τflip: {} states × {} symbols, {} instructions, fingerprint {:016x}",
        compiled.state_count(),
        compiled.symbol_count(),
        compiled.code_len(),
        compiled.fingerprint(),
    );

    // One document, three evaluators, one answer.
    let doc = parse_tree("root(a(#,a(#,#)),b(#,b(#,#)))").unwrap();
    let walk = eval(&fixture.dtop, &doc).unwrap();
    let mut scratch = EvalScratch::new();
    let fast = compiled.eval(&doc, &mut scratch).unwrap();
    let mut stream = StreamEvaluator::new();
    let xml_doc = tree_to_xml(&doc);
    let streamed = stream.eval_xml(&compiled, &xml_doc).unwrap().unwrap();
    assert!(walk == fast && fast == streamed);
    println!("\nτflip({doc})\n  = {walk}");
    println!(
        "streamed straight from XML: {xml_doc} -> {}",
        tree_to_xml(&streamed)
    );

    // Batch serving: shard a corpus across the worker pool.
    let docs: Vec<String> = (0..50_000)
        .map(|i| examples::flip_input(i % 20 + 1, i % 13 + 1).to_string())
        .collect();
    let engine = Engine::new(EngineOptions::default());
    let t0 = Instant::now();
    let results = engine.transform_batch(&fixture.dtop, &docs);
    let elapsed = t0.elapsed();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "\nbatch: {} docs in {:.1?} ({:.0} docs/s), {} ok, cache {:?}",
        docs.len(),
        elapsed,
        docs.len() as f64 / elapsed.as_secs_f64(),
        ok,
        engine.cache_stats(),
    );

    // Exponential outputs as minimal DAGs (the paper's Section 1 trick):
    // a monadic input of height 40 maps to 2^41 - 1 output nodes, built
    // here as a 41-node DAG.
    let copier = compile(&examples::monadic_to_binary().dtop).unwrap();
    let mut input = Tree::leaf_named("e");
    for _ in 0..40 {
        input = Tree::node("f", vec![input]);
    }
    let mut dag = TreeDag::new();
    let mut dag_scratch = EvalScratch::new();
    let id = copier.eval_dag(&input, &mut dag_scratch, &mut dag).unwrap();
    let stats = dag.stats(id);
    println!(
        "\ncopying dtop on height-40 input: output tree {} nodes, DAG {} nodes ({}x compression)",
        stats.tree_size,
        stats.dag_size,
        stats.compression_ratio() as u64,
    );
    let _ = DagSink; // re-exported for custom pipelines

    // XML-format batch, streaming mode: documents are tokenized and
    // transformed without ever materializing the input tree.
    let xml_engine = Engine::new(EngineOptions {
        format: DocFormat::Xml,
        mode: EvalMode::Streaming,
        ..EngineOptions::default()
    });
    let out = xml_engine
        .transform(&fixture.dtop, "<root><a># #</a><b># #</b></root>")
        .unwrap();
    println!("\nstreaming XML batch sample: {out}");
}
