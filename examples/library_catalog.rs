//! The Section 10 library transformation, end to end, starting from real
//! XML text: swap author/title, delete the year, and prepend a summary
//! that copies every title — inferred from examples, then exported as an
//! XSLT-like stylesheet.
//!
//! Run with `cargo run --example library_catalog`.

use xtt::prelude::*;
use xtt::transducer::examples as fixtures;
use xtt::xml::to_xslt;

fn main() {
    // The catalog we will transform, as XML.
    let doc = parse_xml(
        "<LIBRARY>\
           <BOOK><AUTHOR>P</AUTHOR><TITLE>P'</TITLE><YEAR>P</YEAR></BOOK>\
           <BOOK><AUTHOR>P'</AUTHOR><TITLE>P</TITLE><YEAR>P</YEAR></BOOK>\
         </LIBRARY>",
    )
    .unwrap();
    println!("== input document ==\n{doc}\n");

    // The target transformation is the paper's library example; the
    // fixture works on DTD-encoded trees directly (ranked alphabet with
    // L, B*, B, A, T, Y, pcdata values P/P', and #).
    let fixture = fixtures::library();

    // 1. canonicalize and generate a characteristic sample
    let target = canonical_form(&fixture.dtop, None).unwrap();
    let sample = characteristic_sample(&target).unwrap();
    println!(
        "characteristic sample: {} pairs, {} total nodes",
        sample.len(),
        sample.total_size()
    );

    // 2. learn
    let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    println!(
        "learned transducer: {} states, {} rules (paper reports 14 states; see EXPERIMENTS.md E2)\n",
        learned.dtop.state_count(),
        learned.dtop.rule_count()
    );
    println!("{}", learned.dtop);

    // 3. run the learned transducer on the encoded document
    let encoded = encode_library(&doc);
    let result = eval(&learned.dtop, &encoded).unwrap();
    println!("== transformed (encoded) ==\n{result}\n");

    // 4. export as an XSLT-like stylesheet
    println!("== as XSLT (modulo syntax, per the paper) ==");
    let xslt = to_xslt(&learned.dtop);
    for line in xslt.lines().take(24) {
        println!("{line}");
    }
    println!("  ... ({} lines total)", xslt.lines().count());
}

/// Encodes the XML catalog into the fixture's ranked alphabet:
/// `L(B*(B(A(P),T(P),Y(P)), B*(...)))` with pcdata values `P`/`P'`.
fn encode_library(doc: &UTree) -> Tree {
    let books = doc.children();
    let mut list = Tree::node("B*", vec![Tree::leaf_named("#"), Tree::leaf_named("#")]);
    for book in books.iter().rev() {
        let field = |i: usize| -> Tree {
            let elem = &book.children()[i];
            let value = match &elem.children()[0] {
                UTree::Text(s) => s.clone(),
                _ => panic!("expected text"),
            };
            let tag = match i {
                0 => "A",
                1 => "T",
                _ => "Y",
            };
            Tree::node(tag, vec![Tree::leaf_named(&value)])
        };
        let b = Tree::node("B", vec![field(0), field(1), field(2)]);
        list = Tree::node("B*", vec![b, list]);
    }
    Tree::node("L", vec![list])
}
