//! E13 — event-driven output emission (`Engine::transform_streaming`).
//!
//! Measures what tree-at-root-close cannot deliver: the **first output
//! byte** leaves while the input is still being read, and the resident
//! output state (buffered frames) stays flat as documents grow. Each
//! family runs a ladder of document sizes; the in-run asserts pin
//!
//!   * streamed bytes ≡ batch bytes (byte-identical emission),
//!   * on order-preserving families, `peak_buffered_frames` does **not**
//!     scale with document size (the ladder's largest rung buffers no
//!     more than its smallest — the E12-style O(depth) discipline, here
//!     O(1) because nothing permutes),
//!   * order-preserving families emit **every** event early (before the
//!     document completes) and first-byte latency stays well under total
//!     evaluation time on the deep rungs.
//!
//! Shared by the `exp_e13_stream` binary (which also writes
//! `BENCH_stream.json`).

use std::io::{self, Write};
use std::time::Instant;

use serde::Serialize;
use xtt_engine::{DocFormat, Engine, EngineOptions, EvalMode};
use xtt_transducer::{examples, Dtop, DtopBuilder};
use xtt_trees::RankedAlphabet;

/// One corpus rung: a transducer, a document, the size parameter it was
/// generated from, and whether the transducer is order-preserving (the
/// families the flat-buffering gate applies to).
pub struct StreamWorkload {
    pub family: &'static str,
    /// Ladder parameter (chain depth / list length).
    pub param: usize,
    pub dtop: Dtop,
    pub doc: String,
    pub format: DocFormat,
    /// True when every rule emits its calls in child order — the
    /// streaming fast path; these rows are gated on flat buffering and
    /// all-early emission.
    pub order_preserving: bool,
}

/// One measured row of E13.
#[derive(Debug, Clone, Serialize)]
pub struct StreamRow {
    pub family: &'static str,
    pub param: usize,
    pub input_bytes: usize,
    pub output_bytes: u64,
    pub events_total: u64,
    pub events_early: u64,
    pub peak_buffered_frames: usize,
    pub skipped_subtrees: u64,
    /// Latency start → first output byte (best of rounds).
    pub first_byte_micros: u128,
    /// Latency start → document complete, streaming emission.
    pub total_micros: u128,
    /// Same document through the batch path (tree at root close, then
    /// serialize) — its first byte leaves only after this long.
    pub batch_micros: u128,
    pub order_preserving: bool,
}

/// Identity on monadic chains: `q,f → f(<q,x1>)`, `q,e → e` — fully
/// order-preserving, so every output byte can leave the moment its input
/// symbol is read.
fn chain_identity() -> Dtop {
    let alpha = RankedAlphabet::from_pairs([("f", 1), ("e", 0)]);
    let mut b = DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q");
    b.set_axiom_str("<q,x0>").expect("axiom parses");
    b.add_rule_str("q", "f", "f(<q,x1>)").expect("rule parses");
    b.add_rule_str("q", "e", "e").expect("rule parses");
    b.build().expect("chain identity is well-formed")
}

/// The `prune` dtop over the fc/ns encoding: drop every `<b>` subtree,
/// keep everything else — order-preserving *and* deleting, so the rung
/// also exercises the encoded-skip fast path.
fn fcns_prune() -> Dtop {
    let alpha =
        RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("pcdata", 2), ("#", 0)]);
    let mut b = DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q0");
    b.add_state("q");
    b.set_axiom_str("<q0,x0>").expect("axiom parses");
    b.add_rule_str("q0", "root", "root(<q,x1>,<q,x2>)")
        .expect("rule parses");
    b.add_rule_str("q", "a", "a(<q,x1>,<q,x2>)").expect("rule");
    b.add_rule_str("q", "b", "<q,x2>").expect("rule");
    b.add_rule_str("q", "pcdata", "pcdata(#,<q,x2>)")
        .expect("rule");
    b.add_rule_str("q", "#", "#").expect("rule");
    b.build().expect("prune dtop is well-formed")
}

/// `f^depth(e)` in term syntax.
fn chain_doc(depth: usize) -> String {
    let mut s = String::with_capacity(depth * 2 + 4);
    for _ in 0..depth {
        s.push_str("f(");
    }
    s.push('e');
    s.push_str(&")".repeat(depth));
    s
}

/// A deep unranked XML document: an `<a>` spine of the given depth with
/// a deleted `<b>` bush (element-first content, so the encoded skip
/// fast-forwards the raw tokenizer) every few levels.
fn deep_xml(depth: usize) -> String {
    let mut s = String::with_capacity(depth * 8 + 32);
    s.push_str("<root>");
    for i in 0..depth {
        s.push_str("<a>");
        if i % 8 == 0 {
            s.push_str("<b><a>dropped</a><a/></b>");
        }
    }
    for _ in 0..depth {
        s.push_str("</a>");
    }
    s.push_str("</root>");
    s
}

/// The standard E13 ladders (full scale). Depths stay within the term
/// parser's recursion budget on the main thread; a 16× size span is
/// plenty to expose peak buffering that scales with the document.
pub fn stream_workloads() -> Vec<StreamWorkload> {
    stream_workloads_scaled(&[512, 2048, 8192])
}

/// E13 ladders at explicit rung sizes (debug tests run tiny rungs).
pub fn stream_workloads_scaled(ladder: &[usize]) -> Vec<StreamWorkload> {
    let mut out = Vec::new();
    for &n in ladder {
        out.push(StreamWorkload {
            family: "chain_id/term",
            param: n,
            dtop: chain_identity(),
            doc: chain_doc(n),
            format: DocFormat::Term,
            order_preserving: true,
        });
    }
    for &n in ladder {
        out.push(StreamWorkload {
            family: "prune/fcns",
            param: n,
            dtop: fcns_prune(),
            doc: deep_xml(n),
            format: DocFormat::parse("fcns").expect("fcns format"),
            order_preserving: true,
        });
    }
    // Contrast rung: flip permutes at the root, so its whole output is
    // buffered until root close — no early events, and that is correct.
    for &n in ladder {
        out.push(StreamWorkload {
            family: "flip/term",
            param: n,
            dtop: examples::flip().dtop,
            doc: examples::flip_input(n.min(2048), n.min(2048)).to_string(),
            format: DocFormat::Term,
            order_preserving: false,
        });
    }
    out
}

/// Sink that timestamps the first byte and otherwise counts.
struct FirstByteSink {
    t0: Instant,
    first: Option<std::time::Duration>,
    bytes: u64,
}

impl Write for FirstByteSink {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.first.is_none() && !data.is_empty() {
            self.first = Some(self.t0.elapsed());
        }
        self.bytes += data.len() as u64;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn best_of(rounds: usize, mut f: impl FnMut() -> (u128, u128)) -> (u128, u128) {
    let mut best = (u128::MAX, u128::MAX);
    for _ in 0..rounds {
        let (first, total) = f();
        if total < best.1 {
            best = (first, total);
        }
    }
    best
}

/// Runs the E13 grid with the in-run asserts.
pub fn run_e13(workloads: &[StreamWorkload], rounds: usize) -> Vec<StreamRow> {
    let engine = Engine::new(EngineOptions {
        workers: 1,
        mode: EvalMode::Streaming,
        ..EngineOptions::default()
    });
    let mut rows = Vec::new();
    for w in workloads {
        // Batch reference: same evaluation, tree at root close.
        let (batch_out, batch_time) = {
            let t0 = Instant::now();
            let out = engine
                .transform_with(&w.dtop, &w.doc, EvalMode::Streaming, w.format.clone())
                .expect("batch transform succeeds");
            (out, t0.elapsed())
        };

        // Byte-identity: streamed emission reproduces the batch bytes.
        let mut streamed = Vec::new();
        let skips_before = engine.skipped_subtrees();
        let outcome = engine
            .transform_streaming_with(&w.dtop, &w.doc, w.format.clone(), false, &mut streamed)
            .expect("streaming transform succeeds");
        let skipped = engine.skipped_subtrees() - skips_before;
        assert_eq!(
            streamed,
            batch_out.as_bytes(),
            "{} n={}: streamed bytes differ from tree-at-root-close",
            w.family,
            w.param
        );

        let (first_byte_micros, total_micros) = best_of(rounds, || {
            let mut sink = FirstByteSink {
                t0: Instant::now(),
                first: None,
                bytes: 0,
            };
            engine
                .transform_streaming_with(&w.dtop, &w.doc, w.format.clone(), false, &mut sink)
                .expect("streaming transform succeeds");
            let total = sink.t0.elapsed().as_micros();
            (sink.first.expect("output produced").as_micros(), total)
        });

        if w.order_preserving {
            // The whole point of event-driven emission: nothing waits
            // for root close, so nothing is ever buffered and every
            // event is emitted early.
            assert_eq!(
                outcome.peak_buffered_frames, 0,
                "{} n={}: order-preserving run buffered output frames",
                w.family, w.param
            );
            assert_eq!(
                outcome.events_emitted_early, outcome.events_total,
                "{} n={}: order-preserving run held events back",
                w.family, w.param
            );
        }

        rows.push(StreamRow {
            family: w.family,
            param: w.param,
            input_bytes: w.doc.len(),
            output_bytes: outcome.bytes_written,
            events_total: outcome.events_total,
            events_early: outcome.events_emitted_early,
            peak_buffered_frames: outcome.peak_buffered_frames,
            skipped_subtrees: skipped,
            first_byte_micros,
            total_micros,
            batch_micros: batch_time.as_micros(),
            order_preserving: w.order_preserving,
        });
    }

    // Ladder gate, E12-style but for output state: within each
    // order-preserving family, the largest rung must buffer no more than
    // the smallest — peak resident output state is flat in document
    // size (O(depth) would already pass; these families achieve O(1)).
    for family in ["chain_id/term", "prune/fcns"] {
        let fam: Vec<&StreamRow> = rows.iter().filter(|r| r.family == family).collect();
        let min = fam.iter().min_by_key(|r| r.param).expect("family has rows");
        let max = fam.iter().max_by_key(|r| r.param).expect("family has rows");
        assert!(
            max.peak_buffered_frames <= min.peak_buffered_frames + 2,
            "{family}: peak buffered frames scale with document size \
             ({} at n={} vs {} at n={})",
            max.peak_buffered_frames,
            max.param,
            min.peak_buffered_frames,
            min.param
        );
    }

    rows
}

/// Renders the E13 table.
pub fn print_e13(rows: &[StreamRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.family.to_string(),
                r.param.to_string(),
                r.input_bytes.to_string(),
                r.output_bytes.to_string(),
                format!("{}/{}", r.events_early, r.events_total),
                r.peak_buffered_frames.to_string(),
                r.skipped_subtrees.to_string(),
                r.first_byte_micros.to_string(),
                r.total_micros.to_string(),
                r.batch_micros.to_string(),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "family",
            "n",
            "in_B",
            "out_B",
            "early/total",
            "peak_buf",
            "skips",
            "first_us",
            "total_us",
            "batch_us",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-scale E13: tiny rungs, one round — the in-run asserts
    /// (byte identity, flat buffering, all-early emission) are the test.
    #[test]
    fn e13_rows_hold_the_flat_buffering_and_identity_invariants() {
        let rows = run_e13(&stream_workloads_scaled(&[16, 64]), 1);
        assert_eq!(rows.len(), 6);
        let prune: Vec<&StreamRow> = rows.iter().filter(|r| r.family == "prune/fcns").collect();
        assert!(
            prune.iter().all(|r| r.skipped_subtrees > 0),
            "prune rungs should exercise the encoded skip fast path"
        );
        let flip: Vec<&StreamRow> = rows.iter().filter(|r| r.family == "flip/term").collect();
        assert!(
            flip.iter().all(|r| r.events_early == 0),
            "flip permutes at the root; nothing can be emitted early"
        );
    }

    /// The corpus generators stay in the transducers' domains.
    #[test]
    fn corpus_parses_and_transforms() {
        let engine = Engine::new(EngineOptions::default());
        let out = engine
            .transform_with(
                &chain_identity(),
                &chain_doc(3),
                EvalMode::Streaming,
                DocFormat::Term,
            )
            .expect("chain doc in domain");
        assert_eq!(out, "f(f(f(e)))");
        let out = engine
            .transform_with(
                &fcns_prune(),
                &deep_xml(2),
                EvalMode::Streaming,
                DocFormat::parse("fcns").expect("fcns"),
            )
            .expect("xml doc in domain");
        assert!(!out.contains("<b>"), "prune drops every <b>: {out}");
    }
}
