//! E16 — observability overhead: what does `--trace-sample 1` cost?
//!
//! Two identical in-process servers answer the same E14-style
//! baseline_fresh workload, one with tracing disabled (`trace_sample:
//! 0`, the default no-observer path) and one tracing **every** request
//! (`trace_sample: 1`, the worst case). Rounds alternate between the
//! two servers so clock drift, turbo state, and page-cache warmth hit
//! both configurations equally; the reported comparison is the median
//! per-round throughput, which a single noisy round cannot move.
//!
//! The run also fetches one traced response and reconstructs the stage
//! breakdown from its `Server-Timing` header — proving the tracing
//! plumbing end-to-end (id header present, every expected pipeline
//! stage named, durations parse and sum to something non-trivial).
//!
//! Shared by the `exp_e16_obs` binary, which writes `BENCH_obs.json`
//! and enforces the ≤ 3 % overhead gate in CI.

use std::time::{Duration, Instant};

use serde::Serialize;
use xtt_engine::EngineOptions;
use xtt_obs::Histogram;
use xtt_serve::{ServeClient, ServeOptions, Server};
use xtt_transducer::examples;

use crate::serve_exp::{peak_rss_kb, request_body, stat_u64};

/// Knobs for the E16 A/B run (debug tests use a tiny version).
pub struct E16Options {
    /// Request worker threads per server.
    pub workers: usize,
    /// Interleaved rounds per configuration.
    pub rounds: usize,
    /// Sequential requests measured per round.
    pub requests_per_round: usize,
    /// Documents per transform request.
    pub docs_per_request: usize,
}

impl Default for E16Options {
    fn default() -> E16Options {
        E16Options {
            workers: 4,
            rounds: 7,
            requests_per_round: 60,
            docs_per_request: 20,
        }
    }
}

/// One configuration's aggregate over all its rounds.
#[derive(Debug, Clone, Serialize)]
pub struct ObsRow {
    pub config: &'static str,
    /// The server's `--trace-sample` setting (0 = tracing off).
    pub trace_sample: u64,
    pub requests: u64,
    pub errors: u64,
    pub docs: u64,
    pub elapsed_millis: u128,
    /// Throughput over the summed round wall time.
    pub docs_per_sec: f64,
    /// Median of the per-round throughputs — what the gate compares.
    pub median_round_docs_per_sec: f64,
    pub p50_micros: u64,
    pub p99_micros: u64,
    pub p999_micros: u64,
    pub max_micros: u64,
    /// `tracing.traces_sampled` from the server's own /stats.
    pub traces_sampled: u64,
    pub peak_rss_kb: u64,
}

/// The reconstructed stage breakdown of one traced response.
#[derive(Debug, Clone, Serialize)]
pub struct StageCheck {
    /// `X-Xtt-Trace-Id` value (16 hex digits).
    pub trace_id: String,
    /// `(stage, milliseconds)` parsed from `Server-Timing`, in
    /// pipeline order.
    pub stages: Vec<(String, f64)>,
    /// Sum of the stage durations, ms.
    pub stage_sum_ms: f64,
}

struct Lane {
    config: &'static str,
    trace_sample: u64,
    client: ServeClient,
    runner: std::thread::JoinHandle<std::io::Result<()>>,
    latency: Histogram,
    round_rates: Vec<f64>,
    errors: u64,
    docs: u64,
    elapsed: Duration,
}

fn boot_lane(config: &'static str, trace_sample: u64, workers: usize) -> Lane {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers,
            queue_capacity: 256,
            trace_sample,
            // Keep the slow log out of the measurement: E16 times the
            // happy path, not stderr formatting.
            slow_request: Duration::ZERO,
            engine: EngineOptions {
                workers: 1,
                ..ServeOptions::default().engine
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().expect("bound address");
    let runner = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr)
        .expect("resolve address")
        .with_timeout(Duration::from_secs(30));
    assert!(client.wait_ready(Duration::from_secs(5)), "server not up");
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .expect("upload flip");
    Lane {
        config,
        trace_sample,
        client,
        runner,
        latency: Histogram::new(),
        round_rates: Vec::new(),
        errors: 0,
        docs: 0,
        elapsed: Duration::ZERO,
    }
}

/// One measured round of sequential requests against a lane.
fn round(lane: &mut Lane, body: &str, requests: usize, docs_per_request: usize) {
    let t0 = Instant::now();
    let mut docs = 0u64;
    for _ in 0..requests {
        let r0 = Instant::now();
        match lane.client.request("POST", "/transform/flip", body) {
            Ok(resp) if resp.status == 200 => {
                lane.latency.record(r0.elapsed().as_micros() as u64);
                docs += docs_per_request as u64;
            }
            Ok(_) | Err(_) => lane.errors += 1,
        }
    }
    let elapsed = t0.elapsed();
    lane.docs += docs;
    lane.elapsed += elapsed;
    lane.round_rates
        .push(docs as f64 / elapsed.as_secs_f64().max(1e-9));
}

fn median(rates: &[f64]) -> f64 {
    let mut sorted = rates.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    match sorted.len() {
        0 => 0.0,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
    }
}

fn finish_lane(lane: Lane) -> ObsRow {
    let stats = lane.client.stats().expect("stats").body_str();
    let traces_sampled = stat_u64(&stats, "traces_sampled");
    lane.client.shutdown().expect("shutdown");
    lane.runner
        .join()
        .expect("server thread")
        .expect("server exits");
    let snap = lane.latency.snapshot();
    ObsRow {
        config: lane.config,
        trace_sample: lane.trace_sample,
        requests: snap.count() + lane.errors,
        errors: lane.errors,
        docs: lane.docs,
        elapsed_millis: lane.elapsed.as_millis(),
        docs_per_sec: lane.docs as f64 / lane.elapsed.as_secs_f64().max(1e-9),
        median_round_docs_per_sec: median(&lane.round_rates),
        p50_micros: snap.p50(),
        p99_micros: snap.p99(),
        p999_micros: snap.p999(),
        max_micros: snap.max(),
        traces_sampled,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Fetches one traced response and reconstructs the stage breakdown
/// from its headers. Panics if the tracing plumbing is broken.
fn stage_check(lane: &Lane, body: &str) -> StageCheck {
    let resp = lane
        .client
        .request("POST", "/transform/flip", body)
        .expect("traced request");
    assert_eq!(resp.status, 200, "traced request failed");
    let trace_id = resp
        .header("x-xtt-trace-id")
        .expect("traced response missing X-Xtt-Trace-Id")
        .to_owned();
    assert_eq!(trace_id.len(), 16, "trace id not 16 hex digits: {trace_id}");
    assert!(
        trace_id.bytes().all(|b| b.is_ascii_hexdigit()),
        "trace id not hex: {trace_id}"
    );
    let timing = resp
        .header("server-timing")
        .expect("traced response missing Server-Timing");
    // `tokenize;dur=0.123, eval;dur=1.200, emit;dur=0.050`
    let stages: Vec<(String, f64)> = timing
        .split(", ")
        .map(|entry| {
            let (name, dur) = entry
                .split_once(";dur=")
                .unwrap_or_else(|| panic!("unparseable Server-Timing entry '{entry}'"));
            let ms: f64 = dur
                .parse()
                .unwrap_or_else(|_| panic!("bad duration in '{entry}'"));
            (name.to_owned(), ms)
        })
        .collect();
    let names: Vec<&str> = stages.iter().map(|(n, _)| n.as_str()).collect();
    // Term-format, unvalidated flip: tokenize → eval → emit (no ranked
    // encoding, no guard). All three must be present, in order.
    assert_eq!(
        names,
        ["tokenize", "eval", "emit"],
        "unexpected stage breakdown in Server-Timing: {timing}"
    );
    let stage_sum_ms: f64 = stages.iter().map(|(_, ms)| ms).sum();
    assert!(
        stages.iter().all(|(_, ms)| *ms >= 0.0),
        "negative stage duration: {timing}"
    );
    StageCheck {
        trace_id,
        stages,
        stage_sum_ms,
    }
}

/// Runs the interleaved A/B grid plus the stage-breakdown check.
pub fn run_e16(opts: &E16Options) -> (Vec<ObsRow>, StageCheck) {
    let body = request_body(opts.docs_per_request);
    let mut untraced = boot_lane("untraced", 0, opts.workers);
    let mut traced = boot_lane("traced_every", 1, opts.workers);

    // Warm both lanes (compile cache, page tables) outside the clock.
    round(&mut untraced, &body, 5, opts.docs_per_request);
    round(&mut traced, &body, 5, opts.docs_per_request);
    untraced.round_rates.clear();
    traced.round_rates.clear();

    for _ in 0..opts.rounds {
        round(
            &mut untraced,
            &body,
            opts.requests_per_round,
            opts.docs_per_request,
        );
        round(
            &mut traced,
            &body,
            opts.requests_per_round,
            opts.docs_per_request,
        );
    }

    let check = stage_check(&traced, &body);
    let rows = vec![finish_lane(untraced), finish_lane(traced)];
    for r in &rows {
        assert_eq!(r.errors, 0, "{}: {} failed requests", r.config, r.errors);
        assert!(r.docs > 0, "{}: no documents served", r.config);
    }
    let traced_row = &rows[1];
    // Every transform request against the traced lane is 1-in-1 sampled
    // (warmup + measured rounds + the stage check).
    assert!(
        traced_row.traces_sampled >= traced_row.requests,
        "traced lane sampled {} of {} requests",
        traced_row.traces_sampled,
        traced_row.requests
    );
    let untraced_row = &rows[0];
    assert_eq!(
        untraced_row.traces_sampled, 0,
        "untraced lane sampled traces"
    );
    (rows, check)
}

/// Tracing overhead on median round throughput, as a fraction
/// (0.03 = traced is 3 % slower). Negative means traced measured faster
/// (pure noise — the gate treats it as zero overhead).
pub fn overhead(rows: &[ObsRow]) -> f64 {
    let untraced = rows.iter().find(|r| r.trace_sample == 0).expect("untraced");
    let traced = rows.iter().find(|r| r.trace_sample != 0).expect("traced");
    1.0 - traced.median_round_docs_per_sec / untraced.median_round_docs_per_sec.max(1e-9)
}

/// Renders the E16 table.
pub fn print_e16(rows: &[ObsRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                r.trace_sample.to_string(),
                r.requests.to_string(),
                r.errors.to_string(),
                r.docs.to_string(),
                format!("{:.0}", r.docs_per_sec),
                format!("{:.0}", r.median_round_docs_per_sec),
                r.p50_micros.to_string(),
                r.p99_micros.to_string(),
                r.p999_micros.to_string(),
                r.max_micros.to_string(),
                r.traces_sampled.to_string(),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "config",
            "sample",
            "reqs",
            "errs",
            "docs",
            "docs/s",
            "med docs/s",
            "p50_us",
            "p99_us",
            "p999_us",
            "max_us",
            "traces",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-scale E16: the in-run asserts (zero errors, every traced
    /// request sampled, Server-Timing reconstructs tokenize/eval/emit)
    /// are the test. The 3 % gate is NOT applied here — debug builds
    /// are far too noisy — only in the release binary.
    #[test]
    fn e16_traces_every_request_and_reconstructs_the_stage_breakdown() {
        let (rows, check) = run_e16(&E16Options {
            workers: 2,
            rounds: 2,
            requests_per_round: 5,
            docs_per_request: 4,
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].config, "untraced");
        assert_eq!(rows[1].config, "traced_every");
        assert_eq!(check.stages.len(), 3);
        assert!(check.stage_sum_ms >= 0.0);
        assert!(overhead(&rows).is_finite());
    }
}
