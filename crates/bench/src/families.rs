//! Scalable transducer families for the E4/E5 scaling experiments, plus
//! the canonical targets of the fixed-size experiments.

use xtt_automata::Dtta;
use xtt_transducer::{canonical_form, examples, Canonical, Dtop};
use xtt_xml::xmlflip;

/// The canonical τflip target (E1).
pub fn flip_target() -> Canonical {
    let fix = examples::flip();
    canonical_form(&fix.dtop, Some(&fix.domain)).expect("flip canonicalizes")
}

/// The canonical library target (E2).
pub fn library_target() -> Canonical {
    let fix = examples::library();
    canonical_form(&fix.dtop, None).expect("library canonicalizes")
}

/// The canonical xmlflip target over paper-style DTD encodings (E3).
pub fn xmlflip_target() -> Canonical {
    let dtop = xmlflip::target_dtop();
    let domain = xmlflip::input_encoding().domain();
    canonical_form(&dtop, Some(&domain)).expect("xmlflip canonicalizes")
}

/// The canonical xmlflip target over path-closed encodings.
pub fn xmlflip_target_pc() -> Canonical {
    let dtop = xmlflip::target_dtop_pc();
    let domain = xmlflip::input_encoding_pc().domain();
    canonical_form(&dtop, Some(&domain)).expect("xmlflip-pc canonicalizes")
}

/// The `flip_k` family (k sibling groups, reversed): `min(τ)` has `2k`
/// states; used for sample-size and learning-time scaling.
pub fn flip_k_target(k: usize) -> Canonical {
    let fix = examples::flip_k(k);
    canonical_form(&fix.dtop, Some(&fix.domain)).expect("flip_k canonicalizes")
}

/// The `relabel_chain` family (n states in a monadic cycle).
pub fn chain_target(n: usize) -> Canonical {
    let fix = examples::relabel_chain(n);
    canonical_form(&fix.dtop, None).expect("chain canonicalizes")
}

/// Raw fixtures for benches that need the original (non-canonical)
/// transducer, e.g. the earliest-construction benchmark.
pub fn raw_flip_k(k: usize) -> (Dtop, Dtta) {
    let fix = examples::flip_k(k);
    (fix.dtop, fix.domain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_have_expected_sizes() {
        assert_eq!(flip_target().dtop.state_count(), 4);
        assert_eq!(library_target().dtop.state_count(), 15);
        for k in 1..=4 {
            assert_eq!(flip_k_target(k).dtop.state_count(), 2 * k);
        }
        for n in 1..=4 {
            assert_eq!(chain_target(n).dtop.state_count(), n);
        }
    }

    #[test]
    fn xmlflip_targets_canonicalize() {
        let paper = xmlflip_target();
        let pc = xmlflip_target_pc();
        assert!(paper.dtop.state_count() >= 8);
        assert!(pc.dtop.state_count() >= 6);
    }
}
