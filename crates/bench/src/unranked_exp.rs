//! E12 — streaming vs materializing encoders on real unranked XML
//! (`xtt-unranked`).
//!
//! The question: what does skipping the intermediate trees buy? Two
//! pipelines produce the *same* ranked event stream from XML text:
//!
//! * **materialize** — `parse_xml` (build the `UTree`), batch-encode
//!   (`fcns_encode` / `Encoding::encode`, build the ranked `Tree`), then
//!   walk its events — the pre-PR pipeline;
//! * **stream** — SAX tokenizer → incremental encoder → events, with
//!   O(depth) live frames and no tree at all.
//!
//! Each row reports wall time for a corpus pass (best of N), events/sec
//! for both pipelines, and the **peak live nodes** of each: the whole
//! document for the materializing path, the encoder's high-water frame
//! count for the streaming one. The run *asserts* the O(depth) claim
//! (streaming peak ≤ a small multiple of the nesting depth, independent
//! of document size). Shared by the `exp_e12_fcns` binary, which also
//! writes `BENCH_fcns.json`.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use xtt_unranked::XmlCodec;
use xtt_xml::{fcns_encode, parse_xml, Dtd, Encoding, PcDataMode};

/// One E12 corpus: documents of a given shape family.
pub struct UnrankedWorkload {
    pub family: &'static str,
    /// Maximum element nesting depth across the corpus.
    pub depth: usize,
    pub codec: XmlCodec,
    pub docs: Vec<String>,
    /// `true` rows back the headline ≥1.5x acceptance check.
    pub deep: bool,
}

/// One row of the E12 table.
#[derive(Debug, Clone, Serialize)]
pub struct UnrankedRow {
    pub family: String,
    pub docs: usize,
    pub depth: usize,
    pub xml_bytes: usize,
    /// Ranked events per document corpus pass.
    pub events: u64,
    pub materialize_micros: u128,
    pub stream_micros: u128,
    pub materialize_events_per_sec: f64,
    pub stream_events_per_sec: f64,
    /// `materialize / stream` (>1 = streaming wins).
    pub speedup: f64,
    /// Peak live nodes: whole documents vs encoder frames.
    pub peak_live_materialize: u64,
    pub peak_live_stream: u64,
    pub deep: bool,
}

fn deep_doc(depth: usize, i: usize) -> String {
    // A chain of <a> elements with a small fringe at the bottom.
    format!(
        "{}<b/>{}{}",
        "<a>".repeat(depth),
        "<b/>".repeat(i % 3 + 1),
        "</a>".repeat(depth),
    )
}

fn wide_doc(width: usize, i: usize) -> String {
    format!("<a>{}{}</a>", "<a></a>".repeat(width), "<b/>".repeat(i % 5),)
}

fn mixed_doc(depth: usize, i: usize) -> String {
    let mut out = String::new();
    for d in 0..depth {
        out.push_str("<a>");
        out.push_str(&"<b/>".repeat(d % 4 + i % 3));
    }
    out.push_str(&"</a>".repeat(depth));
    format!("<a>{out}</a>")
}

fn recursive_dtd_doc(depth: usize) -> String {
    format!("{}{}", "<n>".repeat(depth), "</n>".repeat(depth))
}

/// The standard E12 workloads: deep/wide/mixed fc/ns corpora plus a
/// deep recursive-DTD corpus.
pub fn unranked_workloads() -> Vec<UnrankedWorkload> {
    unranked_workloads_scaled(800, 1500)
}

/// The E12 families at a chosen scale (the *batch* baseline recurses on
/// document depth, so debug-mode tests run the same shapes shallower).
pub fn unranked_workloads_scaled(depth: usize, width: usize) -> Vec<UnrankedWorkload> {
    let mixed_depth = depth / 7 + 1;
    let mut out = vec![
        UnrankedWorkload {
            family: "fcns_deep",
            depth,
            codec: XmlCodec::fcns(),
            docs: (0..40).map(|i| deep_doc(depth, i)).collect(),
            deep: true,
        },
        UnrankedWorkload {
            family: "fcns_wide",
            depth: 2,
            codec: XmlCodec::fcns(),
            docs: (0..40).map(|i| wide_doc(width, i)).collect(),
            deep: false,
        },
        UnrankedWorkload {
            family: "fcns_mixed",
            depth: mixed_depth + 1,
            codec: XmlCodec::fcns(),
            docs: (0..60).map(|i| mixed_doc(mixed_depth, i)).collect(),
            deep: true,
        },
    ];
    let dtd = Dtd::parse("<!ELEMENT n (n?) >").expect("recursive DTD");
    let enc = Arc::new(Encoding::new(dtd, PcDataMode::Abstract));
    out.push(UnrankedWorkload {
        family: "dtd_deep",
        depth: depth * 3 / 4,
        codec: XmlCodec::dtd(enc),
        docs: (0..40).map(|_| recursive_dtd_doc(depth * 3 / 4)).collect(),
        deep: true,
    });
    out
}

fn best_of(rounds: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Runs both pipelines over one workload.
pub fn unranked_row(w: &UnrankedWorkload, rounds: usize) -> UnrankedRow {
    let xml_bytes: usize = w.docs.iter().map(String::len).sum();

    // Correctness + accounting pass: identical event streams, peaks.
    let mut events = 0u64;
    let mut peak_stream = 0u64;
    let mut peak_materialize = 0u64;
    for doc in &w.docs {
        let mut it = w.codec.events(doc);
        let streamed: Vec<_> = (&mut it).map(|r| r.expect("valid corpus")).collect();
        peak_stream = peak_stream.max(it.peak_frames() as u64);
        events += streamed.len() as u64;
        let utree = parse_xml(doc).expect("well-formed corpus");
        peak_materialize = peak_materialize.max(utree.size() as u64);
        let batch = match &w.codec {
            XmlCodec::Fcns { .. } => fcns_encode(&utree),
            XmlCodec::Dtd { input, .. } => input.encode(&utree).expect("valid corpus"),
        };
        assert!(
            batch.events().eq(streamed.iter().copied()),
            "streaming encode diverged from batch on {}",
            w.family
        );
    }
    // The O(depth) claim, asserted: the streaming peak tracks nesting
    // depth (a few frames per level), never document size.
    assert!(
        peak_stream <= 4 * w.depth as u64 + 8,
        "{}: streaming peak {} exceeds O(depth) bound for depth {}",
        w.family,
        peak_stream,
        w.depth
    );

    let materialize = best_of(rounds, || {
        for doc in &w.docs {
            let utree = parse_xml(doc).expect("well-formed corpus");
            let tree = match &w.codec {
                XmlCodec::Fcns { .. } => fcns_encode(&utree),
                XmlCodec::Dtd { input, .. } => input.encode(&utree).expect("valid corpus"),
            };
            black_box(tree.events().count());
        }
    });
    let stream = best_of(rounds, || {
        for doc in &w.docs {
            black_box(w.codec.events(doc).fold(0u64, |n, r| {
                r.expect("valid corpus");
                n + 1
            }));
        }
    });

    UnrankedRow {
        family: w.family.to_owned(),
        docs: w.docs.len(),
        depth: w.depth,
        xml_bytes,
        events,
        materialize_micros: materialize.as_micros(),
        stream_micros: stream.as_micros(),
        materialize_events_per_sec: events as f64 / materialize.as_secs_f64().max(1e-9),
        stream_events_per_sec: events as f64 / stream.as_secs_f64().max(1e-9),
        speedup: materialize.as_secs_f64() / stream.as_secs_f64().max(1e-9),
        peak_live_materialize: peak_materialize,
        peak_live_stream: peak_stream,
        deep: w.deep,
    }
}

/// E12 — streaming encode vs materialize-then-encode.
pub fn run_e12() -> Vec<UnrankedRow> {
    println!("\n== E12: streaming vs materializing unranked-XML encoders ==");
    let rows: Vec<UnrankedRow> = unranked_workloads()
        .iter()
        .map(|w| unranked_row(w, 5))
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.docs.to_string(),
                r.events.to_string(),
                r.materialize_micros.to_string(),
                r.stream_micros.to_string(),
                format!("{:.1}", r.stream_events_per_sec / 1e6),
                format!("{:.2}x", r.speedup),
                r.peak_live_materialize.to_string(),
                r.peak_live_stream.to_string(),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "corpus",
            "docs",
            "events",
            "materialize µs",
            "stream µs",
            "Mev/s(s)",
            "speedup",
            "peak live(m)",
            "peak live(s)",
        ],
        &table,
    );
    println!(
        "shape check: streaming ≥ 1.5x on deep corpora; streaming peak live state is O(depth)."
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_rows_hold_the_peak_and_agreement_invariants() {
        // One cheap round over trimmed corpora: the in-row assertions
        // (event-stream agreement, O(depth) peak) must hold. For deep
        // chains depth ≈ document size, so the separation between the
        // two peaks shows on the wide corpus: the materializing path
        // holds every sibling, the streaming path a couple of frames.
        for mut w in unranked_workloads_scaled(60, 800) {
            w.docs.truncate(3);
            let row = unranked_row(&w, 1);
            assert!(row.events > 0);
            if row.family == "fcns_wide" {
                assert!(
                    row.peak_live_stream * 100 < row.peak_live_materialize,
                    "wide corpus: stream peak {} vs materialize peak {}",
                    row.peak_live_stream,
                    row.peak_live_materialize
                );
            }
        }
    }
}
