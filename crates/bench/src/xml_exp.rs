//! E15 — tokenizer hot-path throughput (`xtt-xml`): SIMD/SWAR structural
//! scanning vs the scalar reference loop.
//!
//! The rebuilt tokenizer finds structural bytes (`<`, `&`, quotes) with a
//! vectorized scanner — SSE2 on x86_64, a portable u64 SWAR fallback
//! elsewhere — behind the same `memchr`/`memchr2` interface as the
//! byte-at-a-time reference loop it replaced. `XmlOptions::scalar_scan`
//! keeps the reference loop selectable at runtime, so one binary can
//! race the two over identical corpora doing *full tokenization* (events
//! materialized and counted, attributes parsed, entities decoded) — not
//! a scan microbenchmark.
//!
//! Three generated corpora (≥ 1 MB each) bracket real documents:
//!
//! * **mixed** — element trees with text runs, attributes, comments, and
//!   CDATA in realistic proportions (the headline row; CI gates on it);
//! * **text_heavy** — long character-data runs with occasional entities
//!   (scanning dominates; the vector paths' best case);
//! * **attr_heavy** — dense markup, many attributes per element, short
//!   values (markup dispatch dominates; the vector paths' worst case).
//!
//! Shared by the `exp_e15_xml` binary, which writes `BENCH_xml.json` and
//! exits nonzero when the mixed-corpus speedup falls below 2x.

use std::hint::black_box;
use std::time::{Duration, Instant};

use serde::Serialize;
use xtt_xml::xmlparse::{xml_events_with, XmlEvent, XmlOptions};

/// One E15 corpus: a single large generated document plus its family tag.
pub struct XmlWorkload {
    pub family: &'static str,
    pub doc: String,
}

/// One row of the E15 table.
#[derive(Debug, Clone, Serialize)]
pub struct XmlRow {
    pub family: String,
    pub bytes: usize,
    /// Events per full-document tokenization pass.
    pub events: u64,
    pub scalar_micros: u128,
    pub simd_micros: u128,
    pub scalar_mb_per_sec: f64,
    pub simd_mb_per_sec: f64,
    /// `scalar / simd` (>1 = the vector scanner wins).
    pub speedup: f64,
}

/// Deterministic xorshift so corpora are identical across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const WORDS: [&str; 12] = [
    "transducer",
    "deterministic",
    "top-down",
    "earliest",
    "normal form",
    "learning",
    "sample",
    "characteristic",
    "myhill",
    "nerode",
    "semantics",
    "polynomial",
];

fn push_text(out: &mut String, rng: &mut Rng, words: usize, entities: bool) {
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.below(WORDS.len())]);
        if entities && rng.below(24) == 0 {
            out.push_str(["&amp;", "&lt;", "&gt;", "&#233;"][rng.below(4)]);
        }
    }
}

/// Element trees with text runs, attributes, comments, CDATA — the
/// proportions of a text-centric document corpus.
fn mixed_doc(target_bytes: usize) -> String {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<?xml version=\"1.0\"?><corpus>");
    let mut n = 0usize;
    while out.len() < target_bytes {
        n += 1;
        out.push_str(&format!("<record id=\"r{n}\" kind=\"entry\">"));
        out.push_str("<title>");
        let w = 4 + rng.below(5);
        push_text(&mut out, &mut rng, w, false);
        out.push_str("</title>");
        for _ in 0..3 + rng.below(3) {
            out.push_str("<para>");
            let w = 40 + rng.below(60);
            push_text(&mut out, &mut rng, w, true);
            out.push_str("</para>");
        }
        if rng.below(5) == 0 {
            out.push_str("<!-- generated -->");
        }
        if rng.below(7) == 0 {
            out.push_str("<code><![CDATA[if a < b && b > c { flip() }]]></code>");
        }
        out.push_str("<ref tag=\"x\"/></record>");
    }
    out.push_str("</corpus>");
    out
}

/// Long character-data runs, sparse markup, occasional entities.
fn text_heavy_doc(target_bytes: usize) -> String {
    let mut rng = Rng(0xdeadbeefcafef00d);
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<doc>");
    while out.len() < target_bytes {
        out.push_str("<p>");
        let w = 300 + rng.below(200);
        push_text(&mut out, &mut rng, w, true);
        out.push_str("</p>");
    }
    out.push_str("</doc>");
    out
}

/// Dense markup: short elements carrying many short attributes.
fn attr_heavy_doc(target_bytes: usize) -> String {
    let mut rng = Rng(0x123456789abcdef1);
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<table>");
    let mut n = 0usize;
    while out.len() < target_bytes {
        n += 1;
        out.push_str(&format!("<row id=\"i{n}\""));
        for a in 0..6 + rng.below(5) {
            out.push_str(&format!(
                " c{a}=\"{} {}\"",
                WORDS[rng.below(WORDS.len())],
                rng.below(1000)
            ));
        }
        out.push_str("/>");
    }
    out.push_str("</table>");
    out
}

/// The standard E15 corpora at the default ≥ 1 MB scale.
pub fn xml_workloads() -> Vec<XmlWorkload> {
    xml_workloads_scaled(1 << 20)
}

/// The E15 corpora at a chosen byte target (tests run them smaller).
pub fn xml_workloads_scaled(target_bytes: usize) -> Vec<XmlWorkload> {
    vec![
        XmlWorkload {
            family: "mixed",
            doc: mixed_doc(target_bytes),
        },
        XmlWorkload {
            family: "text_heavy",
            doc: text_heavy_doc(target_bytes),
        },
        XmlWorkload {
            family: "attr_heavy",
            doc: attr_heavy_doc(target_bytes),
        },
    ]
}

fn best_of(rounds: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn tokenize(doc: &str, opts: XmlOptions) -> u64 {
    let mut events = 0u64;
    for ev in xml_events_with(doc, opts) {
        black_box(&ev);
        ev.expect("generated corpus is well-formed");
        events += 1;
    }
    events
}

/// Races full tokenization (scalar scan vs vector scan) over one corpus.
pub fn xml_row(w: &XmlWorkload, rounds: usize) -> XmlRow {
    let simd_opts = XmlOptions::default();
    let scalar_opts = XmlOptions {
        scalar_scan: true,
        ..XmlOptions::default()
    };

    // Correctness pass: the two scanners must yield identical events.
    let simd_events: Vec<XmlEvent<'_>> = xml_events_with(&w.doc, simd_opts)
        .map(|r| r.expect("generated corpus is well-formed"))
        .collect();
    let agree = xml_events_with(&w.doc, scalar_opts)
        .map(|r| r.expect("generated corpus is well-formed"))
        .eq(simd_events.iter().cloned());
    assert!(agree, "{}: scalar and vector scans diverged", w.family);
    let events = simd_events.len() as u64;
    drop(simd_events);

    let scalar = best_of(rounds, || {
        black_box(tokenize(&w.doc, scalar_opts));
    });
    let simd = best_of(rounds, || {
        black_box(tokenize(&w.doc, simd_opts));
    });

    let mb = w.doc.len() as f64 / 1e6;
    XmlRow {
        family: w.family.to_owned(),
        bytes: w.doc.len(),
        events,
        scalar_micros: scalar.as_micros(),
        simd_micros: simd.as_micros(),
        scalar_mb_per_sec: mb / scalar.as_secs_f64().max(1e-9),
        simd_mb_per_sec: mb / simd.as_secs_f64().max(1e-9),
        speedup: scalar.as_secs_f64() / simd.as_secs_f64().max(1e-9),
    }
}

/// E15 — tokenizer throughput, scalar vs vector structural scanning.
pub fn run_e15() -> Vec<XmlRow> {
    println!("\n== E15: XML tokenizer hot path — scalar vs SIMD/SWAR scanning ==");
    let rows: Vec<XmlRow> = xml_workloads().iter().map(|w| xml_row(w, 7)).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.bytes.to_string(),
                r.events.to_string(),
                r.scalar_micros.to_string(),
                r.simd_micros.to_string(),
                format!("{:.0}", r.scalar_mb_per_sec),
                format!("{:.0}", r.simd_mb_per_sec),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "corpus",
            "bytes",
            "events",
            "scalar µs",
            "simd µs",
            "MB/s(scalar)",
            "MB/s(simd)",
            "speedup",
        ],
        &table,
    );
    println!("shape check: full tokenization (not a scan microbenchmark); gate is mixed ≥ 2x.");
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_rows_hold_the_agreement_invariant() {
        // Small corpora, one round: the in-row scalar≡vector assertion
        // and well-formedness expectations must hold.
        for w in xml_workloads_scaled(20_000) {
            let row = xml_row(&w, 1);
            assert!(row.events > 0, "{}: no events", row.family);
            assert!(row.bytes >= 20_000);
        }
    }
}
