//! E14 — `xtt-load`: serving-traffic benchmark against the epoll front
//! end of `xtt-serve`.
//!
//! Three scenarios against an in-process server on an ephemeral port:
//!
//! * **baseline_fresh** — sequential transform requests with nothing
//!   else connected: the per-request floor the gate compares against.
//! * **idle_heavy** — the scenario the thread-per-connection design
//!   could not complete: hundreds of mostly-idle keep-alive connections
//!   (each made one real request, then parked) in front of a handful of
//!   workers, while fresh requests keep arriving. Parked connections
//!   hold an epoll registration, not a thread, so fresh traffic must
//!   still be served at (near-)baseline throughput — the in-run asserts
//!   pin the army actually being parked, and the binary gates p50/p99
//!   against the baseline.
//! * **pipelined** — N connections each writing batches of pipelined
//!   requests (mixed transform + stats) back-to-back before reading the
//!   responses: keep-alive reuse and head-of-line behavior under real
//!   concurrency.
//!
//! Latency is recorded per request into an [`xtt_obs::Histogram`] (for
//! pipelined batches: batch wall time divided by depth), reported as
//! p50/p99/p999/max; `peak_rss_kb` is the
//! process-wide `VmHWM` (server + load generator share the process — a
//! scaling indicator, not an isolated server figure). Shared by the
//! `exp_e14_serve` binary, which writes `BENCH_serve.json` and enforces
//! the CI gate.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use xtt_engine::EngineOptions;
use xtt_obs::Histogram;
use xtt_serve::{ServeClient, ServeOptions, Server};
use xtt_transducer::examples;

/// Knobs for the E14 grid (debug tests run a tiny version).
pub struct E14Options {
    /// Mostly-idle keep-alive connections in the idle-heavy scenario.
    pub idle_connections: usize,
    /// Workers serving in front of the idle army.
    pub idle_workers: usize,
    /// Fresh requests measured per scenario.
    pub fresh_requests: usize,
    /// Concurrent connections in the pipelined scenario.
    pub pipeline_connections: usize,
    /// Pipelined request batches per connection.
    pub pipeline_rounds: usize,
    /// Requests written back-to-back per batch.
    pub pipeline_depth: usize,
    /// Documents per transform request.
    pub docs_per_request: usize,
}

impl Default for E14Options {
    fn default() -> E14Options {
        E14Options {
            idle_connections: 512,
            idle_workers: 8,
            fresh_requests: 200,
            pipeline_connections: 32,
            pipeline_rounds: 8,
            pipeline_depth: 8,
            docs_per_request: 20,
        }
    }
}

/// One measured scenario of E14.
#[derive(Debug, Clone, Serialize)]
pub struct ServeRow {
    pub scenario: &'static str,
    /// Connections open against the server during the measurement
    /// (idle army + the measuring client, or the pipelined fleet).
    pub connections: usize,
    pub workers: usize,
    pub requests: u64,
    pub errors: u64,
    pub docs: u64,
    pub elapsed_millis: u128,
    pub docs_per_sec: f64,
    pub p50_micros: u64,
    pub p99_micros: u64,
    pub p999_micros: u64,
    pub max_micros: u64,
    /// `event_loop.parked_idle` observed during the scenario (0 where
    /// not applicable).
    pub parked_idle: u64,
    /// Process-wide peak RSS (`VmHWM`) after the scenario.
    pub peak_rss_kb: u64,
}

fn boot(opts: ServeOptions) -> (ServeClient, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral");
    let addr = server.local_addr().expect("bound address");
    let runner = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr)
        .expect("resolve address")
        .with_timeout(Duration::from_secs(30));
    assert!(client.wait_ready(Duration::from_secs(5)), "server not up");
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .expect("upload flip");
    (client, runner)
}

/// Process-wide peak resident set (`VmHWM` in /proc/self/status), kB.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

pub(crate) fn stat_u64(json: &str, key: &str) -> u64 {
    json.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The transform request body: `docs` flip inputs, one per line.
pub(crate) fn request_body(docs: usize) -> String {
    let doc = examples::flip_input(3, 2).to_string();
    let mut body = String::with_capacity((doc.len() + 1) * docs);
    for _ in 0..docs {
        body.push_str(&doc);
        body.push('\n');
    }
    body
}

/// Raw measurements of one scenario, before aggregation. Latencies land
/// in the same lock-free log₂ histogram `xtt-serve` itself reports from,
/// so the benchmark quantiles and the server's `/metrics` quantiles are
/// computed by one implementation.
struct Measured {
    latency: Histogram,
    errors: u64,
    docs: u64,
    elapsed: Duration,
}

/// Sequential fresh requests through `client`, one latency sample each.
fn fresh_loop(client: &ServeClient, requests: usize, docs: usize) -> Measured {
    let body = request_body(docs);
    let t0 = Instant::now();
    let latency = Histogram::new();
    let mut errors = 0u64;
    let mut answered = 0u64;
    for _ in 0..requests {
        let t0 = Instant::now();
        match client.request("POST", "/transform/flip", &body) {
            Ok(resp) if resp.status == 200 => {
                latency.record(t0.elapsed().as_micros() as u64);
                answered += docs as u64;
            }
            Ok(_) | Err(_) => errors += 1,
        }
    }
    Measured {
        latency,
        errors,
        docs: answered,
        elapsed: t0.elapsed(),
    }
}

fn finish(
    scenario: &'static str,
    connections: usize,
    workers: usize,
    m: Measured,
    parked_idle: u64,
) -> ServeRow {
    let Measured {
        latency,
        errors,
        docs,
        elapsed,
    } = m;
    let snap = latency.snapshot();
    let secs = elapsed.as_secs_f64().max(1e-9);
    ServeRow {
        scenario,
        connections,
        workers,
        requests: snap.count() + errors,
        errors,
        docs,
        elapsed_millis: elapsed.as_millis(),
        docs_per_sec: docs as f64 / secs,
        p50_micros: snap.p50(),
        p99_micros: snap.p99(),
        p999_micros: snap.p999(),
        max_micros: snap.max(),
        parked_idle,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Scenario 1: fresh requests with nothing else connected.
fn run_baseline(opts: &E14Options) -> ServeRow {
    let (client, runner) = boot(ServeOptions {
        workers: opts.idle_workers,
        queue_capacity: 256,
        engine: EngineOptions {
            workers: 1,
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    });
    let measured = fresh_loop(&client, opts.fresh_requests, opts.docs_per_request);
    client.shutdown().expect("shutdown");
    runner.join().expect("server thread").expect("server exits");
    finish("baseline_fresh", 1, opts.idle_workers, measured, 0)
}

/// Scenario 2 (the gate): an army of parked keep-alive connections in
/// front of few workers; fresh requests must still be served promptly.
fn run_idle_heavy(opts: &E14Options) -> ServeRow {
    let (client, runner) = boot(ServeOptions {
        workers: opts.idle_workers,
        queue_capacity: 256,
        // The army must outlive the measurement.
        keep_alive_timeout: Duration::from_secs(300),
        engine: EngineOptions {
            workers: 1,
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    });

    // Park the army: one real request each, then silence.
    let body = request_body(1);
    let head = format!(
        "POST /transform/flip HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut army = Vec::with_capacity(opts.idle_connections);
    for i in 0..opts.idle_connections {
        let mut conn = TcpStream::connect(client.addr()).expect("connect soldier");
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        conn.write_all(head.as_bytes()).expect("write head");
        conn.write_all(body.as_bytes()).expect("write body");
        let resp = xtt_serve::http::read_response(&mut conn)
            .unwrap_or_else(|e| panic!("soldier {i}: {e}"));
        assert_eq!(resp.status, 200, "soldier {i} got {}", resp.status);
        army.push(conn);
    }

    // The army must actually be *parked* (gauges update once per tick).
    let deadline = Instant::now() + Duration::from_secs(10);
    let parked = loop {
        let json = client.stats().expect("stats").body_str();
        let parked = stat_u64(&json, "parked_idle");
        if parked >= opts.idle_connections as u64 {
            break parked;
        }
        assert!(
            Instant::now() < deadline,
            "idle army never parked: {parked}/{} in {json}",
            opts.idle_connections
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    let measured = fresh_loop(&client, opts.fresh_requests, opts.docs_per_request);
    drop(army);
    client.shutdown().expect("shutdown");
    runner.join().expect("server thread").expect("server exits");
    finish(
        "idle_heavy",
        opts.idle_connections + 1,
        opts.idle_workers,
        measured,
        parked,
    )
}

/// Scenario 3: concurrent connections, pipelined mixed batches.
fn run_pipelined(opts: &E14Options) -> ServeRow {
    let (client, runner) = boot(ServeOptions {
        workers: opts.idle_workers,
        queue_capacity: 256,
        engine: EngineOptions {
            workers: 1,
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    });

    let body = request_body(opts.docs_per_request);
    let transform = format!(
        "POST /transform/flip HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let stats = "GET /stats HTTP/1.1\r\nHost: load\r\nContent-Length: 0\r\n\r\n".to_owned();

    // Every connection thread records straight into the shared
    // lock-free histogram; only the error/doc tallies need the mutex.
    let latency = Arc::new(Histogram::new());
    let results: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0u64, 0u64)));
    let t0 = Instant::now();
    let mut threads = Vec::with_capacity(opts.pipeline_connections);
    for _ in 0..opts.pipeline_connections {
        let addr = client.addr();
        let transform = transform.clone();
        let stats = stats.clone();
        let latency = Arc::clone(&latency);
        let results = Arc::clone(&results);
        let (rounds, depth, docs_per_request) = (
            opts.pipeline_rounds,
            opts.pipeline_depth,
            opts.docs_per_request,
        );
        threads.push(std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("connect pipeline");
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            let (mut errs, mut docs) = (0u64, 0u64);
            // The server answers pipelined batches back-to-back, so one
            // read can pull in the start of the next response: `carry`
            // keeps those bytes for the next parse.
            let mut carry = Vec::new();
            for _ in 0..rounds {
                // Write the whole batch back-to-back, then read all the
                // responses: every 8th slot is a stats request.
                let batch = Instant::now();
                for i in 0..depth {
                    let req = if i % 8 == 7 { &stats } else { &transform };
                    conn.write_all(req.as_bytes()).expect("write pipelined");
                }
                for i in 0..depth {
                    match xtt_serve::http::read_response_carry(&mut conn, &mut carry) {
                        Ok(resp) if resp.status == 200 => {
                            if i % 8 != 7 {
                                docs += docs_per_request as u64;
                            }
                        }
                        Ok(_) | Err(_) => errs += 1,
                    }
                }
                let per_request = (batch.elapsed().as_micros() / depth as u128) as u64;
                for _ in 0..depth {
                    latency.record(per_request);
                }
            }
            let mut shared = results.lock().expect("results lock");
            shared.0 += errs;
            shared.1 += docs;
        }));
    }
    for t in threads {
        t.join().expect("pipeline thread");
    }
    let elapsed = t0.elapsed();
    let (errors, docs) = *results.lock().expect("results lock");
    let latency = Arc::try_unwrap(latency).unwrap_or_else(|_| panic!("threads joined"));
    let measured = Measured {
        latency,
        errors,
        docs,
        elapsed,
    };
    client.shutdown().expect("shutdown");
    runner.join().expect("server thread").expect("server exits");
    finish(
        "pipelined",
        opts.pipeline_connections,
        opts.idle_workers,
        measured,
        0,
    )
}

/// Runs the E14 grid with in-run asserts (no request errors anywhere;
/// the idle army really parked). The throughput/latency gate lives in
/// the `exp_e14_serve` binary, which has the baseline row to compare
/// against.
pub fn run_e14(opts: &E14Options) -> Vec<ServeRow> {
    let rows = vec![
        run_baseline(opts),
        run_idle_heavy(opts),
        run_pipelined(opts),
    ];
    for r in &rows {
        assert_eq!(r.errors, 0, "{}: {} failed requests", r.scenario, r.errors);
        assert!(r.docs > 0, "{}: no documents served", r.scenario);
    }
    let idle = rows
        .iter()
        .find(|r| r.scenario == "idle_heavy")
        .expect("idle row");
    assert!(
        idle.parked_idle >= opts.idle_connections as u64,
        "idle army not parked: {} of {}",
        idle.parked_idle,
        opts.idle_connections
    );
    rows
}

/// Renders the E14 table.
pub fn print_e14(rows: &[ServeRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.connections.to_string(),
                r.workers.to_string(),
                r.requests.to_string(),
                r.errors.to_string(),
                r.docs.to_string(),
                format!("{:.0}", r.docs_per_sec),
                r.p50_micros.to_string(),
                r.p99_micros.to_string(),
                r.p999_micros.to_string(),
                r.max_micros.to_string(),
                r.parked_idle.to_string(),
                r.peak_rss_kb.to_string(),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "scenario", "conns", "workers", "reqs", "errs", "docs", "docs/s", "p50_us", "p99_us",
            "p999_us", "max_us", "parked", "rss_kB",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-scale E14: a small army and short loops — the in-run
    /// asserts (zero errors, army parked) are the test.
    #[test]
    fn e14_rows_hold_the_no_errors_and_parked_army_invariants() {
        let rows = run_e14(&E14Options {
            idle_connections: 32,
            idle_workers: 2,
            fresh_requests: 10,
            pipeline_connections: 4,
            pipeline_rounds: 2,
            pipeline_depth: 8,
            docs_per_request: 4,
        });
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.p99_micros >= r.p50_micros));
        assert!(rows.iter().all(|r| r.peak_rss_kb > 0));
    }
}
