//! The fc/ns impossibility evidence for `xmlflip` (experiment E3, negative
//! half).
//!
//! Over first-child/next-sibling encodings, the `b`-block of
//! `root(aⁿ bᵐ)` is a descendant of every `a`. Consider the io-path
//! family `p_n = (u_n, v)` with `u_n = (root,1)(a,2)ⁿ` (input: after `n`
//! leading `a`s) and `v = (root,1)` (output: the first child of the
//! output root, where the first `b` — or, with no `b`s, the first `a` —
//! appears). The residual `p_n⁻¹ τ` must replay the `n` skipped `a`s
//! *after* the `b`s, so the residuals are pairwise distinct: the
//! Myhill–Nerode index is unbounded, hence `xmlflip∘fcns` is realized by
//! no dtop (Theorem 28).
//!
//! [`fcns_residual_index`] demonstrates this constructively from data: it
//! builds a sample of the fc/ns transduction and counts the pairwise
//! distinct residuals among `p_0..p_{depth}`.

use xtt_core::Sample;
use xtt_trees::{FPath, Step, Symbol, Tree};
use xtt_xml::xmlflip;

/// Builds a sample of the fc/ns version of `xmlflip` with all
/// `n ≤ max_a`, `m ≤ max_b`.
pub fn fcns_sample(max_a: usize, max_b: usize) -> Sample {
    let mut sample = Sample::new();
    for n in 0..=max_a {
        for m in 0..=max_b {
            sample
                .add(
                    xmlflip::fcns_flip_input(n, m),
                    xmlflip::fcns_flip_output(n, m),
                )
                .expect("fc/ns flip is functional");
        }
    }
    sample
}

/// The io-path `p_n = ((root,1)(a,2)ⁿ, (root,1))`.
pub fn p_n(n: usize) -> (FPath, FPath) {
    let mut u = FPath::parse_pairs(&[("root", 1)]);
    for _ in 0..n {
        u = u.push(Step::new(Symbol::new("a"), 1));
    }
    (u, FPath::parse_pairs(&[("root", 1)]))
}

/// Counts pairwise-distinct residuals among `p_0..p_depth` as witnessed by
/// the sample: two residuals are *provably distinct* if they map a common
/// input to different outputs. Returns the number of equivalence classes
/// under "not provably distinct" (a lower bound on the true index).
pub fn fcns_residual_index(sample: &Sample, depth: usize) -> usize {
    let residuals: Vec<std::collections::HashMap<Tree, Tree>> = (0..=depth)
        .map(|n| {
            let (u, v) = p_n(n);
            sample
                .residual_function(&u, &v)
                .expect("τ residuals are functional")
        })
        .collect();
    // union-find-free: count classes greedily
    let mut class_reps: Vec<usize> = Vec::new();
    for i in 0..residuals.len() {
        let mut found = false;
        for &rep in &class_reps {
            if !provably_distinct(&residuals[i], &residuals[rep]) {
                found = true;
                break;
            }
        }
        if !found {
            class_reps.push(i);
        }
    }
    class_reps.len()
}

fn provably_distinct(
    a: &std::collections::HashMap<Tree, Tree>,
    b: &std::collections::HashMap<Tree, Tree>,
) -> bool {
    a.iter()
        .any(|(k, va)| matches!(b.get(k), Some(vb) if vb != va))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_index_grows_with_depth() {
        // with enough data, p_0..p_5 are pairwise provably distinct
        let sample = fcns_sample(7, 3);
        for depth in 1..=5 {
            let index = fcns_residual_index(&sample, depth);
            assert_eq!(
                index,
                depth + 1,
                "p_0..p_{depth} should be pairwise distinct"
            );
        }
    }

    #[test]
    fn p_n_belongs_to_big_inputs() {
        let (u, _) = p_n(3);
        assert!(u.belongs_to(&xmlflip::fcns_flip_input(5, 2)));
        assert!(!u.belongs_to(&xmlflip::fcns_flip_input(2, 2)));
    }
}
