//! E11 — cost and payoff of the typecheck subsystem (`xtt-typecheck`).
//!
//! Two questions, one table each:
//!
//! * **Guard overhead** — on the established in-domain corpora
//!   (flip / library / copying), how much does guarded evaluation
//!   (domain-guard pre-flight + compiled eval) cost over the unguarded
//!   compiled evaluator?
//! * **Fail-fast win** — on out-of-domain documents whose first
//!   violation sits near the front of a large document, how much work
//!   does the lockstep streaming guard save versus the materialize-first
//!   paths (full parse + eval to an opaque `None`)? Also reported: the
//!   fraction of SAX events the guard actually consumed before
//!   rejecting.
//!
//! Shared by the `exp_e11_typecheck` binary (which also writes
//! `BENCH_typecheck.json`).

use std::hint::black_box;
use std::time::{Duration, Instant};

use serde::Serialize;
use xtt_engine::{compile, ranked_tree_from_xml_bounded, tree_to_xml, EvalScratch};
use xtt_transducer::{eval as walk_eval, examples};
use xtt_trees::Tree;
use xtt_typecheck::{domain_guard, GuardedEvents};

use crate::engine_exp::engine_workloads;

/// One row of the guard-overhead table.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    pub family: String,
    pub param: usize,
    pub docs: usize,
    pub input_nodes: u64,
    pub guard_states: usize,
    /// Corpus pass, best of several.
    pub unguarded_micros: u128,
    pub guarded_micros: u128,
    /// `guarded / unguarded` (1.0 = free).
    pub overhead_ratio: f64,
}

/// One row of the fail-fast table.
#[derive(Debug, Clone, Serialize)]
pub struct FailFastRow {
    pub family: String,
    pub docs: usize,
    /// Total SAX events across the corpus vs what the guard consumed.
    pub events_total: u64,
    pub events_consumed: u64,
    /// Rejection by full parse + unguarded eval (opaque `None`).
    pub full_parse_micros: u128,
    /// Rejection by the lockstep streaming guard (typed, early).
    pub guarded_stream_micros: u128,
    pub speedup: f64,
}

fn best_of(rounds: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Guard overhead on the in-domain E10 corpora.
pub fn overhead_rows(rounds: usize) -> Vec<OverheadRow> {
    engine_workloads()
        .iter()
        .map(|w| {
            let compiled = compile(&w.dtop).expect("compilable");
            let guard = domain_guard(&w.dtop).expect("guardable");
            let mut scratch = EvalScratch::new();
            let input_nodes: u64 = w.docs.iter().map(Tree::size).sum();
            let unguarded = best_of(rounds, || {
                for d in &w.docs {
                    black_box(compiled.eval(d, &mut scratch).map(|t| t.height()));
                }
            });
            let guarded = best_of(rounds, || {
                for d in &w.docs {
                    guard.check_tree(d).expect("in-domain corpus");
                    black_box(compiled.eval(d, &mut scratch).map(|t| t.height()));
                }
            });
            OverheadRow {
                family: w.family.to_owned(),
                param: w.param,
                docs: w.docs.len(),
                input_nodes,
                guard_states: guard.state_count(),
                unguarded_micros: unguarded.as_micros(),
                guarded_micros: guarded.as_micros(),
                overhead_ratio: guarded.as_secs_f64() / unguarded.as_secs_f64().max(1e-9),
            }
        })
        .collect()
}

/// Out-of-domain flip documents with the violation at the second node of
/// the a-list and an `n`-element tail behind it.
fn early_violation_docs(n: usize, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            let mut tail = examples::flip_input(0, n + i % 7);
            // Splice a b-node into the a-list: root(a(#, b(...)), blist).
            let blist = tail.children()[1].clone();
            let bad_alist = Tree::node(
                "a",
                vec![
                    Tree::leaf_named("#"),
                    Tree::node("b", vec![Tree::leaf_named("#"), Tree::leaf_named("#")]),
                ],
            );
            tail = Tree::node("root", vec![bad_alist, blist]);
            tree_to_xml(&tail)
        })
        .collect()
}

/// Fail-fast win on early-violation documents (XML, streaming).
pub fn failfast_rows(rounds: usize) -> Vec<FailFastRow> {
    let fix = examples::flip();
    let compiled = compile(&fix.dtop).unwrap();
    let guard = domain_guard(&fix.dtop).unwrap();
    let mut stream = xtt_engine::StreamEvaluator::new();
    [200usize, 2000]
        .iter()
        .map(|&n| {
            let docs = early_violation_docs(n, 50);
            let mut events_total = 0u64;
            let mut events_consumed = 0u64;
            for d in &docs {
                let t = ranked_tree_from_xml_bounded(d).unwrap();
                events_total += 2 * t.size();
                let mut guarded = GuardedEvents::new(&guard, t.events());
                (&mut guarded).for_each(drop);
                assert!(
                    guarded.violation().is_some(),
                    "corpus must be out of domain"
                );
                events_consumed += guarded.events_consumed();
            }
            let full_parse = best_of(rounds, || {
                for d in &docs {
                    let t = ranked_tree_from_xml_bounded(d).unwrap();
                    black_box(walk_eval(&fix.dtop, &t).is_some());
                }
            });
            let guarded_stream = best_of(rounds, || {
                for d in &docs {
                    black_box(stream.eval_xml_guarded(&compiled, &guard, d).is_err());
                }
            });
            FailFastRow {
                family: format!("flip_tail_{n}"),
                docs: docs.len(),
                events_total,
                events_consumed,
                full_parse_micros: full_parse.as_micros(),
                guarded_stream_micros: guarded_stream.as_micros(),
                speedup: full_parse.as_secs_f64() / guarded_stream.as_secs_f64().max(1e-9),
            }
        })
        .collect()
}

/// E11 — guard overhead and fail-fast win.
pub fn run_e11() -> (Vec<OverheadRow>, Vec<FailFastRow>) {
    println!("\n== E11: typecheck guard overhead (in-domain corpora) ==");
    let overhead = overhead_rows(5);
    let table: Vec<Vec<String>> = overhead
        .iter()
        .map(|r| {
            vec![
                format!("{}_{}", r.family, r.param),
                r.docs.to_string(),
                r.input_nodes.to_string(),
                r.guard_states.to_string(),
                r.unguarded_micros.to_string(),
                r.guarded_micros.to_string(),
                format!("{:.2}x", r.overhead_ratio),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "workload",
            "docs",
            "nodes",
            "guard |Q|",
            "unguarded µs",
            "guarded µs",
            "overhead",
        ],
        &table,
    );

    println!("\n== E11: fail-fast win on early-violation documents ==");
    let failfast = failfast_rows(5);
    let table: Vec<Vec<String>> = failfast
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.docs.to_string(),
                r.events_total.to_string(),
                r.events_consumed.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * r.events_consumed as f64 / r.events_total as f64
                ),
                r.full_parse_micros.to_string(),
                r.guarded_stream_micros.to_string(),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "corpus",
            "docs",
            "events",
            "consumed",
            "consumed %",
            "full-parse µs",
            "guarded µs",
            "win",
        ],
        &table,
    );
    println!("shape check: the guard consumes a small fixed prefix regardless of tail size.");
    (overhead, failfast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failfast_corpus_rejects_early_regardless_of_tail() {
        let rows = failfast_rows(1);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.events_consumed < row.events_total);
        }
        // The consumed prefix is constant, so the longer-tail corpus
        // consumes a strictly smaller fraction.
        let frac = |r: &FailFastRow| r.events_consumed as f64 / r.events_total as f64;
        assert!(frac(&rows[1]) < frac(&rows[0]));
    }

    #[test]
    fn overhead_rows_have_consistent_shapes() {
        let mut rows = overhead_rows(1);
        assert!(!rows.is_empty());
        let row = rows.remove(0);
        assert!(row.guard_states >= 1);
        assert!(row.guarded_micros >= 1);
    }
}
