//! The experiment drivers E1–E9 (see DESIGN.md §4 and EXPERIMENTS.md).
//! Each prints the paper-vs-measured rows; `exp_all` runs every one.

use xtt_core::{characteristic_sample, rpni_dtop};
use xtt_transducer::{
    canonical_form, equivalent, eval, is_earliest, minimize, same_canonical, state_io_paths,
    to_earliest,
};
use xtt_trees::Tree;

use crate::families;
use crate::fcns_index::{fcns_residual_index, fcns_sample};
use crate::{dag_row, learn_roundtrip, print_table, time};

/// E1 — τflip (paper §1 + Example 7).
pub fn run_e1() {
    println!("\n== E1: τflip — learn the paper's flagship example ==");
    let target = families::flip_target();
    let row = learn_roundtrip(0, &target);
    print_table(
        &["quantity", "paper", "measured"],
        &[
            vec![
                "states of min(τ)".into(),
                "4".into(),
                row.states.to_string(),
            ],
            vec!["rules".into(), "6".into(), row.rules.to_string()],
            vec![
                "characteristic sample (pairs)".into(),
                "4".into(),
                row.sample_pairs.to_string(),
            ],
            vec![
                "identified min(τ)?".into(),
                "yes (Thm 38)".into(),
                if row.identified { "yes" } else { "NO" }.into(),
            ],
        ],
    );
    println!("\nio-paths of the 4 states (paper §1 lists the same four):");
    for (i, p) in state_io_paths(&target).iter().enumerate() {
        println!("  q{i}: {p}");
    }
    println!(
        "\nlearning time: {} µs on a {}-node sample",
        row.learn_micros, row.sample_nodes
    );
}

/// E2 — the §10 library transformation.
pub fn run_e2() {
    println!("\n== E2: §10 library transformation (swap, delete, copy) ==");
    let target = families::library_target();
    let row = learn_roundtrip(0, &target);
    print_table(
        &["quantity", "paper", "measured"],
        &[
            vec![
                "states of min(τ)".into(),
                "14".into(),
                row.states.to_string(),
            ],
            vec!["rules".into(), "17 listed".into(), row.rules.to_string()],
            vec![
                "sample pairs".into(),
                "4 (s0..s3)".into(),
                row.sample_pairs.to_string(),
            ],
            vec![
                "identified min(τ)?".into(),
                "yes".into(),
                if row.identified { "yes" } else { "NO" }.into(),
            ],
        ],
    );
    println!(
        "\nnote: the paper's rule table applies state qT to both B-nodes and\n\
         T-nodes, which a deterministic transducer cannot do; splitting it\n\
         (qTB/qTT) gives the measured 15 states. Our generic sample generator\n\
         also needs more pairs than the 4 hand-crafted ones because pcdata is\n\
         modeled with two values (see DESIGN.md)."
    );
    let s2 = xtt_transducer::examples::library_input(2);
    println!("\nτ(s2) = {}", eval(&target.dtop, &s2).unwrap());
}

/// E3 — xmlflip: DTD encoding vs fc/ns encoding.
pub fn run_e3() {
    println!("\n== E3: xmlflip over DTD encodings (positive) vs fc/ns (negative) ==");
    let target = families::xmlflip_target();
    let row = learn_roundtrip(0, &target);
    print_table(
        &["quantity", "paper", "measured (paper-style enc.)"],
        &[
            vec!["states".into(), "12".into(), row.states.to_string()],
            vec!["rules".into(), "16".into(), row.rules.to_string()],
            vec![
                "sample pairs".into(),
                "4".into(),
                row.sample_pairs.to_string(),
            ],
            vec![
                "identified?".into(),
                "yes".into(),
                if row.identified { "yes" } else { "NO" }.into(),
            ],
        ],
    );
    let pc = families::xmlflip_target_pc();
    let row_pc = learn_roundtrip(0, &pc);
    println!(
        "\npath-closed encoding variant: {} states, {} rules, {} sample pairs, identified: {}",
        row_pc.states, row_pc.rules, row_pc.sample_pairs, row_pc.identified
    );
    println!(
        "(the measured state counts exceed the paper's 12 because compatibility\n\
         condition (C0) splits list-copier states by domain residual; the paper\n\
         does not list its 12-state transducer, see EXPERIMENTS.md)"
    );

    println!("\nfc/ns side: distinct residuals among p_0..p_n (must grow unboundedly):");
    let sample = fcns_sample(9, 3);
    let mut rows = Vec::new();
    for depth in [1usize, 2, 3, 4, 5, 6] {
        let index = fcns_residual_index(&sample, depth);
        rows.push(vec![
            format!("p_0..p_{depth}"),
            (depth + 1).to_string(),
            index.to_string(),
        ]);
    }
    print_table(
        &["io-path family", "distinct (theory)", "distinct (measured)"],
        &rows,
    );
    println!("⇒ no finite-state dtop realizes xmlflip over fc/ns encodings (Thm 28).");
}

/// E4 — characteristic-sample size vs transducer size (Prop. 34).
pub fn run_e4() {
    println!("\n== E4: characteristic-sample size scaling (Proposition 34) ==");
    let mut rows = Vec::new();
    for k in 1..=8 {
        let target = families::flip_k_target(k);
        let row = learn_roundtrip(k, &target);
        rows.push(vec![
            format!("flip_{k}"),
            row.states.to_string(),
            row.rules.to_string(),
            row.transducer_size.to_string(),
            row.sample_pairs.to_string(),
            row.sample_nodes.to_string(),
            row.identified.to_string(),
        ]);
    }
    for n in [2usize, 4, 8, 12, 16] {
        let target = families::chain_target(n);
        let row = learn_roundtrip(n, &target);
        rows.push(vec![
            format!("chain_{n}"),
            row.states.to_string(),
            row.rules.to_string(),
            row.transducer_size.to_string(),
            row.sample_pairs.to_string(),
            row.sample_nodes.to_string(),
            row.identified.to_string(),
        ]);
    }
    print_table(
        &[
            "family",
            "states",
            "rules",
            "|M|",
            "pairs",
            "nodes",
            "identified",
        ],
        &rows,
    );
    println!("shape check: pairs and nodes grow polynomially (≈ linearly) in |M|.");
}

/// E5 — learning time vs sample size (Theorem 38).
pub fn run_e5() {
    println!("\n== E5: learning-time scaling (Theorem 38) ==");
    let mut rows = Vec::new();
    for k in 1..=8 {
        let target = families::flip_k_target(k);
        let row = learn_roundtrip(k, &target);
        rows.push(vec![
            format!("flip_{k}"),
            row.transducer_size.to_string(),
            row.sample_nodes.to_string(),
            row.gen_micros.to_string(),
            row.learn_micros.to_string(),
        ]);
    }
    for n in [4usize, 8, 16, 24, 32] {
        let target = families::chain_target(n);
        let row = learn_roundtrip(n, &target);
        rows.push(vec![
            format!("chain_{n}"),
            row.transducer_size.to_string(),
            row.sample_nodes.to_string(),
            row.gen_micros.to_string(),
            row.learn_micros.to_string(),
        ]);
    }
    print_table(
        &["family", "|M|", "|S| (nodes)", "gen (µs)", "learn (µs)"],
        &rows,
    );
    println!("shape check: learn time stays polynomial (paper bound O(|M|²·|F|·K·|S|)).");
}

/// E6 — DAG representation of exponential outputs (§1 remark).
pub fn run_e6() {
    println!("\n== E6: outputs as minimal DAGs (monadic input → full binary output) ==");
    let mut rows = Vec::new();
    for height in [4u32, 8, 12, 16, 20] {
        let r = dag_row(height);
        rows.push(vec![
            r.height.to_string(),
            r.input_size.to_string(),
            r.output_tree_size.to_string(),
            r.output_dag_size.to_string(),
            format!("{:.0}", r.compression),
            r.eval_micros.to_string(),
            r.dag_micros.to_string(),
        ]);
    }
    print_table(
        &[
            "height n",
            "|input|",
            "|output| (tree)",
            "|output| (DAG)",
            "ratio",
            "eval µs",
            "dag µs",
        ],
        &rows,
    );
    println!("shape check: tree size 2^(n+1)-1, DAG size n+1 — exponential vs linear.");
}

/// E7 — uniqueness of the canonical form (Example 6, Theorem 28).
pub fn run_e7() {
    println!("\n== E7: unique minimal earliest compatible transducer (Example 6) ==");
    use xtt_transducer::examples as fx;
    let variants = [
        ("M0 (violates C0)", fx::example6_m0()),
        ("M1 (minimal compatible)", fx::example6_m1()),
        ("M2 (violates C1)", fx::example6_m2()),
        ("M3 (violates C2)", fx::example6_m3()),
    ];
    let canon: Vec<_> = variants
        .iter()
        .map(|(name, f)| {
            (
                *name,
                f.dtop.state_count(),
                canonical_form(&f.dtop, Some(&f.domain)).unwrap(),
            )
        })
        .collect();
    let reference = &canon[1].2;
    let mut rows = Vec::new();
    for (name, states, c) in &canon {
        rows.push(vec![
            name.to_string(),
            states.to_string(),
            c.dtop.state_count().to_string(),
            same_canonical(c, reference).to_string(),
        ]);
    }
    print_table(
        &["variant", "states before", "states after", "equals min(τ)"],
        &rows,
    );
    println!(
        "axiom of min(τ): {}   (the deleted first subtree is produced here\n\
         and checked only by the domain automaton)",
        reference.dtop.show_rhs(reference.dtop.axiom(), true)
    );
}

/// E8 — earliest normal form and equivalence (Examples 1–2, [EMS09]).
pub fn run_e8() {
    println!("\n== E8: earliest normal form + equivalence decision ==");
    use xtt_transducer::examples as fx;
    let m1 = fx::constant_m1();
    let m2 = fx::constant_m2();
    let m3 = fx::constant_m3();
    let mut rows = Vec::new();
    for (name, fix) in [("M1", &m1), ("M2", &m2), ("M3", &m3)] {
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        let early = is_earliest(&canon).unwrap();
        rows.push(vec![
            name.to_string(),
            fix.dtop.state_count().to_string(),
            canon.dtop.state_count().to_string(),
            early.to_string(),
        ]);
    }
    print_table(
        &[
            "transducer",
            "states before",
            "states after earliest",
            "is earliest",
        ],
        &rows,
    );
    println!(
        "equivalence: M1≡M2: {}, M2≡M3: {}, M1≢(flip): decided structurally via canonical forms",
        equivalent(&m1.dtop, Some(&m1.domain), &m2.dtop, Some(&m2.domain)).unwrap(),
        equivalent(&m2.dtop, Some(&m2.domain), &m3.dtop, Some(&m3.domain)).unwrap(),
    );

    // timing on a scalable family
    let mut rows = Vec::new();
    for k in [2usize, 4, 6, 8] {
        let (dtop, domain) = families::raw_flip_k(k);
        let (canon, t_early) = time(|| to_earliest(&dtop, Some(&domain)).unwrap());
        let (_, t_min) = time(|| minimize(&canon).unwrap());
        rows.push(vec![
            format!("flip_{k}"),
            dtop.size().to_string(),
            t_early.as_micros().to_string(),
            t_min.as_micros().to_string(),
        ]);
    }
    print_table(&["family", "|M|", "earliest µs", "minimize µs"], &rows);
}

/// E9 — minimal subsequential string transducers (Related Work remark).
pub fn run_e9() {
    println!("\n== E9: string transducers over monadic trees ==");
    use xtt_core::strings::{sequential_to_dtop, string_characteristic_sample, StringAlphabet};
    let input = StringAlphabet::new(&['a', 'b']);
    let output = StringAlphabet::new(&['x', 'y', 'z']);
    let delta = vec![
        ((0, 'a'), (0, "x".to_owned())),
        ((0, 'b'), (1, "y".to_owned())),
        ((1, 'a'), (1, "z".to_owned())),
        ((1, 'b'), (1, "y".to_owned())),
    ];
    let target = sequential_to_dtop(
        &input,
        &output,
        2,
        &delta,
        &[(0, String::new()), (1, String::new())],
    )
    .unwrap();
    let pairs = string_characteristic_sample(&target, &input, &output).unwrap();
    println!("characteristic string sample ({} pairs):", pairs.len());
    for (s, t) in pairs.iter().take(8) {
        println!("  {s:?} -> {t:?}");
    }
    let sample = characteristic_sample(&target).unwrap();
    let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
    let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
    print_table(
        &["quantity", "expected", "measured"],
        &[
            vec![
                "states (minimal subsequential)".into(),
                "2".into(),
                learned.dtop.state_count().to_string(),
            ],
            vec![
                "identified?".into(),
                "yes".into(),
                same_canonical(&target, &got).to_string(),
            ],
        ],
    );
}

/// Extra shape check used by E1/E3: evaluation output sanity.
pub fn flip_eval_demo() -> Tree {
    let fix = xtt_transducer::examples::flip();
    eval(&fix.dtop, &xtt_transducer::examples::flip_input(2, 2)).unwrap()
}

/// Runs every experiment.
pub fn run_all() {
    run_e1();
    run_e2();
    run_e3();
    run_e4();
    run_e5();
    run_e6();
    run_e7();
    run_e8();
    run_e9();
    let _ = crate::engine_exp::run_e10();
    let _ = crate::typecheck_exp::run_e11();
    let _ = crate::unranked_exp::run_e12();
    let rows = crate::stream_exp::run_e13(&crate::stream_exp::stream_workloads(), 3);
    crate::stream_exp::print_e13(&rows);
}

#[cfg(test)]
mod tests {
    /// The experiment drivers must not panic (they are exercised fully by
    /// `exp_all`; here we run the cheap ones).
    #[test]
    fn cheap_experiments_run() {
        super::run_e1();
        super::run_e6();
        super::run_e7();
        super::run_e8();
    }
}
