//! E10 — throughput of the `xtt-engine` execution layers vs the research
//! evaluator, on the established bench families (flip / library / copying).
//!
//! Shared by the `exp_e10_engine` binary (which also writes
//! `BENCH_engine.json`) and the `engine_throughput` criterion bench, so
//! both time the same code paths on the same corpora.

use std::hint::black_box;
use std::time::{Duration, Instant};

use serde::Serialize;
use xtt_engine::{compile, CompiledDtop, EvalScratch, StreamEvaluator};
use xtt_transducer::{eval as walk_eval, examples, Dtop};
use xtt_trees::Tree;

/// One benchmark corpus: a transducer plus documents in its domain.
pub struct EngineWorkload {
    pub family: &'static str,
    pub param: usize,
    pub dtop: Dtop,
    pub docs: Vec<Tree>,
}

/// The standard E10 workloads.
pub fn engine_workloads() -> Vec<EngineWorkload> {
    let mut out = Vec::new();
    for n in [10usize, 100] {
        out.push(EngineWorkload {
            family: "flip",
            param: n,
            dtop: examples::flip().dtop,
            docs: (0..200)
                .map(|i| examples::flip_input(n + i % 7, n + i % 5))
                .collect(),
        });
    }
    out.push(EngineWorkload {
        family: "library",
        param: 20,
        dtop: examples::library().dtop,
        docs: (1..=60)
            .map(|i| examples::library_input(i % 20 + 1))
            .collect(),
    });
    out.push(EngineWorkload {
        family: "copying",
        param: 18,
        dtop: examples::monadic_to_binary().dtop,
        docs: (0..100)
            .map(|i| {
                let mut t = Tree::leaf_named("e");
                for _ in 0..(i % 18 + 1) {
                    t = Tree::node("f", vec![t]);
                }
                t
            })
            .collect(),
    });
    out
}

/// One row of the E10 table.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRow {
    pub family: String,
    pub param: usize,
    pub docs: usize,
    pub input_nodes: u64,
    /// Wall time of one corpus pass per evaluator, best of several.
    pub walk_micros: u128,
    pub compiled_micros: u128,
    pub stream_micros: u128,
    pub speedup_compiled: f64,
    pub speedup_stream: f64,
    pub compiled_docs_per_sec: f64,
    pub compiled_mnodes_per_sec: f64,
}

fn best_of(rounds: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Times all three evaluators over one workload (corpus passes, best of
/// `rounds`; every output is consumed through `black_box`).
pub fn engine_row(w: &EngineWorkload, rounds: usize) -> EngineRow {
    let compiled: CompiledDtop = compile(&w.dtop).expect("compilable");
    let mut scratch = EvalScratch::new();
    let mut stream = StreamEvaluator::new();
    let input_nodes: u64 = w.docs.iter().map(Tree::size).sum();

    let walk = best_of(rounds, || {
        for d in &w.docs {
            black_box(walk_eval(&w.dtop, d).map(|t| t.height()));
        }
    });
    let comp = best_of(rounds, || {
        for d in &w.docs {
            black_box(compiled.eval(d, &mut scratch).map(|t| t.height()));
        }
    });
    let strm = best_of(rounds, || {
        for d in &w.docs {
            black_box(stream.eval_tree(&compiled, d).map(|t| t.height()));
        }
    });

    let secs = comp.as_secs_f64().max(1e-9);
    EngineRow {
        family: w.family.to_owned(),
        param: w.param,
        docs: w.docs.len(),
        input_nodes,
        walk_micros: walk.as_micros(),
        compiled_micros: comp.as_micros(),
        stream_micros: strm.as_micros(),
        speedup_compiled: walk.as_secs_f64() / secs,
        speedup_stream: walk.as_secs_f64() / strm.as_secs_f64().max(1e-9),
        compiled_docs_per_sec: w.docs.len() as f64 / secs,
        compiled_mnodes_per_sec: input_nodes as f64 / secs / 1e6,
    }
}

/// E10 — compiled/streaming engine vs tree-walk evaluation.
pub fn run_e10() -> Vec<EngineRow> {
    println!("\n== E10: xtt-engine throughput (walk vs compiled vs streaming) ==");
    let rows: Vec<EngineRow> = engine_workloads()
        .iter()
        .map(|w| engine_row(w, 5))
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}_{}", r.family, r.param),
                r.docs.to_string(),
                r.input_nodes.to_string(),
                r.walk_micros.to_string(),
                r.compiled_micros.to_string(),
                r.stream_micros.to_string(),
                format!("{:.1}x", r.speedup_compiled),
                format!("{:.1}x", r.speedup_stream),
                format!("{:.0}", r.compiled_docs_per_sec),
                format!("{:.1}", r.compiled_mnodes_per_sec),
            ]
        })
        .collect();
    crate::print_table(
        &[
            "workload",
            "docs",
            "nodes",
            "walk µs",
            "compiled µs",
            "stream µs",
            "speedup(c)",
            "speedup(s)",
            "docs/s(c)",
            "Mnodes/s(c)",
        ],
        &table,
    );
    println!("shape check: compiled ≥ 3x the tree-walk evaluator on every family.");
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_rows_have_consistent_shapes() {
        // One cheap round on a trimmed corpus: the three layers must all
        // have run (non-zero time) on non-empty corpora.
        let mut w = engine_workloads().remove(0);
        w.docs.truncate(10);
        let row = engine_row(&w, 1);
        assert_eq!(row.docs, 10);
        assert!(row.input_nodes > 0);
        assert!(row.compiled_docs_per_sec > 0.0);
    }
}
