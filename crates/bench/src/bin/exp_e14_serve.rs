//! E14 — `xtt-load`: serving traffic against the epoll front end.
//! Baseline fresh requests, the idle-heavy army (512 parked keep-alive
//! connections, 8 workers), and pipelined concurrent batches. Prints the
//! table, writes `BENCH_serve.json`, and enforces the idle-heavy gate.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e14_serve
//! ```

use xtt_bench::serve_exp::{print_e14, run_e14, E14Options};

fn main() {
    let opts = E14Options::default();
    let rows = run_e14(&opts);
    print_e14(&rows);
    let json = serde_json::json!({
        "experiment": "E14",
        "description": "xtt-serve under xtt-load: fresh-request latency and throughput at baseline, behind 512 parked keep-alive connections (8 workers), and under pipelined concurrency",
        "rows": rows,
    });
    let path = "BENCH_serve.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The gate: the parked army must not degrade fresh traffic. The
    // thread-per-connection design did not get this far (512 idle
    // connections pinned every worker before a fresh request ran);
    // run_e14's in-run asserts already pinned zero errors and a parked
    // army, so what is left to gate is throughput and tail latency
    // against the measured baseline — generous factors absorb CI noise.
    let baseline = rows
        .iter()
        .find(|r| r.scenario == "baseline_fresh")
        .unwrap();
    let idle = rows.iter().find(|r| r.scenario == "idle_heavy").unwrap();
    println!(
        "idle-heavy vs baseline: {:.0} vs {:.0} docs/s, p99 {} vs {} us",
        idle.docs_per_sec, baseline.docs_per_sec, idle.p99_micros, baseline.p99_micros
    );
    let mut failed = false;
    if idle.docs_per_sec < baseline.docs_per_sec / 4.0 {
        eprintln!(
            "WARNING: fresh throughput behind the idle army fell below 1/4 of baseline \
             ({:.0} vs {:.0} docs/s)",
            idle.docs_per_sec, baseline.docs_per_sec
        );
        failed = true;
    }
    let p99_ceiling = (baseline.p99_micros * 10).max(250_000);
    if idle.p99_micros > p99_ceiling {
        eprintln!(
            "WARNING: fresh p99 behind the idle army exceeded the gate \
             ({} us > {} us)",
            idle.p99_micros, p99_ceiling
        );
        failed = true;
    }
    if failed {
        eprintln!("WARNING: idle-heavy serving gate failed");
        std::process::exit(1);
    }
}
