//! E13 — event-driven output emission: first-output-byte latency and
//! peak resident output state (buffered frames) of
//! `Engine::transform_streaming`, against the tree-at-root-close
//! reference on the same documents. Prints the table and writes
//! `BENCH_stream.json` for the CI gate.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e13_stream
//! ```

use xtt_bench::stream_exp::{print_e13, run_e13, stream_workloads};

fn main() {
    let rows = run_e13(&stream_workloads(), 5);
    print_e13(&rows);
    let json = serde_json::json!({
        "experiment": "E13",
        "description": "xtt-engine: event-driven output emission (best-of-5) — first-byte latency, early-event ratio, and peak buffered output frames vs tree-at-root-close",
        "rows": rows,
    });
    let path = "BENCH_stream.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Gate 1 (in addition to run_e13's in-run asserts): on the
    // order-preserving families the peak buffered output state must be
    // flat across the size ladder — the streaming claim of the PR.
    let max_peak = rows
        .iter()
        .filter(|r| r.order_preserving)
        .map(|r| r.peak_buffered_frames)
        .max()
        .unwrap_or(0);
    println!("maximum peak buffered frames on order-preserving corpora: {max_peak} (target 0)");

    // Gate 2: the first output byte must leave well before the document
    // completes on the largest order-preserving rungs (tree-at-root-close
    // by definition pays the whole batch time first).
    let mut slow_first_byte = false;
    for r in rows.iter().filter(|r| r.order_preserving) {
        let big = rows
            .iter()
            .filter(|o| o.family == r.family)
            .map(|o| o.param)
            .max()
            .unwrap_or(0);
        if r.param == big && r.first_byte_micros * 5 > r.total_micros.max(1) * 2 {
            eprintln!(
                "WARNING: {} n={}: first byte at {}us of {}us total (> 40%)",
                r.family, r.param, r.first_byte_micros, r.total_micros
            );
            slow_first_byte = true;
        }
    }
    if max_peak > 0 || slow_first_byte {
        eprintln!("WARNING: streaming emission gate failed");
        std::process::exit(1);
    }
}
