//! Runs every experiment E1–E13 and prints the paper-vs-measured tables
//! recorded in EXPERIMENTS.md.
fn main() {
    xtt_bench::exps::run_all();
}
