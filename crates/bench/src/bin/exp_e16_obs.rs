//! E16 — observability overhead: interleaved A/B of the E14
//! baseline_fresh workload with tracing off vs tracing every request.
//! Prints the table, verifies the Server-Timing stage reconstruction,
//! writes `BENCH_obs.json`, and enforces the ≤ 3 % overhead gate.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e16_obs
//! ```

use xtt_bench::obs_exp::{overhead, print_e16, run_e16, E16Options};

fn main() {
    let opts = E16Options::default();
    let (rows, check) = run_e16(&opts);
    print_e16(&rows);
    println!(
        "\ntrace {}: {} (sum {:.3} ms)",
        check.trace_id,
        check
            .stages
            .iter()
            .map(|(n, ms)| format!("{n}={ms:.3}ms"))
            .collect::<Vec<_>>()
            .join(" "),
        check.stage_sum_ms
    );
    let over = overhead(&rows);
    println!(
        "tracing overhead on median round throughput: {:.2}%",
        over * 100.0
    );

    let json = serde_json::json!({
        "experiment": "E16",
        "description": "observability overhead: E14 baseline_fresh with trace_sample=0 vs trace_sample=1 (every request traced), interleaved rounds, median-of-rounds comparison, plus Server-Timing stage-breakdown reconstruction",
        "rows": rows,
        "stage_check": check,
        "overhead_fraction": over,
        "gate_max_overhead_fraction": 0.03,
    });
    let path = "BENCH_obs.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The gate: tracing every request may cost at most 3 % of median
    // round throughput. run_e16's in-run asserts already pinned zero
    // errors, 1-in-1 sampling, and the stage reconstruction.
    if over > 0.03 {
        eprintln!(
            "WARNING: tracing overhead {:.2}% exceeds the 3% gate",
            over * 100.0
        );
        std::process::exit(1);
    }
}
