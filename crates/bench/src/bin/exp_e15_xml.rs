//! E15 — XML tokenizer hot-path throughput: full tokenization with the
//! SIMD/SWAR structural scanner vs the scalar reference loop, over ≥1 MB
//! mixed, text-heavy, and attribute-heavy corpora. Prints the table and
//! writes `BENCH_xml.json`; exits nonzero when the mixed-corpus speedup
//! drops below the 2x gate.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e15_xml
//! ```

use xtt_bench::xml_exp::run_e15;

fn main() {
    let rows = run_e15();
    let json = serde_json::json!({
        "experiment": "E15",
        "description": "xtt-xml tokenizer: full tokenization MB/s, scalar scan vs SIMD/SWAR scan (best-of-7 over generated >=1MB corpora)",
        "rows": rows,
    });
    let path = "BENCH_xml.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let mixed = rows
        .iter()
        .find(|r| r.family == "mixed")
        .expect("mixed corpus row");
    println!(
        "mixed-corpus speedup: {:.2}x at {:.0} MB/s (target ≥ 2x over the scalar loop)",
        mixed.speedup, mixed.simd_mb_per_sec
    );
    if mixed.speedup < 2.0 {
        eprintln!("WARNING: SIMD tokenization below the 2x target on the mixed corpus");
        std::process::exit(1);
    }
}
