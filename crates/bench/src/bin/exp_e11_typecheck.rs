//! E11 — typecheck guard overhead on in-domain corpora and fail-fast win
//! on early-violation documents. Prints both tables and writes
//! `BENCH_typecheck.json` for downstream tracking.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e11_typecheck
//! ```

use xtt_bench::typecheck_exp::run_e11;

fn main() {
    let (overhead, failfast) = run_e11();
    let json = serde_json::json!({
        "experiment": "E11",
        "description": "xtt-typecheck: guard overhead (in-domain) and fail-fast win (early violations), best-of-5",
        "overhead": overhead,
        "failfast": failfast,
    });
    let path = "BENCH_typecheck.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let max_overhead = overhead
        .iter()
        .map(|r| r.overhead_ratio)
        .fold(0.0f64, f64::max);
    let min_win = failfast
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("max guard overhead on in-domain corpora: {max_overhead:.2}x");
    println!("minimum fail-fast win on early-violation corpora: {min_win:.1}x");
}
