//! Emits the E4/E5/E6 experiment rows as JSON (one object per line) for
//! downstream plotting/analysis.
//!
//! ```console
//! $ cargo run -p xtt-bench --bin exp_json > rows.jsonl
//! ```

use xtt_bench::families;
use xtt_bench::{dag_row, learn_roundtrip};

fn main() {
    for k in 1..=8usize {
        let target = families::flip_k_target(k);
        let row = learn_roundtrip(k, &target);
        println!(
            "{}",
            serde_json::json!({ "experiment": "E4/E5", "family": "flip_k", "row": row })
        );
    }
    for n in [2usize, 4, 8, 12, 16] {
        let target = families::chain_target(n);
        let row = learn_roundtrip(n, &target);
        println!(
            "{}",
            serde_json::json!({ "experiment": "E4/E5", "family": "chain", "row": row })
        );
    }
    for h in [4u32, 8, 12, 16, 20] {
        let row = dag_row(h);
        println!(
            "{}",
            serde_json::json!({ "experiment": "E6", "family": "monadic_to_binary", "row": row })
        );
    }
}
