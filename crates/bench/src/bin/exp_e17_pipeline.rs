//! E17 — pipeline strategies: composed product vs chained streaming
//! cascade on 2- and 3-stage pipelines, plus the schema-specialization
//! jump-table shrink. Writes `BENCH_pipeline.json` and enforces the
//! chooser gate: the probe-picked strategy must deliver at least 90 % of
//! the faster strategy's full-corpus streaming throughput.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e17_pipeline
//! ```

use xtt_bench::pipeline_exp::{print_e17, run_e17, E17Options};

fn main() {
    let opts = E17Options::default();
    let (rows, choices, schema) = run_e17(&opts);
    print_e17(&rows, &choices, &schema);

    let json = serde_json::json!({
        "experiment": "E17",
        "description": "pipeline execution strategies: statically composed dtop vs chained streaming cascade through Engine::transform_chain (guarded, XML), best-of-rounds over a deterministic corpus; chooser audit against the full-corpus streaming measurement; jump-table shrink from fixed-input-schema stage specialization",
        "rows": rows,
        "chooser": choices,
        "schema_specialization": schema,
        "gate_min_chosen_fraction_of_best": 0.9,
    });
    let path = "BENCH_pipeline.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The gate: the planner's probe ranking must hold up on the full
    // corpus (within noise — the chosen strategy may not trail the
    // winner by more than 10 % streaming throughput).
    let mut failed = false;
    for c in &choices {
        if c.chosen_fraction_of_best < 0.9 {
            eprintln!(
                "WARNING: {} chooser picked {} at {:.1}% of the faster strategy",
                c.pipeline,
                c.chosen,
                100.0 * c.chosen_fraction_of_best
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
