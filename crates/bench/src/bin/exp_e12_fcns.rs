//! E12 — streaming vs materializing unranked-XML encoders (fc/ns and
//! DTD): corpus throughput, events/sec, and peak live nodes. Prints the
//! table and writes `BENCH_fcns.json` for downstream tracking.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e12_fcns
//! ```

use xtt_bench::unranked_exp::run_e12;

fn main() {
    let rows = run_e12();
    let json = serde_json::json!({
        "experiment": "E12",
        "description": "xtt-unranked: streaming encode vs materialize-then-encode (corpus pass, best-of-5), with peak live nodes",
        "rows": rows,
    });
    let path = "BENCH_fcns.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let min_deep = rows
        .iter()
        .filter(|r| r.deep)
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    let max_peak = rows.iter().map(|r| r.peak_live_stream).max().unwrap_or(0);
    println!("minimum streaming speedup on deep corpora: {min_deep:.2}x (target ≥ 1.5x)");
    println!("maximum streaming peak live frames: {max_peak} (O(depth), never document size)");
    if min_deep < 1.5 {
        eprintln!("WARNING: streaming speedup below the 1.5x target");
        std::process::exit(1);
    }
}
