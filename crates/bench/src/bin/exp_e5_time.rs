//! Experiment E5 — see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    xtt_bench::exps::run_e5();
}
