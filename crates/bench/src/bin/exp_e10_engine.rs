//! E10 — engine throughput: tree-walk vs compiled vs streaming
//! evaluation on the flip / library / copying families. Prints the
//! comparison table and writes `BENCH_engine.json` (one row per workload)
//! for downstream tracking.
//!
//! ```console
//! $ cargo run --release -p xtt-bench --bin exp_e10_engine
//! ```

use xtt_bench::engine_exp::run_e10;

fn main() {
    let rows = run_e10();
    let json = serde_json::json!({
        "experiment": "E10",
        "description": "xtt-engine throughput: walk vs compiled vs streaming (corpus pass, best-of-5)",
        "rows": rows,
    });
    let path = "BENCH_engine.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let min = rows
        .iter()
        .map(|r| r.speedup_compiled)
        .fold(f64::INFINITY, f64::min);
    println!("minimum compiled speedup over tree-walk: {min:.1}x (target ≥ 3x)");
}
