//! E17 — pipeline execution strategies: the statically composed product
//! vs the chained streaming cascade, through the engine's public
//! `transform_chain` entry point (guarded, XML in / XML out), on 2- and
//! 3-stage pipelines. Also reports the jump-table shrink a fixed input
//! schema buys via stage specialization, and checks the planner's
//! probe-based chooser against the full-corpus measurement.

use std::time::Instant;

use serde::Serialize;
use xtt_engine::{tree_to_xml, DocFormat, Engine, EngineOptions, EvalMode};
use xtt_pipeline::{plan, Plan, StageDef, Strategy, StrategyChoice};
use xtt_transducer::{domain_dtta, parse_dtop};
use xtt_trees::{gen, RankedAlphabet};

/// Stage 1: swap the children of every `f` (total over {f, g, a}). The
/// dedicated below-`f` state `qf` exists so a schema that forbids `f`
/// kills a whole state, not just a rule — the jump-table shrink the
/// specialization report measures.
const SWAP: &str = "ax = <q,x0>\n\
                    q(f(x1,x2)) -> f(<qf,x2>,<qf,x1>)\n\
                    q(g(x1)) -> g(<q,x1>)\n\
                    q(a) -> a\n\
                    qf(f(x1,x2)) -> f(<qf,x2>,<qf,x1>)\n\
                    qf(g(x1)) -> g(<qf,x1>)\n\
                    qf(a) -> a\n";

/// Stage 2: relabel into a fresh alphabet, double-wrapping `g`.
const WRAP: &str = "ax = <r,x0>\n\
                    r(f(x1,x2)) -> u(<r,x1>,<r,x2>)\n\
                    r(g(x1)) -> v(v(<r,x1>))\n\
                    r(a) -> c\n";

/// Stage 3: drop every `v` wrapper (a deleting stage: the chained
/// cascade still produces the wrappers stage 3 then consumes, while the
/// composed product never emits them at all).
const UNWRAP: &str = "ax = <s,x0>\n\
                      s(u(x1,x2)) -> m(<s,x1>,<s,x2>)\n\
                      s(v(x1)) -> <s,x1>\n\
                      s(c) -> x\n";

/// The schema for the specialization report: monadic `g…g(a)` chains
/// only, so every `f` rule (and everything it alone emits) is dead.
const CHAIN_ONLY: &str = "ax = <p,x0>\n\
                          p(g(x1)) -> g(<p,x1>)\n\
                          p(a) -> a\n";

/// One measured (pipeline × strategy × eval-mode) cell.
#[derive(Debug, Clone, Serialize)]
pub struct E17Row {
    pub pipeline: &'static str,
    pub stages: usize,
    pub strategy: &'static str,
    pub mode: &'static str,
    pub docs: usize,
    pub bytes: u64,
    pub best_ns: u64,
    pub docs_per_sec: f64,
    pub mb_per_sec: f64,
}

/// The chooser audit for one pipeline: what the probe picked vs what the
/// full corpus measured (streaming mode, the serving hot path).
#[derive(Debug, Clone, Serialize)]
pub struct E17Choice {
    pub pipeline: &'static str,
    pub chosen: &'static str,
    pub composed_docs_per_sec: f64,
    pub chained_docs_per_sec: f64,
    /// Throughput of the chosen strategy relative to the faster one
    /// (1.0 = the chooser picked the winner).
    pub chosen_fraction_of_best: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct E17Schema {
    pub jump_entries_unspecialized: usize,
    pub jump_entries_specialized: usize,
    pub jump_table_shrink_pct: f64,
}

pub struct E17Options {
    /// Timed rounds per cell (best-of is reported).
    pub rounds: usize,
}

impl Default for E17Options {
    fn default() -> E17Options {
        E17Options { rounds: 5 }
    }
}

fn stage(name: &str, text: &str) -> StageDef {
    StageDef {
        name: name.to_owned(),
        dtop: std::sync::Arc::new(parse_dtop(text).unwrap()),
    }
}

/// Deterministic corpus over {f, g, a}: every small tree, plus deep
/// monadic chains and full binary combs for byte volume.
fn corpus() -> Vec<String> {
    let alpha = RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0)]);
    let mut docs: Vec<String> = gen::enumerate_trees(&alpha, 300, 12)
        .iter()
        .map(tree_to_xml)
        .collect();
    for n in [64, 256] {
        docs.push(format!("{}<a/>{}", "<g>".repeat(n), "</g>".repeat(n)));
    }
    fn full(depth: usize) -> String {
        if depth == 0 {
            "<a/>".to_owned()
        } else {
            let sub = full(depth - 1);
            format!("<f>{sub}{sub}</f>")
        }
    }
    docs.push(full(7));
    docs.push(format!("<g>{}</g>", full(6)));
    docs
}

/// Runs every doc through one strategy, asserting acceptance, and
/// returns (best round ns, total output bytes of one round).
fn measure(p: &Plan, strategy: Strategy, mode: EvalMode, docs: &[String], rounds: usize) -> u64 {
    let engine = Engine::new(EngineOptions::default());
    let stages = p.stages_for(strategy);
    let run = |check: bool| {
        for doc in docs {
            let out = engine
                .transform_chain(stages, doc, mode, DocFormat::Xml, Some(p.guard()), None)
                .unwrap_or_else(|e| panic!("{strategy:?}/{mode:?} rejected {doc}: {e}"));
            if check {
                assert!(!out.is_empty());
            }
        }
    };
    run(true); // warm-up + acceptance check
    let mut best = u64::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        run(false);
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

const MODES: [(EvalMode, &str); 2] = [
    (EvalMode::Compiled, "compiled"),
    (EvalMode::Streaming, "stream"),
];

pub fn run_e17(opts: &E17Options) -> (Vec<E17Row>, Vec<E17Choice>, E17Schema) {
    let docs = corpus();
    let bytes: u64 = docs.iter().map(|d| d.len() as u64).sum();

    let pipelines: [(&'static str, Vec<StageDef>); 2] = [
        ("swap-wrap", vec![stage("swap", SWAP), stage("wrap", WRAP)]),
        (
            "swap-wrap-unwrap",
            vec![
                stage("swap", SWAP),
                stage("wrap", WRAP),
                stage("unwrap", UNWRAP),
            ],
        ),
    ];

    let mut rows = Vec::new();
    let mut choices = Vec::new();
    for (name, stages) in &pipelines {
        let p = plan(stages, None, StrategyChoice::Auto).unwrap();
        let mut stream_docs_per_sec = [0.0f64; 2]; // [composed, chained]
        for (i, strategy) in [Strategy::Composed, Strategy::Chained]
            .into_iter()
            .enumerate()
        {
            for (mode, mode_name) in MODES {
                let best_ns = measure(&p, strategy, mode, &docs, opts.rounds);
                let secs = best_ns as f64 / 1e9;
                let row = E17Row {
                    pipeline: name,
                    stages: stages.len(),
                    strategy: strategy.as_str(),
                    mode: mode_name,
                    docs: docs.len(),
                    bytes,
                    best_ns,
                    docs_per_sec: docs.len() as f64 / secs,
                    mb_per_sec: bytes as f64 / 1e6 / secs,
                };
                if mode_name == "stream" {
                    stream_docs_per_sec[i] = row.docs_per_sec;
                }
                rows.push(row);
            }
        }
        let [composed, chained] = stream_docs_per_sec;
        let chosen = match p.strategy {
            Strategy::Composed => composed,
            Strategy::Chained => chained,
        };
        choices.push(E17Choice {
            pipeline: name,
            chosen: p.strategy.as_str(),
            composed_docs_per_sec: composed,
            chained_docs_per_sec: chained,
            chosen_fraction_of_best: chosen / composed.max(chained),
        });
    }

    // Schema specialization: restrict swap-wrap to monadic g-chains and
    // report how much of the per-stage jump tables dies.
    let schema_dtop = parse_dtop(CHAIN_ONLY).unwrap();
    let schema = domain_dtta(&schema_dtop, None);
    let sp = plan(
        &[stage("swap", SWAP), stage("wrap", WRAP)],
        Some(&schema),
        StrategyChoice::Auto,
    )
    .unwrap();
    let schema_report = E17Schema {
        jump_entries_unspecialized: sp.report.jump_entries_unspecialized,
        jump_entries_specialized: sp.report.jump_entries_specialized,
        jump_table_shrink_pct: sp.report.jump_table_shrink_pct(),
    };
    assert!(
        schema_report.jump_table_shrink_pct > 0.0,
        "g-chain schema must kill the f rules: {schema_report:?}"
    );

    (rows, choices, schema_report)
}

pub fn print_e17(rows: &[E17Row], choices: &[E17Choice], schema: &E17Schema) {
    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>7} {:>12} {:>10}",
        "pipeline", "stages", "strategy", "mode", "docs", "docs/s", "MB/s"
    );
    for r in rows {
        println!(
            "{:<18} {:>6} {:>9} {:>9} {:>7} {:>12.0} {:>10.2}",
            r.pipeline, r.stages, r.strategy, r.mode, r.docs, r.docs_per_sec, r.mb_per_sec
        );
    }
    for c in choices {
        println!(
            "{}: chooser picked {} (composed {:.0} docs/s, chained {:.0} docs/s, {:.1}% of best)",
            c.pipeline,
            c.chosen,
            c.composed_docs_per_sec,
            c.chained_docs_per_sec,
            100.0 * c.chosen_fraction_of_best
        );
    }
    println!(
        "schema specialization: jump entries {} -> {} ({:.1}% shrink)",
        schema.jump_entries_unspecialized,
        schema.jump_entries_specialized,
        schema.jump_table_shrink_pct
    );
}
