//! E5 timing: learning time vs transducer size over the flip_k and
//! relabel-chain families (Theorem 38's polynomial bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtt_bench::families::{chain_target, flip_k_target};
use xtt_bench::sample_for;
use xtt_core::rpni_dtop;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_scaling");
    group.sample_size(20);
    for k in [1usize, 2, 4, 6] {
        let target = flip_k_target(k);
        let sample = sample_for(&target);
        group.bench_with_input(BenchmarkId::new("flip_k", k), &k, |b, _| {
            b.iter(|| rpni_dtop(black_box(&sample), &target.domain, target.dtop.output()).unwrap())
        });
    }
    for n in [2usize, 4, 8, 16] {
        let target = chain_target(n);
        let sample = sample_for(&target);
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| rpni_dtop(black_box(&sample), &target.domain, target.dtop.output()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
