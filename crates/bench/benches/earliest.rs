//! E8 timing: earliest-normal-form construction and minimization
//! ([EMS 2009] via Section 3/7 of the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtt_bench::families::raw_flip_k;
use xtt_transducer::{examples, minimize, to_earliest};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("earliest");
    for k in [2usize, 4, 8] {
        let (dtop, domain) = raw_flip_k(k);
        group.bench_with_input(BenchmarkId::new("flip_k", k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    to_earliest(&dtop, Some(&domain))
                        .unwrap()
                        .dtop
                        .state_count(),
                )
            })
        });
    }
    // non-earliest inputs that require pushing output upward
    let m3 = examples::constant_m3();
    group.bench_function("constant_m3", |b| {
        b.iter(|| {
            black_box(
                to_earliest(&m3.dtop, Some(&m3.domain))
                    .unwrap()
                    .dtop
                    .state_count(),
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("minimize");
    for k in [2usize, 4, 8] {
        let (dtop, domain) = raw_flip_k(k);
        let canon = to_earliest(&dtop, Some(&domain)).unwrap();
        group.bench_with_input(BenchmarkId::new("flip_k", k), &k, |b, _| {
            b.iter(|| black_box(minimize(&canon).unwrap().dtop.state_count()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
