//! Ablation: evaluation throughput of `⟦M⟧` — the memoized evaluator on
//! linear-size and exponential-output workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xtt_transducer::{eval, examples};
use xtt_trees::Tree;

fn bench(c: &mut Criterion) {
    let flip = examples::flip();
    let mut group = c.benchmark_group("eval/flip");
    for n in [10u64, 100, 1000] {
        let input = examples::flip_input(n as usize, n as usize);
        group.throughput(Throughput::Elements(input.size()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eval(&flip.dtop, &input).unwrap().size()))
        });
    }
    group.finish();

    let lib = examples::library();
    let mut group = c.benchmark_group("eval/library");
    for n in [10usize, 100] {
        let input = examples::library_input(n);
        group.throughput(Throughput::Elements(input.size()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eval(&lib.dtop, &input).unwrap().size()))
        });
    }
    group.finish();

    // Copying: output is 2^n nodes, but memoization + sharing keep the
    // evaluation linear in n.
    let copier = examples::monadic_to_binary();
    let mut group = c.benchmark_group("eval/copying");
    for n in [16u32, 24, 32] {
        let mut input = Tree::leaf_named("e");
        for _ in 0..n {
            input = Tree::node("f", vec![input]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eval(&copier.dtop, &input).unwrap().height()))
        });
    }
    group.finish();

    // Ablation: the naive (memo-free) evaluator is exponential on the same
    // workload — keep n small.
    let mut group = c.benchmark_group("eval/copying_naive_ablation");
    for n in [8u32, 12, 16] {
        let mut input = Tree::leaf_named("e");
        for _ in 0..n {
            input = Tree::node("f", vec![input]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    xtt_transducer::eval_naive(&copier.dtop, &input)
                        .unwrap()
                        .height(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
