//! E2 timing: RPNIdtop on the §10 library characteristic sample.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtt_bench::families::library_target;
use xtt_bench::sample_for;
use xtt_core::rpni_dtop;

fn bench(c: &mut Criterion) {
    let target = library_target();
    let sample = sample_for(&target);
    let mut group = c.benchmark_group("learn");
    group.sample_size(40);
    group.bench_function("library", |b| {
        b.iter(|| {
            let learned =
                rpni_dtop(black_box(&sample), &target.domain, target.dtop.output()).unwrap();
            black_box(learned.dtop.state_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
