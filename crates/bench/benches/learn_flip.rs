//! E1 timing: RPNIdtop on the τflip characteristic sample.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtt_bench::families::flip_target;
use xtt_bench::sample_for;
use xtt_core::rpni_dtop;

fn bench(c: &mut Criterion) {
    let target = flip_target();
    let sample = sample_for(&target);
    c.bench_function("learn/flip", |b| {
        b.iter(|| {
            let learned =
                rpni_dtop(black_box(&sample), &target.domain, target.dtop.output()).unwrap();
            black_box(learned.dtop.state_count())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
