//! Engine throughput: the compiled and streaming evaluators of
//! `xtt-engine` against the research tree-walk evaluator, per document on
//! the standard E10 corpora (see `xtt_bench::engine_exp`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xtt_bench::engine_exp::engine_workloads;
use xtt_engine::{compile, EvalScratch, StreamEvaluator};
use xtt_transducer::eval as walk_eval;
use xtt_trees::Tree;

fn bench(c: &mut Criterion) {
    for w in engine_workloads() {
        let compiled = compile(&w.dtop).expect("compilable");
        let mut scratch = EvalScratch::new();
        let mut stream = StreamEvaluator::new();
        let nodes: u64 = w.docs.iter().map(Tree::size).sum();
        let name = format!("engine/{}_{}", w.family, w.param);
        let mut group = c.benchmark_group(&name);
        group.throughput(Throughput::Elements(nodes));
        group.bench_with_input(BenchmarkId::from_parameter("walk"), &w, |b, w| {
            b.iter(|| {
                for d in &w.docs {
                    black_box(walk_eval(&w.dtop, d).map(|t| t.height()));
                }
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter("compiled"), &w, |b, w| {
            b.iter(|| {
                for d in &w.docs {
                    black_box(compiled.eval(d, &mut scratch).map(|t| t.height()));
                }
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter("stream"), &w, |b, w| {
            b.iter(|| {
                for d in &w.docs {
                    black_box(stream.eval_tree(&compiled, d).map(|t| t.height()));
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
