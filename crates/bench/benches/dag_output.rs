//! E6 timing: minimal-DAG construction for exponential outputs (the §1
//! remark that characteristic samples stay small as DAGs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtt_transducer::{eval, examples};
use xtt_trees::{Tree, TreeDag};

fn bench(c: &mut Criterion) {
    let copier = examples::monadic_to_binary();
    let mut group = c.benchmark_group("dag_insert");
    for n in [12u32, 16, 20] {
        let mut input = Tree::leaf_named("e");
        for _ in 0..n {
            input = Tree::node("f", vec![input]);
        }
        let output = eval(&copier.dtop, &input).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut dag = TreeDag::new();
                let id = dag.insert(&output);
                black_box(dag.reachable_count(id))
            })
        });
    }
    group.finish();

    // baseline: DAG of an incompressible (all-distinct-labels) tree
    let mut group = c.benchmark_group("dag_insert_incompressible");
    for size in [1000usize, 10_000] {
        let tree = comb(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut dag = TreeDag::new();
                let id = dag.insert(&tree);
                black_box(dag.reachable_count(id))
            })
        });
    }
    group.finish();
}

/// A comb-shaped tree whose subtrees are pairwise distinct.
fn comb(n: usize) -> Tree {
    let mut t = Tree::leaf_named("z");
    for i in 0..n {
        t = Tree::node("c", vec![Tree::leaf_named(&format!("l{}", i % 17)), t]);
    }
    t
}

criterion_group!(benches, bench);
criterion_main!(benches);
