//! E4 timing: characteristic-sample generation (Proposition 34's
//! constructive side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtt_bench::families::{chain_target, flip_k_target, flip_target};
use xtt_core::characteristic_sample;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("charsample");
    group.sample_size(10);
    let flip = flip_target();
    group.bench_function("flip", |b| {
        b.iter(|| black_box(characteristic_sample(&flip).unwrap().len()))
    });
    for k in [1usize, 2, 3] {
        let target = flip_k_target(k);
        group.bench_with_input(BenchmarkId::new("flip_k", k), &k, |b, _| {
            b.iter(|| black_box(characteristic_sample(&target).unwrap().len()))
        });
    }
    for n in [2usize, 4] {
        let target = chain_target(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| black_box(characteristic_sample(&target).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
