//! E8 timing: deciding equivalence via canonical forms (the polynomial
//! decision procedure behind Theorem 28 / [EMS 2009]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtt_bench::families::raw_flip_k;
use xtt_transducer::{equivalent, examples};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence");
    // equivalent pair (different presentations of the same constant map)
    let m2 = examples::constant_m2();
    let m3 = examples::constant_m3();
    group.bench_function("constant_m2_vs_m3", |b| {
        b.iter(|| {
            black_box(equivalent(&m2.dtop, Some(&m2.domain), &m3.dtop, Some(&m3.domain)).unwrap())
        })
    });
    for k in [2usize, 4, 6] {
        let (a_dtop, a_dom) = raw_flip_k(k);
        let (b_dtop, b_dom) = raw_flip_k(k);
        group.bench_with_input(BenchmarkId::new("flip_k_self", k), &k, |b, _| {
            b.iter(|| black_box(equivalent(&a_dtop, Some(&a_dom), &b_dtop, Some(&b_dom)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
