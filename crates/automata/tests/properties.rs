//! Property-based tests for DTTAs over randomly generated automata.

use proptest::prelude::*;
use xtt_automata::{
    enumerate_language, intersect, language_classes, minimal_witnesses, nonempty_states, trim,
    Dtta, DttaBuilder, StateId,
};
use xtt_trees::{FPath, RankedAlphabet, Symbol, Tree};

fn alphabet() -> RankedAlphabet {
    RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0), ("b", 0)])
}

/// Builds a random DTTA from a transition table description: for each
/// (state, symbol), an optional list of child states.
fn build(n_states: usize, table: &[(usize, &str, Vec<usize>)]) -> Dtta {
    let alpha = alphabet();
    let mut b = DttaBuilder::new(alpha.clone());
    let states: Vec<StateId> = (0..n_states)
        .map(|i| b.add_state(format!("s{i}")))
        .collect();
    for (q, sym, children) in table {
        let kids: Vec<StateId> = children.iter().map(|&c| states[c % n_states]).collect();
        let symbol = Symbol::new(sym);
        let rank = alpha.rank(symbol).unwrap();
        if kids.len() == rank {
            b.add_transition(states[*q % n_states], symbol, kids)
                .unwrap();
        }
    }
    b.build().unwrap()
}

/// A raw transition-table row: (state, symbol, child states).
type TableRow = (usize, &'static str, Vec<usize>);

/// Strategy producing random transition tables.
fn arb_table() -> impl Strategy<Value = (usize, Vec<TableRow>)> {
    let entry = (
        0usize..4,
        prop_oneof![Just("f"), Just("g"), Just("a"), Just("b")],
        proptest::collection::vec(0usize..4, 0..2),
    )
        .prop_map(|(q, s, mut kids)| {
            let rank = match s {
                "f" => 2,
                "g" => 1,
                _ => 0,
            };
            kids.resize(rank, 0);
            (q, s, kids)
        });
    (2usize..5, proptest::collection::vec(entry, 1..14))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trim_preserves_language((n, table) in arb_table()) {
        let a = build(n, &table);
        let t = trim(&a);
        for tree in xtt_trees::gen::enumerate_trees(a.alphabet(), 60, 6) {
            prop_assert_eq!(a.accepts(&tree), t.accepts(&tree), "on {}", tree);
        }
    }

    #[test]
    fn intersection_is_conjunction((n1, t1) in arb_table(), (n2, t2) in arb_table()) {
        let a = build(n1, &t1);
        let b = build(n2, &t2);
        let p = intersect(&a, &b);
        for tree in xtt_trees::gen::enumerate_trees(a.alphabet(), 60, 6) {
            prop_assert_eq!(p.accepts(&tree), a.accepts(&tree) && b.accepts(&tree));
        }
    }

    #[test]
    fn nonempty_agrees_with_enumeration((n, table) in arb_table()) {
        let a = build(n, &table);
        let nonempty = nonempty_states(&a);
        for q in a.states() {
            let found = !enumerate_language(&a, q, 1, 8).is_empty();
            // enumeration is bounded; only check the positive direction
            // at small size, and that empty-flagged states yield nothing
            if !nonempty[q.index()] {
                prop_assert!(!found, "empty state produced a tree");
            }
        }
    }

    #[test]
    fn witnesses_are_accepted_and_minimal((n, table) in arb_table()) {
        let a = build(n, &table);
        let wit = minimal_witnesses(&a);
        for q in a.states() {
            if let Some(w) = &wit[q.index()] {
                prop_assert!(a.accepts_from(q, w));
                // nothing smaller is accepted
                for smaller in enumerate_language(&a, q, 5, (w.size() as usize).saturating_sub(1)) {
                    prop_assert!(smaller.size() >= w.size());
                }
            }
        }
    }

    #[test]
    fn language_classes_respect_enumeration((n, table) in arb_table()) {
        let a = build(n, &table);
        let classes = language_classes(&a);
        let probe = xtt_trees::gen::enumerate_trees(a.alphabet(), 40, 5);
        for q1 in a.states() {
            for q2 in a.states() {
                if classes[q1.index()] == classes[q2.index()] {
                    for t in &probe {
                        prop_assert_eq!(
                            a.accepts_from(q1, t),
                            a.accepts_from(q2, t),
                            "states {} and {} same class but differ on {}", q1, q2, t
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn residual_states_accept_subtrees((n, table) in arb_table()) {
        let a = build(n, &table);
        for tree in enumerate_language(&a, a.initial(), 20, 8) {
            for path in tree.node_paths() {
                let u = FPath::of_node_path(&tree, &path).unwrap();
                let q = a.residual(&u);
                prop_assert!(q.is_some(), "accepted tree has dead path {}", u);
                let sub: Tree = tree.subtree_at(&path).unwrap();
                prop_assert!(a.accepts_from(q.unwrap(), &sub));
            }
        }
    }
}
