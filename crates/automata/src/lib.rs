//! # xtt-automata
//!
//! Deterministic top-down tree automata (DTTAs) — the domain-inspection
//! device of *"A Learning Algorithm for Top-Down XML Transformations"*
//! (PODS 2010).
//!
//! Domains of deterministic top-down tree transducers are *path-closed*
//! (Proposition 2 of the paper), and path-closed regular tree languages are
//! exactly those accepted by DTTAs. The learning algorithm `RPNIdtop`
//! receives such an automaton `A` with `L(A) = dom(τ)` and uses it for:
//!
//! * residual-language equality `u₁⁻¹(D) = u₂⁻¹(D)` in the mergeability
//!   test (Definition 30) — [`analysis::language_classes`];
//! * minimal trees of residual languages when building characteristic
//!   samples — [`analysis::minimal_witnesses`];
//! * size-ordered enumeration of residual languages to find distinguishing
//!   inputs — [`analysis::enumerate_language`].

pub mod analysis;
pub mod dtta;
pub mod ops;
pub mod parse;

pub use analysis::{
    enumerate_language, is_empty, language_classes, minimal_witnesses, nonempty_states,
    same_language,
};
pub use dtta::{Dtta, DttaBuilder, DttaError, StateId};
pub use ops::{intersect, language_equal, trim};
pub use parse::{parse_dtta, DttaParseError};
