//! Parsing a [`Dtta`] back from its [`Display`] rendering.
//!
//! The textual format is what `Dtta`'s `Display` impl writes — an
//! optional header naming the initial state and one line per transition:
//!
//! ```text
//! dtta (initial start)
//! start(root(x1,x2)) -> root(<alist,x1>,<blist,x2>)
//! alist(a(x1,x2)) -> a(<nil,x1>,<alist,x2>)
//! alist(#) -> #
//! ```
//!
//! Constants may be written `q(#) -> #` or, as `Display` prints them,
//! `q(#()) -> #()`. The alphabet (with ranks) is inferred from the
//! left-hand sides; states are collected from heads and call targets; the
//! initial state comes from the header, or defaults to the first rule's
//! head state. This makes the rendering a complete wire format — the
//! serving layer accepts output schemas for `POST /typecheck/{name}` in
//! it.
//!
//! [`Display`]: std::fmt::Display

use std::collections::{HashMap, HashSet};

use xtt_trees::{RankedAlphabet, Symbol};

use crate::dtta::{Dtta, DttaBuilder, DttaError, StateId};

/// A parse error, with the offending line when there is one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DttaParseError(pub String);

impl std::fmt::Display for DttaParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DttaParseError {}

impl From<DttaError> for DttaParseError {
    fn from(e: DttaError) -> DttaParseError {
        DttaParseError(e.to_string())
    }
}

struct TransitionLine {
    state: String,
    symbol: String,
    arity: usize,
    children: Vec<String>,
}

/// Parses an automaton from its `Display` rendering (see the module
/// docs). Lines that are empty or start with `//` are skipped.
pub fn parse_dtta(text: &str) -> Result<Dtta, DttaParseError> {
    let mut initial_name: Option<String> = None;
    let mut lines: Vec<TransitionLine> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("dtta") {
            let rest = rest.trim();
            let name = rest
                .strip_prefix("(initial")
                .and_then(|r| r.trim_end().strip_suffix(')'))
                .map(str::trim)
                .ok_or_else(|| err(lineno, "expected `dtta (initial NAME)`"))?;
            if initial_name.is_some() {
                return Err(err(lineno, "duplicate header line"));
            }
            initial_name = Some(name.to_owned());
            continue;
        }
        lines.push(parse_transition_line(line, lineno)?);
    }
    if lines.is_empty() && initial_name.is_none() {
        return Err(DttaParseError("empty automaton text".into()));
    }

    // States: the initial state first, then heads in line order, then call
    // targets (states with no outgoing transitions have empty language but
    // may still be referenced).
    let mut order: Vec<String> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut add = |order: &mut Vec<String>, name: &str| {
        if !name.is_empty() && seen.insert(name.to_owned()) {
            order.push(name.to_owned());
        }
    };
    if let Some(name) = &initial_name {
        add(&mut order, name);
    }
    for line in &lines {
        add(&mut order, &line.state);
        for child in &line.children {
            add(&mut order, child);
        }
    }
    if order.is_empty() {
        return Err(DttaParseError("automaton has no states".into()));
    }

    let mut alpha_pairs: Vec<(String, usize)> = Vec::new();
    for line in &lines {
        match alpha_pairs.iter().find(|(n, _)| n == &line.symbol) {
            Some((_, r)) if *r != line.arity => {
                return Err(DttaParseError(format!(
                    "symbol {} used with ranks {r} and {}",
                    line.symbol,
                    line.arity,
                    r = r
                )));
            }
            Some(_) => {}
            None => alpha_pairs.push((line.symbol.clone(), line.arity)),
        }
    }
    let alphabet = RankedAlphabet::from_pairs(alpha_pairs.iter().map(|(n, r)| (n.as_str(), *r)));

    let mut builder = DttaBuilder::new(alphabet);
    let index: HashMap<&str, StateId> = order
        .iter()
        .map(|name| (name.as_str(), builder.add_state(name.clone())))
        .collect();
    builder.set_initial(index[order[0].as_str()]);
    let mut defined: HashSet<(StateId, Symbol)> = HashSet::new();
    for line in &lines {
        let q = index[line.state.as_str()];
        let f = Symbol::new(&line.symbol);
        if !defined.insert((q, f)) {
            return Err(DttaParseError(format!(
                "duplicate transition for ({}, {})",
                line.state, line.symbol
            )));
        }
        let children = line.children.iter().map(|c| index[c.as_str()]).collect();
        builder.add_transition(q, f, children)?;
    }
    Ok(builder.build()?)
}

fn err(lineno: usize, message: impl std::fmt::Display) -> DttaParseError {
    DttaParseError(format!("line {}: {message}", lineno + 1))
}

/// Splits `state(symbol(x1,…,xk)) -> symbol(<p1,x1>,…,<pk,xk>)` into its
/// parts; the right-hand side's symbol is redundant (a DTTA realizes a
/// partial identity) and only its `<state,xi>` calls are read.
fn parse_transition_line(line: &str, lineno: usize) -> Result<TransitionLine, DttaParseError> {
    let arrow = find_arrow(line).ok_or_else(|| err(lineno, "expected `lhs -> rhs`"))?;
    let lhs = line[..arrow].trim();
    let rhs = line[arrow + 2..].trim();
    // State names are never quoted, so the first `(` ends the state.
    let open = lhs
        .find('(')
        .ok_or_else(|| err(lineno, "expected `state(symbol…)` on the left"))?;
    let state = lhs[..open].trim();
    if state.is_empty() {
        return Err(err(lineno, "empty state name"));
    }
    let rest = lhs[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| err(lineno, "unbalanced `)` in the transition head"))?
        .trim();
    let (symbol, after) = read_symbol(rest).map_err(|m| err(lineno, m))?;
    if symbol.is_empty() {
        return Err(err(lineno, "empty symbol"));
    }
    let after = after.trim();
    let arity = if after.is_empty() || after == "()" {
        0
    } else {
        let vars = after
            .strip_prefix('(')
            .and_then(|v| v.strip_suffix(')'))
            .ok_or_else(|| err(lineno, "expected `(x1,…,xk)` after the symbol"))?;
        let mut arity = 0usize;
        for (i, v) in vars.split(',').enumerate() {
            if v.trim() != format!("x{}", i + 1) {
                return Err(err(
                    lineno,
                    format!(
                        "expected variable x{} in the head, got `{}`",
                        i + 1,
                        v.trim()
                    ),
                ));
            }
            arity += 1;
        }
        arity
    };
    let children = call_targets(rhs);
    if children.len() != arity {
        return Err(err(
            lineno,
            format!(
                "transition on {symbol} has {} successor calls, head has rank {arity}",
                children.len()
            ),
        ));
    }
    Ok(TransitionLine {
        state: state.to_owned(),
        symbol,
        arity,
        children,
    })
}

/// Byte offset of the first `->` outside double quotes.
fn find_arrow(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1,
            b'"' => in_quotes = !in_quotes,
            b'-' if !in_quotes && bytes.get(i + 1) == Some(&b'>') => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Reads one symbol (bare or quoted, reversing the `Display` escaping)
/// from the start of `s`; returns the name and the remaining text.
fn read_symbol(s: &str) -> Result<(String, &str), String> {
    if let Some(rest) = s.strip_prefix('"') {
        let bytes = rest.as_bytes();
        let mut name = String::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => return Ok((name, &rest[i + 1..])),
                b'\\' => {
                    let (c, used) = unescape_at(rest, i + 1)?;
                    name.push(c);
                    i += 1 + used;
                }
                _ => {
                    let c = rest[i..].chars().next().expect("in-bounds char");
                    name.push(c);
                    i += c.len_utf8();
                }
            }
        }
        Err("unterminated quoted symbol".into())
    } else {
        let end = s.find('(').unwrap_or(s.len());
        Ok((s[..end].trim().to_owned(), &s[end..]))
    }
}

/// Decodes one `Debug`-style escape starting after the backslash at byte
/// `at`; returns the character and how many bytes the escape body used.
fn unescape_at(s: &str, at: usize) -> Result<(char, usize), String> {
    match s.as_bytes().get(at) {
        Some(b'"') => Ok(('"', 1)),
        Some(b'\\') => Ok(('\\', 1)),
        Some(b'n') => Ok(('\n', 1)),
        Some(b'r') => Ok(('\r', 1)),
        Some(b't') => Ok(('\t', 1)),
        Some(b'0') => Ok(('\0', 1)),
        Some(b'\'') => Ok(('\'', 1)),
        Some(b'u') => {
            let rest = &s[at + 1..];
            let inner = rest
                .strip_prefix('{')
                .and_then(|r| r.split_once('}'))
                .ok_or("malformed \\u escape")?
                .0;
            let code = u32::from_str_radix(inner, 16).map_err(|_| "bad \\u code".to_owned())?;
            let c = char::from_u32(code).ok_or("invalid \\u code point")?;
            Ok((c, 1 + inner.len() + 2))
        }
        _ => Err("unknown escape in quoted symbol".into()),
    }
}

/// State names appearing as `<name,…>` calls, quote-aware, in order.
fn call_targets(rhs: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = rhs.as_bytes();
    let mut i = 0;
    let mut in_quotes = false;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_quotes = !in_quotes,
            b'\\' if in_quotes => i += 1,
            b'<' if !in_quotes => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b',' && bytes[j] != b'>' {
                    j += 1;
                }
                out.push(rhs[start..j].trim().to_owned());
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::language_equal;
    use xtt_trees::parse_tree;

    fn flip_domain_text() -> &'static str {
        "dtta (initial start)\n\
         start(root(x1,x2)) -> root(<alist,x1>,<blist,x2>)\n\
         alist(a(x1,x2)) -> a(<nil,x1>,<alist,x2>)\n\
         alist(#) -> #\n\
         blist(b(x1,x2)) -> b(<nil,x1>,<blist,x2>)\n\
         blist(#) -> #\n\
         nil(#) -> #\n"
    }

    #[test]
    fn parses_handwritten_automaton() {
        let a = parse_dtta(flip_domain_text()).unwrap();
        assert_eq!(a.state_name(a.initial()), "start");
        assert!(a.accepts(&parse_tree("root(a(#,a(#,#)),b(#,#))").unwrap()));
        assert!(!a.accepts(&parse_tree("root(b(#,#),a(#,#))").unwrap()));
    }

    #[test]
    fn display_parse_roundtrips() {
        let a = parse_dtta(flip_domain_text()).unwrap();
        let reparsed = parse_dtta(&a.to_string()).unwrap();
        assert!(language_equal(&a, &reparsed));
        assert_eq!(reparsed.to_string(), a.to_string());
    }

    #[test]
    fn header_is_optional_and_constants_take_both_forms() {
        let a = parse_dtta("q(f(x1)) -> f(<q,x1>)\nq(e()) -> e()\n").unwrap();
        assert_eq!(a.state_name(a.initial()), "q");
        assert!(a.accepts(&parse_tree("f(f(e))").unwrap()));
    }

    #[test]
    fn quoted_symbols_roundtrip() {
        let alpha = RankedAlphabet::from_pairs([("odd name", 1), ("e", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let q = b.add_state("q");
        b.add_transition(q, Symbol::new("odd name"), vec![q])
            .unwrap();
        b.add_transition(q, Symbol::new("e"), vec![]).unwrap();
        let a = b.build().unwrap();
        let parsed = parse_dtta(&a.to_string()).unwrap();
        assert!(language_equal(&a, &parsed));
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(parse_dtta("").is_err());
        assert!(parse_dtta("nonsense").is_err());
        assert!(parse_dtta("q(f(x1)) -> f(<q,x1>)\nq(f(x1)) -> f(<q,x1>)").is_err());
        assert!(parse_dtta("q(f(x1)) -> f()").is_err(), "missing call");
        assert!(parse_dtta("q(f(x2)) -> f(<q,x2>)").is_err(), "bad variable");
        assert!(
            parse_dtta("q(f(x1)) -> f(<q,x1>)\nq(f) -> f").is_err(),
            "rank conflict"
        );
        assert!(parse_dtta("dtta (initial q").is_err(), "bad header");
    }
}
