//! Operations on DTTAs: product (intersection) and trimming.

use std::collections::HashMap;

use crate::analysis::nonempty_states;
use crate::dtta::{Dtta, DttaBuilder, StateId};

/// The product automaton: `L(result) = L(a) ∩ L(b)`.
///
/// Path-closed languages are closed under intersection, so the product of
/// two DTTAs is again a DTTA. Only pairs reachable from the initial pair
/// are materialized.
pub fn intersect(a: &Dtta, b: &Dtta) -> Dtta {
    let mut alphabet = a.alphabet().clone();
    alphabet.union_with(b.alphabet());
    let mut builder = DttaBuilder::new(alphabet.clone());
    let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: Vec<(StateId, StateId)> = Vec::new();

    let start = (a.initial(), b.initial());
    let s0 = builder.add_state(format!(
        "{}*{}",
        a.state_name(a.initial()),
        b.state_name(b.initial())
    ));
    ids.insert(start, s0);
    queue.push(start);

    while let Some((qa, qb)) = queue.pop() {
        let id = ids[&(qa, qb)];
        for &f in alphabet.symbols() {
            let (Some(ca), Some(cb)) = (a.transition(qa, f), b.transition(qb, f)) else {
                continue;
            };
            let mut children = Vec::with_capacity(ca.len());
            for (&x, &y) in ca.iter().zip(cb) {
                let child = *ids.entry((x, y)).or_insert_with(|| {
                    queue.push((x, y));
                    builder.add_state(format!("{}*{}", a.state_name(x), b.state_name(y)))
                });
                children.push(child);
            }
            builder
                .add_transition(id, f, children)
                .expect("ranks agree");
        }
    }
    builder.build().expect("product has an initial state")
}

/// Removes transitions into empty-language states and drops states that are
/// unreachable afterwards. The language is unchanged; every remaining
/// transition is *live* (usable in some accepting run).
pub fn trim(a: &Dtta) -> Dtta {
    let nonempty = nonempty_states(a);
    let mut builder = DttaBuilder::new(a.alphabet().clone());
    let mut ids: HashMap<StateId, StateId> = HashMap::new();
    let mut queue = vec![a.initial()];
    let new_initial = builder.add_state(a.state_name(a.initial()));
    ids.insert(a.initial(), new_initial);

    while let Some(q) = queue.pop() {
        let id = ids[&q];
        for &f in a.alphabet().symbols() {
            let Some(children) = a.transition(q, f) else {
                continue;
            };
            if children.iter().any(|c| !nonempty[c.index()]) {
                continue; // dead transition
            }
            let mut new_children = Vec::with_capacity(children.len());
            for &c in children {
                let child = *ids.entry(c).or_insert_with(|| {
                    queue.push(c);
                    builder.add_state(a.state_name(c))
                });
                new_children.push(child);
            }
            builder
                .add_transition(id, f, new_children)
                .expect("ranks agree");
        }
    }
    builder.build().expect("trim keeps the initial state")
}

/// True iff `L(a) = L(b)`.
///
/// Both automata are trimmed first; afterwards, two states are
/// language-equal iff they enable the same symbols and their children are
/// pairwise language-equal (coinductively) — checked by a BFS over state
/// pairs. Sound and complete for deterministic top-down automata, whose
/// languages are path-closed.
pub fn language_equal(a: &Dtta, b: &Dtta) -> bool {
    let a = trim(a);
    let b = trim(b);
    let a_nonempty = nonempty_states(&a)[a.initial().index()];
    let b_nonempty = nonempty_states(&b)[b.initial().index()];
    if a_nonempty != b_nonempty {
        return false;
    }
    if !a_nonempty {
        return true; // both empty
    }
    let mut seen: std::collections::HashSet<(StateId, StateId)> = std::collections::HashSet::new();
    let mut queue = vec![(a.initial(), b.initial())];
    let mut symbols = a.alphabet().clone();
    symbols.union_with(b.alphabet());
    while let Some((pa, pb)) = queue.pop() {
        if !seen.insert((pa, pb)) {
            continue;
        }
        for &f in symbols.symbols() {
            match (a.transition(pa, f), b.transition(pb, f)) {
                (None, None) => {}
                (Some(ca), Some(cb)) => {
                    queue.extend(ca.iter().copied().zip(cb.iter().copied()));
                }
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{enumerate_language, is_empty};
    use xtt_trees::{parse_tree, RankedAlphabet, Symbol};

    fn list_automaton(letter: &str) -> Dtta {
        // lists letter(#, letter(#, ... #)) in fc/ns style, plus bare "#"
        let alpha = RankedAlphabet::from_pairs([("a", 2), ("b", 2), ("#", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let p = b.add_state("list");
        let nil = b.add_state("nil");
        b.add_transition(p, Symbol::new(letter), vec![nil, p])
            .unwrap();
        b.add_transition(p, Symbol::new("#"), vec![]).unwrap();
        b.add_transition(nil, Symbol::new("#"), vec![]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn intersection_of_disjoint_lists_is_nil_only() {
        let a = list_automaton("a");
        let b = list_automaton("b");
        let prod = intersect(&a, &b);
        assert!(prod.accepts(&parse_tree("#").unwrap()));
        assert!(!prod.accepts(&parse_tree("a(#,#)").unwrap()));
        assert!(!prod.accepts(&parse_tree("b(#,#)").unwrap()));
        let all = enumerate_language(&prod, prod.initial(), 10, 10);
        assert_eq!(all.len(), 1); // only "#"
    }

    #[test]
    fn intersection_with_self_preserves_language() {
        let a = list_automaton("a");
        let prod = intersect(&a, &a);
        for t in enumerate_language(&a, a.initial(), 20, 15) {
            assert!(prod.accepts(&t));
        }
    }

    #[test]
    fn language_equal_basic() {
        let a1 = list_automaton("a");
        let a2 = list_automaton("a");
        let b = list_automaton("b");
        assert!(language_equal(&a1, &a2));
        assert!(!language_equal(&a1, &b));
        // different automata, same language: add an unreachable state
        let alpha = RankedAlphabet::from_pairs([("a", 2), ("b", 2), ("#", 0)]);
        let mut builder = DttaBuilder::new(alpha);
        let p = builder.add_state("list");
        let nil = builder.add_state("nil");
        let junk = builder.add_state("junk");
        builder
            .add_transition(p, Symbol::new("a"), vec![nil, p])
            .unwrap();
        builder.add_transition(p, Symbol::new("#"), vec![]).unwrap();
        builder
            .add_transition(nil, Symbol::new("#"), vec![])
            .unwrap();
        builder
            .add_transition(junk, Symbol::new("b"), vec![junk, junk])
            .unwrap();
        let padded = builder.build().unwrap();
        assert!(language_equal(&a1, &padded));
    }

    #[test]
    fn language_equal_handles_empty() {
        let alpha = RankedAlphabet::from_pairs([("f", 1), ("a", 0)]);
        let mut b1 = DttaBuilder::new(alpha.clone());
        let q = b1.add_state("loop");
        b1.add_transition(q, Symbol::new("f"), vec![q]).unwrap();
        let empty1 = b1.build().unwrap();
        let mut b2 = DttaBuilder::new(alpha.clone());
        b2.add_state("dead");
        let empty2 = b2.build().unwrap();
        assert!(language_equal(&empty1, &empty2));
        let univ = Dtta::universal(alpha);
        assert!(!language_equal(&empty1, &univ));
    }

    #[test]
    fn trim_removes_dead_transitions() {
        let alpha = RankedAlphabet::from_pairs([("f", 1), ("a", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let q = b.add_state("q");
        let dead = b.add_state("dead");
        b.add_transition(q, Symbol::new("a"), vec![]).unwrap();
        b.add_transition(q, Symbol::new("f"), vec![dead]).unwrap();
        b.add_transition(dead, Symbol::new("f"), vec![dead])
            .unwrap();
        let a = b.build().unwrap();
        let trimmed = trim(&a);
        assert_eq!(trimmed.state_count(), 1);
        assert_eq!(trimmed.transition_count(), 1);
        assert!(trimmed.accepts(&parse_tree("a").unwrap()));
        assert!(!trimmed.accepts(&parse_tree("f(a)").unwrap()));
        assert!(!is_empty(&trimmed));
    }
}
