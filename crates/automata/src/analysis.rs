//! Analyses over DTTAs: emptiness, minimal witnesses, language-equivalence
//! classes, trimming, and language enumeration.
//!
//! These are the automata-theoretic workhorses behind the learning
//! algorithm: mergeability (Definition 30) needs *residual-language
//! equality* `u₁⁻¹(D) = u₂⁻¹(D)`; characteristic-sample generation
//! (Proposition 34) needs *minimal trees* of residual languages and
//! size-ordered *enumeration* to find distinguishing inputs.

use std::collections::HashMap;

use xtt_trees::{Symbol, Tree};

use crate::dtta::{Dtta, StateId};

/// Per-state emptiness: `nonempty[q] ⇔ L(q) ≠ ∅`. Least fixpoint.
pub fn nonempty_states(a: &Dtta) -> Vec<bool> {
    let mut nonempty = vec![false; a.state_count()];
    let transitions = a.transitions();
    loop {
        let mut changed = false;
        for &(q, _, children) in &transitions {
            if !nonempty[q.index()] && children.iter().all(|c| nonempty[c.index()]) {
                nonempty[q.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return nonempty;
        }
    }
}

/// True if `L(A) = ∅`.
pub fn is_empty(a: &Dtta) -> bool {
    !nonempty_states(a)[a.initial().index()]
}

/// For every state, a smallest tree of its language (`None` if empty).
/// Witnesses share subtrees, so the whole table is small in memory.
pub fn minimal_witnesses(a: &Dtta) -> Vec<Option<Tree>> {
    let mut best_size: Vec<u64> = vec![u64::MAX; a.state_count()];
    let mut witness: Vec<Option<Tree>> = vec![None; a.state_count()];
    let transitions = a.transitions();
    // Bellman-Ford-style relaxation; terminates because sizes strictly
    // decrease and are bounded below by 1.
    loop {
        let mut changed = false;
        for &(q, f, children) in &transitions {
            let mut total: u64 = 1;
            let mut kids: Vec<Tree> = Vec::with_capacity(children.len());
            let mut ok = true;
            for c in children {
                match &witness[c.index()] {
                    Some(w) => {
                        total += w.size();
                        kids.push(w.clone());
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && total < best_size[q.index()] {
                best_size[q.index()] = total;
                witness[q.index()] = Some(Tree::new(f, kids));
                changed = true;
            }
        }
        if !changed {
            return witness;
        }
    }
}

/// Language-equivalence classes of states: `class[q₁] == class[q₂] ⇔
/// L(q₁) = L(q₂)`.
///
/// Works by Moore-style partition refinement on the *trimmed* automaton:
/// empty-language states form their own class; the signature of a state is
/// the set of (symbol, children classes) over transitions whose children
/// are all nonempty. For deterministic top-down automata over path-closed
/// languages this coincides with language equality.
pub fn language_classes(a: &Dtta) -> Vec<usize> {
    let nonempty = nonempty_states(a);
    let n = a.state_count();
    // class 0 = empty language
    let mut class: Vec<usize> = nonempty.iter().map(|&ne| usize::from(ne)).collect();
    let transitions = a.transitions();
    /// A state's behaviour under the current partition: (old class, sorted
    /// live transitions as (symbol id, child classes)).
    type Signature = (usize, Vec<(u32, Vec<usize>)>);
    loop {
        // signature of each nonempty state under the current classes
        let mut signatures: Vec<Vec<(Symbol, Vec<usize>)>> = vec![Vec::new(); n];
        for &(q, f, children) in &transitions {
            if !nonempty[q.index()] || children.iter().any(|c| !nonempty[c.index()]) {
                continue; // dead transition: contributes nothing to L(q)
            }
            signatures[q.index()].push((f, children.iter().map(|c| class[c.index()]).collect()));
        }
        let mut sig_to_class: HashMap<Signature, usize> = HashMap::new();
        let mut next: Vec<usize> = vec![0; n];
        let mut counter = 1usize;
        for q in 0..n {
            if !nonempty[q] {
                next[q] = 0;
                continue;
            }
            let mut sig: Vec<(u32, Vec<usize>)> = signatures[q]
                .iter()
                .map(|(f, cs)| (f.id(), cs.clone()))
                .collect();
            sig.sort();
            // Include the current class so refinement only splits.
            let key = (class[q], sig);
            let c = *sig_to_class.entry(key).or_insert_with(|| {
                let c = counter;
                counter += 1;
                c
            });
            next[q] = c;
        }
        if next == class {
            return class;
        }
        class = next;
    }
}

/// True iff `L(q₁) = L(q₂)`.
pub fn same_language(a: &Dtta, q1: StateId, q2: StateId) -> bool {
    let classes = language_classes(a);
    classes[q1.index()] == classes[q2.index()]
}

/// Enumerates up to `max_count` trees of `L(q)`, by increasing size, up to
/// `max_size` nodes. Deterministic: symbol declaration order, then child
/// splits. Used by the characteristic-sample generator to find minimal
/// distinguishing inputs.
pub fn enumerate_language(a: &Dtta, q: StateId, max_count: usize, max_size: usize) -> Vec<Tree> {
    let n = a.state_count();
    // by_size[q][s] = trees of L(q) with exactly s nodes (built lazily per size)
    let mut by_size: Vec<Vec<Vec<Tree>>> = vec![vec![Vec::new(); max_size + 1]; n];
    let mut out = Vec::new();
    for size in 1..=max_size {
        for state in a.states() {
            let mut bucket: Vec<Tree> = Vec::new();
            for &f in a.alphabet().symbols() {
                let Some(children) = a.transition(state, f) else {
                    continue;
                };
                if children.is_empty() {
                    if size == 1 {
                        bucket.push(Tree::leaf(f));
                    }
                    continue;
                }
                if size < children.len() + 1 {
                    continue;
                }
                let mut combos: Vec<Vec<Tree>> = Vec::new();
                distribute_states(
                    size - 1,
                    children,
                    &by_size,
                    &mut Vec::new(),
                    &mut combos,
                    max_count,
                );
                for kids in combos {
                    bucket.push(Tree::new(f, kids));
                }
            }
            by_size[state.index()][size] = bucket;
        }
        for t in &by_size[q.index()][size] {
            out.push(t.clone());
            if out.len() >= max_count {
                return out;
            }
        }
    }
    out
}

fn distribute_states(
    total: usize,
    slots: &[StateId],
    by_size: &[Vec<Vec<Tree>>],
    prefix: &mut Vec<Tree>,
    out: &mut Vec<Vec<Tree>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    match slots.split_first() {
        None => {
            if total == 0 {
                out.push(prefix.clone());
            }
        }
        Some((&first, rest)) => {
            let min_rest = rest.len();
            for take in 1..=total.saturating_sub(min_rest) {
                for t in &by_size[first.index()][take] {
                    prefix.push(t.clone());
                    distribute_states(total - take, rest, by_size, prefix, out, cap);
                    prefix.pop();
                    if out.len() >= cap {
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtta::DttaBuilder;
    use xtt_trees::{FPath, RankedAlphabet};

    fn flip_domain() -> Dtta {
        let alpha = RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let p0 = b.add_state("start");
        let pa = b.add_state("alist");
        let pb = b.add_state("blist");
        let ph = b.add_state("nil");
        b.add_transition(p0, Symbol::new("root"), vec![pa, pb])
            .unwrap();
        b.add_transition(pa, Symbol::new("a"), vec![ph, pa])
            .unwrap();
        b.add_transition(pa, Symbol::new("#"), vec![]).unwrap();
        b.add_transition(pb, Symbol::new("b"), vec![ph, pb])
            .unwrap();
        b.add_transition(pb, Symbol::new("#"), vec![]).unwrap();
        b.add_transition(ph, Symbol::new("#"), vec![]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn nonempty_detects_productive_states() {
        let a = flip_domain();
        assert_eq!(nonempty_states(&a), vec![true; 4]);
        assert!(!is_empty(&a));
    }

    #[test]
    fn empty_state_detected() {
        let alpha = RankedAlphabet::from_pairs([("f", 1), ("a", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let q = b.add_state("loop");
        // q(f(x)) -> f(<q,x>), no leaf rule: L(q) = ∅
        b.add_transition(q, Symbol::new("f"), vec![q]).unwrap();
        let a = b.build().unwrap();
        assert!(is_empty(&a));
        assert_eq!(minimal_witnesses(&a), vec![None]);
    }

    #[test]
    fn minimal_witnesses_are_minimal() {
        let a = flip_domain();
        let w = minimal_witnesses(&a);
        assert_eq!(w[0].as_ref().unwrap().to_string(), "root(#,#)");
        assert_eq!(w[1].as_ref().unwrap().to_string(), "#");
        assert_eq!(w[3].as_ref().unwrap().to_string(), "#");
    }

    #[test]
    fn language_classes_separate_and_merge() {
        let alpha = RankedAlphabet::from_pairs([("a", 2), ("b", 2), ("#", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let pa1 = b.add_state("alist1");
        let pa2 = b.add_state("alist2");
        let pb = b.add_state("blist");
        let ph = b.add_state("nil");
        for (q, sym) in [(pa1, "a"), (pa2, "a"), (pb, "b")] {
            b.add_transition(q, Symbol::new(sym), vec![ph, q]).unwrap();
            b.add_transition(q, Symbol::new("#"), vec![]).unwrap();
        }
        b.add_transition(ph, Symbol::new("#"), vec![]).unwrap();
        let a = b.build().unwrap();
        let classes = language_classes(&a);
        assert_eq!(classes[pa1.index()], classes[pa2.index()]); // same language
        assert_ne!(classes[pa1.index()], classes[pb.index()]); // a-lists vs b-lists
        assert_ne!(classes[pa1.index()], classes[ph.index()]);
        assert!(same_language(&a, pa1, pa2));
        assert!(!same_language(&a, pa1, pb));
    }

    #[test]
    fn dead_transitions_do_not_split_classes() {
        let alpha = RankedAlphabet::from_pairs([("f", 1), ("a", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let q1 = b.add_state("q1");
        let q2 = b.add_state("q2");
        let dead = b.add_state("dead");
        b.add_transition(q1, Symbol::new("a"), vec![]).unwrap();
        b.add_transition(q2, Symbol::new("a"), vec![]).unwrap();
        // q2 also has a transition into a dead state: contributes nothing.
        b.add_transition(q2, Symbol::new("f"), vec![dead]).unwrap();
        let a = b.build().unwrap();
        assert!(same_language(&a, q1, q2));
    }

    #[test]
    fn enumerate_language_in_size_order() {
        let a = flip_domain();
        let trees = enumerate_language(&a, a.initial(), 10, 20);
        assert_eq!(trees[0].to_string(), "root(#,#)");
        for w in trees.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
        for t in &trees {
            assert!(a.accepts(t), "enumerated tree not in language: {t}");
        }
        // the two size-5 trees: one a, or one b (smaller first child first)
        let size5: Vec<String> = trees
            .iter()
            .filter(|t| t.size() == 5)
            .map(|t| t.to_string())
            .collect();
        assert_eq!(size5, vec!["root(#,b(#,#))", "root(a(#,#),#)"]);
    }

    #[test]
    fn residual_language_equality_via_classes() {
        let a = flip_domain();
        let classes = language_classes(&a);
        let u_alist = a.residual(&FPath::parse_pairs(&[("root", 1)])).unwrap();
        let u_blist = a.residual(&FPath::parse_pairs(&[("root", 2)])).unwrap();
        let deeper = a
            .residual(&FPath::parse_pairs(&[("root", 1), ("a", 2)]))
            .unwrap();
        assert_eq!(classes[u_alist.index()], classes[deeper.index()]);
        assert_ne!(classes[u_alist.index()], classes[u_blist.index()]);
    }
}
