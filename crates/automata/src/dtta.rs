//! Deterministic top-down tree automata (DTTA).
//!
//! A DTTA is defined in the paper as a dtop realizing a partial identity:
//! every rule has the shape `q(f(x₁,…,x_k)) → f(⟨q₁,x₁⟩,…,⟨q_k,x_k⟩)`.
//! Here we store them directly as a transition function
//! `δ : Q × F ⇀ Q^rank(f)` with one initial state. Tree languages accepted
//! by DTTAs are exactly the path-closed regular tree languages (Section 2);
//! domains of dtops are path-closed (Proposition 2), which is why DTTAs are
//! the domain-inspection device used throughout the learning algorithm.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use xtt_trees::{FPath, RankedAlphabet, Symbol, Tree};

/// A state of a [`Dtta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub u32);

impl StateId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A deterministic top-down tree automaton.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dtta {
    alphabet: RankedAlphabet,
    state_names: Vec<String>,
    initial: StateId,
    /// `δ(q, f) = (q₁,…,q_k)`; absence means the transition is undefined.
    delta: HashMap<(StateId, Symbol), Vec<StateId>>,
}

/// Errors raised when assembling an ill-formed automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DttaError {
    UnknownSymbol(Symbol),
    RankMismatch {
        symbol: Symbol,
        expected: usize,
        got: usize,
    },
    NoStates,
}

impl fmt::Display for DttaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DttaError::UnknownSymbol(s) => write!(f, "symbol {s} is not in the alphabet"),
            DttaError::RankMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "transition on {symbol} has {got} successor states, rank is {expected}"
            ),
            DttaError::NoStates => write!(f, "automaton must have at least one state"),
        }
    }
}

impl std::error::Error for DttaError {}

/// Incremental construction of a [`Dtta`].
#[derive(Clone, Debug)]
pub struct DttaBuilder {
    alphabet: RankedAlphabet,
    state_names: Vec<String>,
    initial: Option<StateId>,
    delta: HashMap<(StateId, Symbol), Vec<StateId>>,
}

impl DttaBuilder {
    pub fn new(alphabet: RankedAlphabet) -> Self {
        DttaBuilder {
            alphabet,
            state_names: Vec::new(),
            initial: None,
            delta: HashMap::new(),
        }
    }

    /// Adds a fresh state. The first state added becomes the initial state
    /// unless [`set_initial`](Self::set_initial) is called.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        let id = StateId(u32::try_from(self.state_names.len()).expect("too many states"));
        self.state_names.push(name.into());
        if self.initial.is_none() {
            self.initial = Some(id);
        }
        id
    }

    pub fn set_initial(&mut self, q: StateId) {
        self.initial = Some(q);
    }

    /// Defines `δ(q, f) = children`. Overwrites any previous definition
    /// (the automaton is deterministic by construction).
    pub fn add_transition(
        &mut self,
        q: StateId,
        f: Symbol,
        children: Vec<StateId>,
    ) -> Result<(), DttaError> {
        let rank = self.alphabet.rank(f).ok_or(DttaError::UnknownSymbol(f))?;
        if rank != children.len() {
            return Err(DttaError::RankMismatch {
                symbol: f,
                expected: rank,
                got: children.len(),
            });
        }
        self.delta.insert((q, f), children);
        Ok(())
    }

    pub fn build(self) -> Result<Dtta, DttaError> {
        let initial = self.initial.ok_or(DttaError::NoStates)?;
        Ok(Dtta {
            alphabet: self.alphabet,
            state_names: self.state_names,
            initial,
            delta: self.delta,
        })
    }
}

impl Dtta {
    /// The universal automaton accepting all of `T_F` (a single state with a
    /// transition for every symbol).
    pub fn universal(alphabet: RankedAlphabet) -> Dtta {
        let mut b = DttaBuilder::new(alphabet.clone());
        let q = b.add_state("any");
        for &f in alphabet.symbols() {
            let rank = alphabet.rank(f).unwrap();
            b.add_transition(q, f, vec![q; rank]).unwrap();
        }
        b.build().unwrap()
    }

    pub fn alphabet(&self) -> &RankedAlphabet {
        &self.alphabet
    }

    pub fn initial(&self) -> StateId {
        self.initial
    }

    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    pub fn state_name(&self, q: StateId) -> &str {
        &self.state_names[q.index()]
    }

    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_names.len() as u32).map(StateId)
    }

    /// `δ(q, f)`, if defined.
    pub fn transition(&self, q: StateId, f: Symbol) -> Option<&[StateId]> {
        self.delta.get(&(q, f)).map(Vec::as_slice)
    }

    /// All transitions, in deterministic (state, symbol-declaration) order.
    pub fn transitions(&self) -> Vec<(StateId, Symbol, &[StateId])> {
        let mut out: Vec<_> = self
            .delta
            .iter()
            .map(|(&(q, f), ch)| (q, f, ch.as_slice()))
            .collect();
        out.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| self.alphabet.cmp_symbols(a.1, b.1))
        });
        out
    }

    /// Number of defined transitions.
    pub fn transition_count(&self) -> usize {
        self.delta.len()
    }

    /// True if `s ∈ L(q)`.
    pub fn accepts_from(&self, q: StateId, s: &Tree) -> bool {
        let Some(children) = self.transition(q, s.symbol()) else {
            return false;
        };
        debug_assert_eq!(children.len(), s.arity());
        children
            .iter()
            .zip(s.children())
            .all(|(&c, t)| self.accepts_from(c, t))
    }

    /// True if `s ∈ L(A)` (from the initial state).
    pub fn accepts(&self, s: &Tree) -> bool {
        self.accepts_from(self.initial, s)
    }

    /// The state reached by following the labeled path `u` from `q`, i.e.
    /// the state whose language is the residual `u⁻¹(L(q))`. `None` if some
    /// transition along the way is undefined (the residual is empty then).
    pub fn residual_from(&self, q: StateId, u: &FPath) -> Option<StateId> {
        let mut cur = q;
        for step in u.steps() {
            let children = self.transition(cur, step.symbol)?;
            cur = *children.get(step.child as usize)?;
        }
        Some(cur)
    }

    /// The state at path `u` from the initial state.
    pub fn residual(&self, u: &FPath) -> Option<StateId> {
        self.residual_from(self.initial, u)
    }
}

impl fmt::Display for Dtta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dtta (initial {})", self.state_name(self.initial))?;
        for (q, sym, children) in self.transitions() {
            write!(f, "  {}({}(", self.state_name(q), sym)?;
            for i in 0..children.len() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "x{}", i + 1)?;
            }
            write!(f, ")) -> {}(", sym)?;
            for (i, c) in children.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "<{},x{}>", self.state_name(*c), i + 1)?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_trees::parse_tree;

    /// The domain of τflip: root(a-list, b-list) in fc/ns encoding.
    pub(crate) fn flip_domain() -> Dtta {
        let alpha = RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
        let mut b = DttaBuilder::new(alpha.clone());
        let p0 = b.add_state("start");
        let pa = b.add_state("alist");
        let pb = b.add_state("blist");
        let ph = b.add_state("nil");
        let root = Symbol::new("root");
        let a = Symbol::new("a");
        let bb = Symbol::new("b");
        let h = Symbol::new("#");
        b.add_transition(p0, root, vec![pa, pb]).unwrap();
        b.add_transition(pa, a, vec![ph, pa]).unwrap();
        b.add_transition(pa, h, vec![]).unwrap();
        b.add_transition(pb, bb, vec![ph, pb]).unwrap();
        b.add_transition(pb, h, vec![]).unwrap();
        b.add_transition(ph, h, vec![]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accepts_flip_domain() {
        let a = flip_domain();
        assert!(a.accepts(&parse_tree("root(#,#)").unwrap()));
        assert!(a.accepts(&parse_tree("root(a(#,a(#,#)),b(#,#))").unwrap()));
        assert!(!a.accepts(&parse_tree("root(b(#,#),a(#,#))").unwrap()));
        assert!(!a.accepts(&parse_tree("root(a(a(#,#),#),#)").unwrap()));
        assert!(!a.accepts(&parse_tree("#").unwrap()));
    }

    #[test]
    fn universal_accepts_everything() {
        let alpha = RankedAlphabet::from_pairs([("f", 2), ("a", 0)]);
        let u = Dtta::universal(alpha);
        assert!(u.accepts(&parse_tree("f(f(a,a),a)").unwrap()));
        assert!(u.accepts(&parse_tree("a").unwrap()));
    }

    #[test]
    fn residual_follows_paths() {
        let a = flip_domain();
        let u = FPath::parse_pairs(&[("root", 2), ("b", 2)]);
        let q = a.residual(&u).unwrap();
        assert_eq!(a.state_name(q), "blist");
        let dead = FPath::parse_pairs(&[("a", 1)]);
        assert!(a.residual(&dead).is_none());
    }

    #[test]
    fn builder_validates_ranks() {
        let alpha = RankedAlphabet::from_pairs([("f", 2), ("a", 0)]);
        let mut b = DttaBuilder::new(alpha);
        let q = b.add_state("q");
        let err = b.add_transition(q, Symbol::new("f"), vec![q]).unwrap_err();
        assert!(matches!(err, DttaError::RankMismatch { .. }));
        let err2 = b.add_transition(q, Symbol::new("zzz"), vec![]).unwrap_err();
        assert!(matches!(err2, DttaError::UnknownSymbol(_)));
    }

    #[test]
    fn display_lists_transitions() {
        let a = flip_domain();
        let text = a.to_string();
        assert!(text.contains("start(root(x1,x2)) -> root(<alist,x1>,<blist,x2>)"));
    }
}
