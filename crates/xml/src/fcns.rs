//! The classical first-child/next-sibling encoding of unranked trees.
//!
//! Every label becomes a binary symbol: `fcns(f(w), rest) =
//! f(fcns(w), fcns(rest))` with `#` for the empty forest. The paper uses
//! this encoding to show the *limits* of ranked dtops on XML: a dtop
//! cannot exchange a node with a descendant, so `xmlflip` (swap the block
//! of `a`-children with the block of `b`-children) is not realizable over
//! fc/ns encodings, while it is over the DTD-based encoding of
//! [`crate::encode`]. Experiment E3 measures exactly this gap.

use xtt_trees::{RankedAlphabet, Symbol, Tree};

use crate::encode::EncodeError;
use crate::utree::UTree;

/// The symbol used for text nodes under fc/ns (text has no children, so
/// its first-child slot is always `#`).
pub const PCDATA: &str = "pcdata";

/// Builds the fc/ns ranked alphabet for the given element labels: every
/// label (and `pcdata`) has rank 2; `#` has rank 0.
pub fn fcns_alphabet(labels: &[&str]) -> RankedAlphabet {
    let mut alpha = RankedAlphabet::new();
    for l in labels {
        alpha.add_named(l, 2);
    }
    alpha.add_named(PCDATA, 2);
    alpha.add_named("#", 0);
    alpha
}

/// Encodes a document.
pub fn fcns_encode(doc: &UTree) -> Tree {
    fcns_forest(std::slice::from_ref(doc))
}

fn fcns_forest(forest: &[UTree]) -> Tree {
    match forest.split_first() {
        None => Tree::leaf_named("#"),
        Some((first, rest)) => {
            let (label, children) = match first {
                UTree::Text(_) => (Symbol::new(PCDATA), &[][..]),
                UTree::Elem { label, children } => (Symbol::new(label), children.as_slice()),
            };
            Tree::new(label, vec![fcns_forest(children), fcns_forest(rest)])
        }
    }
}

/// Decodes an fc/ns encoding. Text values are lost (all text decodes to a
/// `pcdata` text node), matching the paper's abstraction.
pub fn fcns_decode(t: &Tree) -> Result<UTree, EncodeError> {
    let mut forest = fcns_decode_forest(t)?;
    if forest.len() != 1 {
        return Err(EncodeError::Malformed(format!(
            "top level decodes to {} trees, expected 1",
            forest.len()
        )));
    }
    Ok(forest.remove(0))
}

fn fcns_decode_forest(t: &Tree) -> Result<Vec<UTree>, EncodeError> {
    if t.symbol().name() == "#" {
        if !t.is_leaf() {
            return Err(EncodeError::Malformed("# with children".into()));
        }
        return Ok(Vec::new());
    }
    if t.arity() != 2 {
        return Err(EncodeError::Malformed(format!(
            "fc/ns node {} must be binary",
            t.symbol()
        )));
    }
    let children = fcns_decode_forest(t.child(0).unwrap())?;
    let mut rest = fcns_decode_forest(t.child(1).unwrap())?;
    let head = if t.symbol().name() == PCDATA {
        if !children.is_empty() {
            return Err(EncodeError::Malformed("text node with children".into()));
        }
        UTree::text(PCDATA)
    } else {
        UTree::Elem {
            label: t.symbol().name().to_owned(),
            children,
        }
    };
    let mut out = vec![head];
    out.append(&mut rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmlparse::parse_xml;

    #[test]
    fn encodes_sibling_lists() {
        let doc = parse_xml("<root><a/><a/><b/></root>").unwrap();
        let t = fcns_encode(&doc);
        assert_eq!(t.to_string(), "root(a(#,a(#,b(#,#))),#)");
    }

    #[test]
    fn roundtrip_without_text() {
        for doc_text in [
            "<root/>",
            "<root><a/><b/><a/></root>",
            "<x><y><z/></y><y/></x>",
        ] {
            let doc = parse_xml(doc_text).unwrap();
            assert_eq!(fcns_decode(&fcns_encode(&doc)).unwrap(), doc, "{doc_text}");
        }
    }

    #[test]
    fn text_nodes_become_pcdata() {
        let doc = parse_xml("<t>hello</t>").unwrap();
        let t = fcns_encode(&doc);
        assert_eq!(t.to_string(), "t(pcdata(#,#),#)");
        let back = fcns_decode(&t).unwrap();
        assert_eq!(back.to_string(), "t(\"pcdata\")");
    }

    #[test]
    fn malformed_encodings_rejected() {
        let bad = xtt_trees::parse_tree("#(a)").unwrap();
        assert!(fcns_decode(&bad).is_err());
        let bad2 = xtt_trees::parse_tree("a(#)").unwrap();
        assert!(fcns_decode(&bad2).is_err());
    }

    #[test]
    fn alphabet_is_uniformly_binary() {
        let alpha = fcns_alphabet(&["root", "a", "b"]);
        assert_eq!(alpha.rank(Symbol::new("a")), Some(2));
        assert_eq!(alpha.rank(Symbol::new("#")), Some(0));
        assert_eq!(alpha.max_rank(), 2);
    }
}
