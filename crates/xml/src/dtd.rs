//! DTDs: element declarations with regular-expression content models
//! (Section 10).
//!
//! A DTD over labels `F` has a start symbol and maps each element to a
//! regular expression over `F` (plus `#PCDATA` and `EMPTY`). Only
//! *1-unambiguous* content models are permitted in DTDs; this module
//! validates a standard deterministic subset (pairwise-disjoint first sets
//! in alternations, no iteration of nullable expressions, first/follow
//! disjointness around iterations) that covers every DTD in the paper and
//! makes the unique parse computable by a greedy LL(1)-style walk — which
//! is exactly what the encoding of [`crate::encode`] relies on.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

/// A content-model regular expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regex {
    /// Reference to an element name.
    Elem(String),
    /// `#PCDATA` — a text node.
    PcData,
    /// `R*`
    Star(Box<Regex>),
    /// `R+`
    Plus(Box<Regex>),
    /// `R?`
    Opt(Box<Regex>),
    /// `(R₁|…|Rₙ)`
    Alt(Vec<Regex>),
    /// `(R₁,…,Rₙ)`
    Seq(Vec<Regex>),
}

/// What an element may contain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Content {
    /// `EMPTY` — no children (the element encodes as a rank-0 symbol).
    Empty,
    /// A content model.
    Model(Regex),
}

/// A document type definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dtd {
    root: String,
    /// Element name → content, in declaration order.
    elements: Vec<(String, Content)>,
}

/// A token in a child sequence: an element label or a text node.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tok {
    Elem(String),
    Text,
}

/// DTD syntax or well-formedness errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    Parse { offset: usize, message: String },
    UnknownElement(String),
    DuplicateElement(String),
    NotDeterministic(String),
    NoElements,
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::Parse { offset, message } => {
                write!(f, "DTD syntax error at byte {offset}: {message}")
            }
            DtdError::UnknownElement(n) => write!(f, "content model references undeclared <{n}>"),
            DtdError::DuplicateElement(n) => write!(f, "element <{n}> declared twice"),
            DtdError::NotDeterministic(m) => {
                write!(f, "content model is not 1-unambiguous: {m}")
            }
            DtdError::NoElements => write!(f, "DTD declares no elements"),
        }
    }
}

impl std::error::Error for DtdError {}

impl Regex {
    /// Renders the expression in the paper's notation — this rendering is
    /// the *symbol name* the encoding uses for the node.
    pub fn render(&self) -> String {
        match self {
            Regex::Elem(n) => n.clone(),
            Regex::PcData => "#PCDATA".to_owned(),
            Regex::Star(r) => format!("{}*", r.render_atom()),
            Regex::Plus(r) => format!("{}+", r.render_atom()),
            Regex::Opt(r) => format!("{}?", r.render_atom()),
            Regex::Alt(rs) => format!(
                "({})",
                rs.iter().map(Regex::render).collect::<Vec<_>>().join("|")
            ),
            Regex::Seq(rs) => format!(
                "({})",
                rs.iter().map(Regex::render).collect::<Vec<_>>().join(",")
            ),
        }
    }

    fn render_atom(&self) -> String {
        match self {
            Regex::Elem(_) | Regex::PcData | Regex::Alt(_) | Regex::Seq(_) => self.render(),
            _ => format!("({})", self.render()),
        }
    }

    /// Can the expression match the empty sequence?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Elem(_) | Regex::PcData | Regex::Plus(_) => false,
            Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Alt(rs) => rs.iter().any(Regex::nullable),
            Regex::Seq(rs) => rs.iter().all(Regex::nullable),
        }
    }

    /// First set: tokens that can start a match.
    pub fn first(&self) -> BTreeSet<Tok> {
        match self {
            Regex::Elem(n) => BTreeSet::from([Tok::Elem(n.clone())]),
            Regex::PcData => BTreeSet::from([Tok::Text]),
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.first(),
            Regex::Alt(rs) => rs.iter().flat_map(Regex::first).collect(),
            Regex::Seq(rs) => {
                let mut out = BTreeSet::new();
                for r in rs {
                    out.extend(r.first());
                    if !r.nullable() {
                        break;
                    }
                }
                out
            }
        }
    }

    /// Pre-order traversal of all subexpressions (self first).
    pub fn subexpressions(&self) -> Vec<&Regex> {
        let mut out = vec![self];
        match self {
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => out.extend(r.subexpressions()),
            Regex::Alt(rs) | Regex::Seq(rs) => {
                for r in rs {
                    out.extend(r.subexpressions());
                }
            }
            _ => {}
        }
        out
    }

    /// Checks the deterministic (1-unambiguous) conditions given the set
    /// of tokens that may follow this occurrence.
    fn validate(&self, follow: &BTreeSet<Tok>) -> Result<(), DtdError> {
        match self {
            Regex::Elem(_) | Regex::PcData => Ok(()),
            Regex::Star(r) | Regex::Plus(r) => {
                if r.nullable() {
                    return Err(DtdError::NotDeterministic(format!(
                        "iterated expression {} is nullable",
                        r.render()
                    )));
                }
                if !r.first().is_disjoint(follow) {
                    return Err(DtdError::NotDeterministic(format!(
                        "cannot decide whether to continue {}: first/follow overlap",
                        self.render()
                    )));
                }
                // inside the loop, the iterated part may be followed by
                // its own first set (next iteration) or by `follow`
                let mut inner_follow = r.first();
                inner_follow.extend(follow.iter().cloned());
                r.validate(&inner_follow)
            }
            Regex::Opt(r) => {
                if r.nullable() {
                    return Err(DtdError::NotDeterministic(format!(
                        "optional expression {} is itself nullable",
                        r.render()
                    )));
                }
                if !r.first().is_disjoint(follow) {
                    return Err(DtdError::NotDeterministic(format!(
                        "cannot decide whether {} is present: first/follow overlap",
                        self.render()
                    )));
                }
                r.validate(follow)
            }
            Regex::Alt(rs) => {
                let mut seen: BTreeSet<Tok> = BTreeSet::new();
                let mut nullable_branches = 0;
                for r in rs {
                    let f = r.first();
                    if !f.is_disjoint(&seen) {
                        return Err(DtdError::NotDeterministic(format!(
                            "alternation branches of {} share first tokens",
                            self.render()
                        )));
                    }
                    seen.extend(f);
                    if r.nullable() {
                        nullable_branches += 1;
                    }
                    r.validate(follow)?;
                }
                if nullable_branches > 1 {
                    return Err(DtdError::NotDeterministic(format!(
                        "alternation {} has several nullable branches",
                        self.render()
                    )));
                }
                Ok(())
            }
            Regex::Seq(rs) => {
                for (i, r) in rs.iter().enumerate() {
                    // follow of part i = first of the nullable-prefix of the
                    // remainder, plus `follow` if the whole remainder is
                    // nullable.
                    let mut part_follow = BTreeSet::new();
                    let mut rest_nullable = true;
                    for r2 in &rs[i + 1..] {
                        part_follow.extend(r2.first());
                        if !r2.nullable() {
                            rest_nullable = false;
                            break;
                        }
                    }
                    if rest_nullable {
                        part_follow.extend(follow.iter().cloned());
                    }
                    if r.nullable() && !r.first().is_disjoint(&part_follow) {
                        return Err(DtdError::NotDeterministic(format!(
                            "cannot decide whether {} matches inside {}",
                            r.render(),
                            self.render()
                        )));
                    }
                    r.validate(&part_follow)?;
                }
                Ok(())
            }
        }
    }
}

impl Dtd {
    /// Assembles and validates a DTD. The first declared element is the
    /// start symbol.
    pub fn new(elements: Vec<(String, Content)>) -> Result<Dtd, DtdError> {
        let root = elements
            .first()
            .map(|(n, _)| n.clone())
            .ok_or(DtdError::NoElements)?;
        let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
        for (name, _) in &elements {
            if seen.insert(name, ()).is_some() {
                return Err(DtdError::DuplicateElement(name.clone()));
            }
        }
        let dtd = Dtd { root, elements };
        // referenced elements must be declared, models must be deterministic
        for (_, content) in &dtd.elements {
            if let Content::Model(r) = content {
                for sub in r.subexpressions() {
                    if let Regex::Elem(n) = sub {
                        if dtd.content(n).is_none() {
                            return Err(DtdError::UnknownElement(n.clone()));
                        }
                    }
                }
                r.validate(&BTreeSet::new())?;
            }
        }
        Ok(dtd)
    }

    /// Parses W3C `<!ELEMENT …>` declarations.
    ///
    /// ```text
    /// <!ELEMENT root (a*,b*) >
    /// <!ELEMENT a EMPTY >
    /// <!ELEMENT b EMPTY >
    /// ```
    pub fn parse(input: &str) -> Result<Dtd, DtdError> {
        let mut p = DtdParser {
            input: input.as_bytes(),
            pos: 0,
        };
        let mut elements = Vec::new();
        loop {
            p.skip_ws();
            if p.pos >= p.input.len() {
                break;
            }
            elements.push(p.element_decl()?);
        }
        Dtd::new(elements)
    }

    /// The start symbol.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The content of an element.
    pub fn content(&self, name: &str) -> Option<&Content> {
        self.elements
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
    }

    /// All declarations, in order.
    pub fn elements(&self) -> &[(String, Content)] {
        &self.elements
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, content) in &self.elements {
            match content {
                Content::Empty => writeln!(f, "<!ELEMENT {name} EMPTY >")?,
                Content::Model(Regex::PcData) => writeln!(f, "<!ELEMENT {name} #PCDATA >")?,
                Content::Model(r) => writeln!(f, "<!ELEMENT {name} {} >", r.render())?,
            }
        }
        Ok(())
    }
}

struct DtdParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> DtdParser<'a> {
    fn err(&self, message: impl Into<String>) -> DtdError {
        DtdError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), DtdError> {
        if self.input[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn name(&mut self) -> Result<String, DtdError> {
        let start = self.pos;
        while let Some(&c) = self.input.get(self.pos) {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .to_owned())
    }

    fn element_decl(&mut self) -> Result<(String, Content), DtdError> {
        self.literal("<!ELEMENT")?;
        self.skip_ws();
        let name = self.name()?;
        self.skip_ws();
        let content = if self.input[self.pos..].starts_with(b"EMPTY") {
            self.pos += 5;
            Content::Empty
        } else if self.input[self.pos..].starts_with(b"#PCDATA") {
            self.pos += 7;
            Content::Model(Regex::PcData)
        } else {
            Content::Model(self.regex()?)
        };
        self.skip_ws();
        self.literal(">")?;
        Ok((name, content))
    }

    /// regex := atom postfix*  — at top level also (a|b) / (a,b) groups.
    fn regex(&mut self) -> Result<Regex, DtdError> {
        self.skip_ws();
        let mut r = self.atom()?;
        loop {
            match self.input.get(self.pos) {
                Some(b'*') => {
                    self.pos += 1;
                    r = Regex::Star(Box::new(r));
                }
                Some(b'+') => {
                    self.pos += 1;
                    r = Regex::Plus(Box::new(r));
                }
                Some(b'?') => {
                    self.pos += 1;
                    r = Regex::Opt(Box::new(r));
                }
                _ => return Ok(r),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, DtdError> {
        self.skip_ws();
        match self.input.get(self.pos) {
            Some(b'(') => {
                self.pos += 1;
                let first = self.regex()?;
                self.skip_ws();
                match self.input.get(self.pos) {
                    Some(b')') => {
                        self.pos += 1;
                        Ok(first)
                    }
                    Some(&sep @ (b',' | b'|')) => {
                        let mut parts = vec![first];
                        while self.input.get(self.pos) == Some(&sep) {
                            self.pos += 1;
                            parts.push(self.regex()?);
                            self.skip_ws();
                        }
                        if self.input.get(self.pos) != Some(&b')') {
                            return Err(self.err("expected ')'"));
                        }
                        self.pos += 1;
                        Ok(if sep == b',' {
                            Regex::Seq(parts)
                        } else {
                            Regex::Alt(parts)
                        })
                    }
                    _ => Err(self.err("expected ')', ',' or '|'")),
                }
            }
            Some(b'#') => {
                self.literal("#PCDATA")?;
                Ok(Regex::PcData)
            }
            _ => Ok(Regex::Elem(self.name()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The xmlflip input DTD of the paper's introduction.
    pub(crate) fn flip_dtd() -> Dtd {
        Dtd::parse("<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >\n").unwrap()
    }

    #[test]
    fn parses_the_paper_dtds() {
        let d = flip_dtd();
        assert_eq!(d.root(), "root");
        assert_eq!(d.content("a"), Some(&Content::Empty));
        let Content::Model(r) = d.content("root").unwrap() else {
            panic!("root has a model");
        };
        assert_eq!(r.render(), "(a*,b*)");
    }

    #[test]
    fn parses_the_library_dtd() {
        let d = Dtd::parse(
            "<!ELEMENT LIBRARY (BOOK*) >\n\
             <!ELEMENT BOOK ((AUTHOR, TITLE, YEAR?) | TITLE) >\n\
             <!ELEMENT AUTHOR #PCDATA >\n\
             <!ELEMENT TITLE #PCDATA >\n\
             <!ELEMENT YEAR #PCDATA >",
        )
        .unwrap();
        let Content::Model(r) = d.content("BOOK").unwrap() else {
            panic!()
        };
        assert_eq!(r.render(), "((AUTHOR,TITLE,YEAR?)|TITLE)");
        assert_eq!(d.content("YEAR"), Some(&Content::Model(Regex::PcData)));
    }

    #[test]
    fn first_and_nullable() {
        let d = flip_dtd();
        let Content::Model(r) = d.content("root").unwrap() else {
            panic!()
        };
        assert!(r.nullable());
        let first = r.first();
        assert!(first.contains(&Tok::Elem("a".into())));
        assert!(first.contains(&Tok::Elem("b".into())));
    }

    #[test]
    fn rejects_undeclared_references() {
        let err = Dtd::parse("<!ELEMENT root (zzz) >").unwrap_err();
        assert!(matches!(err, DtdError::UnknownElement(_)));
    }

    #[test]
    fn rejects_nondeterministic_models() {
        // (a*, a) is the classic non-1-unambiguous example
        let err = Dtd::parse("<!ELEMENT root (a*,a) >\n<!ELEMENT a EMPTY >").unwrap_err();
        assert!(matches!(err, DtdError::NotDeterministic(_)), "{err}");
        // (a|a?) shares first tokens
        let err2 = Dtd::parse("<!ELEMENT root (a|(a?)) >\n<!ELEMENT a EMPTY >").unwrap_err();
        assert!(matches!(err2, DtdError::NotDeterministic(_)), "{err2}");
        // (a*)* iterates a nullable
        let err3 = Dtd::parse("<!ELEMENT root ((a*))* >\n<!ELEMENT a EMPTY >").unwrap_err();
        assert!(matches!(err3, DtdError::NotDeterministic(_)), "{err3}");
    }

    #[test]
    fn display_roundtrips() {
        let d = flip_dtd();
        let reparsed = Dtd::parse(&d.to_string()).unwrap();
        assert_eq!(d, reparsed);
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let err = Dtd::parse("<!ELEMENT a EMPTY >\n<!ELEMENT a EMPTY >").unwrap_err();
        assert!(matches!(err, DtdError::DuplicateElement(_)));
    }
}
