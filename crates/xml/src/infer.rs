//! End-to-end inference of XML transformations from document examples —
//! the system the paper's introduction imagines: *"a system that is able
//! to automatically infer an xslt program from a given set of examples"*.
//!
//! Pipeline: both DTDs are compiled into ranked encodings
//! ([`crate::encode::Encoding`]); example documents are encoded; the
//! ranked learner `RPNIdtop` runs against the path-closure domain
//! automaton of the input DTD; the resulting dtop transforms documents by
//! encode → transduce → decode and can be rendered as an XSLT-like
//! stylesheet.

use std::fmt;

use xtt_core::{rpni_dtop, LearnError, Sample};
use xtt_transducer::{eval, Dtop};

use crate::dtd::Dtd;
use crate::encode::{EncodeError, Encoding, PcDataMode};
use crate::utree::UTree;
use crate::xslt::to_xslt;

/// Errors of XML-transformation inference.
#[derive(Debug)]
pub enum XmlLearnError {
    Encode(EncodeError),
    Learn(LearnError),
    NotFunctional,
}

impl fmt::Display for XmlLearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlLearnError::Encode(e) => write!(f, "{e}"),
            XmlLearnError::Learn(e) => write!(f, "{e}"),
            XmlLearnError::NotFunctional => {
                write!(f, "two examples give different outputs for one input")
            }
        }
    }
}

impl std::error::Error for XmlLearnError {}

impl From<EncodeError> for XmlLearnError {
    fn from(e: EncodeError) -> Self {
        XmlLearnError::Encode(e)
    }
}

impl From<LearnError> for XmlLearnError {
    fn from(e: LearnError) -> Self {
        XmlLearnError::Learn(e)
    }
}

/// A learner configured with input and output DTDs.
#[derive(Clone, Debug)]
pub struct XmlLearner {
    enc_in: Encoding,
    enc_out: Encoding,
}

impl XmlLearner {
    /// Compiles the two DTDs. `mode` fixes how pcdata is represented; use
    /// [`PcDataMode::Abstract`] when text content is irrelevant and
    /// [`PcDataMode::Valued`] to let the transformation copy/inspect a
    /// finite universe of text values.
    ///
    /// Uses the **path-closed** encoding style: its encoding language
    /// equals its path closure, so genuine document pairs can form a
    /// characteristic sample (with the paper-style encoding, samples would
    /// have to contain closure trees that correspond to no document).
    pub fn new(input: Dtd, output: Dtd, mode: PcDataMode) -> XmlLearner {
        use crate::encode::EncodingStyle;
        XmlLearner {
            enc_in: Encoding::with_style(input, mode.clone(), EncodingStyle::PathClosed),
            enc_out: Encoding::with_style(output, mode, EncodingStyle::PathClosed),
        }
    }

    pub fn input_encoding(&self) -> &Encoding {
        &self.enc_in
    }

    pub fn output_encoding(&self) -> &Encoding {
        &self.enc_out
    }

    /// Learns a transformation from document pairs. The pairs must form a
    /// characteristic sample (or a superset of one) of a dtop-expressible
    /// transformation over the DTD encodings.
    pub fn learn(&self, pairs: &[(UTree, UTree)]) -> Result<XmlTransformation, XmlLearnError> {
        let mut sample = Sample::new();
        for (input, output) in pairs {
            let s = self.enc_in.encode(input)?;
            let t = self.enc_out.encode(output)?;
            sample.add(s, t).map_err(|_| XmlLearnError::NotFunctional)?;
        }
        let domain = self.enc_in.domain();
        let learned = rpni_dtop(&sample, &domain, self.enc_out.alphabet())?;
        Ok(XmlTransformation {
            enc_in: self.enc_in.clone(),
            enc_out: self.enc_out.clone(),
            dtop: learned.dtop,
        })
    }
}

/// A learned XML transformation: a dtop over the DTD encodings.
#[derive(Clone, Debug)]
pub struct XmlTransformation {
    enc_in: Encoding,
    enc_out: Encoding,
    dtop: Dtop,
}

impl XmlTransformation {
    /// The underlying ranked transducer.
    pub fn dtop(&self) -> &Dtop {
        &self.dtop
    }

    /// Applies the transformation: encode → transduce → decode.
    pub fn apply(&self, doc: &UTree) -> Result<UTree, EncodeError> {
        let encoded = self.enc_in.encode(doc)?;
        let out = eval(&self.dtop, &encoded).ok_or_else(|| {
            EncodeError::NotValid("transducer undefined on the encoded document".into())
        })?;
        self.enc_out.decode(&out)
    }

    /// Renders the transformation as an XSLT-like stylesheet.
    pub fn to_xslt(&self) -> String {
        to_xslt(&self.dtop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmlflip;
    use xtt_core::characteristic_sample;
    use xtt_transducer::canonical_form;

    /// Characteristic document pairs for xmlflip, generated through the
    /// ranked pipeline (path-closed style: every sample tree decodes to a
    /// genuine document).
    fn xmlflip_doc_pairs() -> Vec<(UTree, UTree)> {
        let enc_in = xmlflip::input_encoding_pc();
        let enc_out = xmlflip::output_encoding_pc();
        let domain = enc_in.domain();
        let target = canonical_form(&xmlflip::target_dtop_pc(), Some(&domain)).unwrap();
        let sample = characteristic_sample(&target).unwrap();
        sample
            .pairs()
            .iter()
            .map(|(s, t)| {
                (
                    enc_in.decode(s).expect("path-closed sample tree decodes"),
                    enc_out.decode(t).expect("path-closed output decodes"),
                )
            })
            .collect()
    }

    #[test]
    fn learns_xmlflip_from_document_pairs() {
        let learner = XmlLearner::new(
            xmlflip::input_dtd(),
            xmlflip::output_dtd(),
            PcDataMode::Abstract,
        );
        let pairs = xmlflip_doc_pairs();
        let t = learner
            .learn(&pairs)
            .expect("document pairs are characteristic");
        for (n, m) in [(0usize, 0usize), (1, 1), (4, 2), (0, 5), (3, 0)] {
            let d = xmlflip::document(n, m);
            assert_eq!(t.apply(&d).unwrap(), xmlflip::flip_document(&d));
        }
        let xslt = t.to_xslt();
        assert!(xslt.contains("xsl:template"));
    }

    #[test]
    fn identity_transformation_single_example_dtd() {
        // trivial DTD with a fixed shape: one example suffices
        let dtd = Dtd::parse("<!ELEMENT r (x) >\n<!ELEMENT x EMPTY >").unwrap();
        let learner = XmlLearner::new(dtd.clone(), dtd, PcDataMode::Abstract);
        let doc = UTree::elem("r", vec![UTree::leaf("x")]);
        let t = learner.learn(&[(doc.clone(), doc.clone())]).unwrap();
        assert_eq!(t.apply(&doc).unwrap(), doc);
    }

    #[test]
    fn inconsistent_examples_rejected() {
        let dtd = Dtd::parse("<!ELEMENT r (x?) >\n<!ELEMENT x EMPTY >").unwrap();
        let learner = XmlLearner::new(dtd.clone(), dtd, PcDataMode::Abstract);
        let with = UTree::elem("r", vec![UTree::leaf("x")]);
        let without = UTree::elem("r", vec![]);
        let err = learner
            .learn(&[
                (with.clone(), with.clone()),
                (with.clone(), without.clone()),
            ])
            .unwrap_err();
        assert!(matches!(err, XmlLearnError::NotFunctional));
    }
}
