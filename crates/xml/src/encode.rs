//! The DTD-based ranked encoding of unranked trees (Section 10).
//!
//! The idea: group the children of an element according to the regular
//! subexpressions of its (1-unambiguous) content model, introducing one
//! ranked symbol per subexpression — `R*`/`R+` binary (head, tail), `R?`
//! and alternations unary, concatenations of arity *n*, elements of rank 1
//! (rank 0 when `EMPTY`), `#` closing lists. Over such encodings a dtop
//! can delete, exchange, or copy whole sibling *groups* — transformations
//! like `xmlflip` that are impossible for dtops over the classical
//! first-child/next-sibling encoding.
//!
//! Two deliberate engineering choices, recorded in DESIGN.md:
//!
//! * **pcdata**: the paper maps every text node to one constant `pcdata`.
//!   That abstraction makes every text-extraction state compute a constant
//!   function, which the earliest normal form then erases — so for
//!   learning experiments we also offer [`PcDataMode::Valued`], a finite
//!   universe of text values, each its own rank-0 symbol.
//! * **path closure**: the set of encodings is in general *not*
//!   path-closed (e.g. `a*(#, a*(#,#))` is in the closure but is not an
//!   encoding), while dtop domains must be (Proposition 2). [`Encoding::
//!   domain`] therefore builds the DTTA of the path closure; encoding
//!   always produces genuine encodings, and [`Encoding::decode`] rejects
//!   closure-only junk.

use std::collections::HashMap;
use std::fmt;

use xtt_automata::{Dtta, DttaBuilder, StateId};
use xtt_trees::{RankedAlphabet, Symbol, Tree};

use crate::dtd::{Content, Dtd, Regex, Tok};
use crate::utree::UTree;

/// Which variant of the encoding to use for `R*`.
///
/// * [`EncodingStyle::Paper`] follows Section 10 to the letter: the empty
///   list is `R*(#,#)`. The resulting encoding language is **not**
///   path-closed, so a characteristic sample w.r.t. the path-closure
///   domain must contain closure trees that decode to no document.
/// * [`EncodingStyle::PathClosed`] encodes the empty list as `#` and every
///   nonempty list as cons cells `R*(head, tail)` with a `#` terminator —
///   the same shape the paper itself uses for `R+` and `R?`. The encoding
///   language *is* path-closed, so transformations can be learned from
///   genuine document pairs alone ([`crate::infer`] uses this style).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EncodingStyle {
    #[default]
    Paper,
    PathClosed,
}

/// How text nodes are mapped to ranked symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PcDataMode {
    /// Every text node becomes the constant `pcdata` (the paper's letter;
    /// loses the text).
    Abstract,
    /// Text values come from a finite universe; value `v` becomes the
    /// constant `'v'`. Unknown values are an encoding error.
    Valued(Vec<String>),
}

impl PcDataMode {
    fn symbols(&self) -> Vec<(String, Option<String>)> {
        match self {
            PcDataMode::Abstract => vec![("pcdata".to_owned(), None)],
            PcDataMode::Valued(vals) => vals
                .iter()
                .map(|v| (format!("'{v}'"), Some(v.clone())))
                .collect(),
        }
    }

    /// The ranked symbol name a text value encodes to, if any (`None` =
    /// the value is outside a `Valued` universe).
    pub fn symbol_for(&self, text: &str) -> Option<String> {
        match self {
            PcDataMode::Abstract => Some("pcdata".to_owned()),
            PcDataMode::Valued(vals) => {
                vals.contains(&text.to_owned()).then(|| format!("'{text}'"))
            }
        }
    }

    /// The text value a pcdata symbol name decodes to, if it is one.
    pub fn value_of(&self, symbol_name: &str) -> Option<String> {
        match self {
            PcDataMode::Abstract => (symbol_name == "pcdata").then(|| "pcdata".to_owned()),
            PcDataMode::Valued(vals) => symbol_name
                .strip_prefix('\'')
                .and_then(|s| s.strip_suffix('\''))
                .filter(|v| vals.iter().any(|u| u == v))
                .map(str::to_owned),
        }
    }
}

/// Errors of encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    NotValid(String),
    UnknownText(String),
    Malformed(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NotValid(m) => write!(f, "document does not match the DTD: {m}"),
            EncodeError::UnknownText(t) => {
                write!(f, "text value {t:?} outside the finite pcdata universe")
            }
            EncodeError::Malformed(m) => write!(f, "malformed encoded tree: {m}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// A compiled DTD encoding: ranked alphabet, encoder, decoder, and the
/// path-closure domain automaton.
#[derive(Clone, Debug)]
pub struct Encoding {
    dtd: Dtd,
    mode: PcDataMode,
    style: EncodingStyle,
    alphabet: RankedAlphabet,
    /// render text → the regex it denotes (for decoding and the domain).
    exprs: HashMap<String, Regex>,
    hash_sym: Symbol,
}

impl Encoding {
    /// Compiles the encoding for a validated DTD, in the paper's style.
    pub fn new(dtd: Dtd, mode: PcDataMode) -> Encoding {
        Encoding::with_style(dtd, mode, EncodingStyle::Paper)
    }

    /// Compiles the encoding with an explicit `R*` style.
    pub fn with_style(dtd: Dtd, mode: PcDataMode, style: EncodingStyle) -> Encoding {
        let mut alphabet = RankedAlphabet::new();
        let mut exprs: HashMap<String, Regex> = HashMap::new();
        for (name, content) in dtd.elements() {
            let rank = usize::from(*content != Content::Empty);
            alphabet.add_named(name, rank);
            if let Content::Model(r) = content {
                for sub in r.subexpressions() {
                    match sub {
                        Regex::Elem(_) | Regex::PcData => {}
                        _ => {
                            let text = sub.render();
                            alphabet.add_named(&text, regex_rank(sub));
                            exprs.entry(text).or_insert_with(|| sub.clone());
                        }
                    }
                }
            }
        }
        for (sym, _) in mode.symbols() {
            alphabet.add_named(&sym, 0);
        }
        // `#PCDATA` can occur directly as an element's content model, in
        // which case `key_of` produces an Exact key for it.
        exprs.insert(Regex::PcData.render(), Regex::PcData);
        let hash_sym = alphabet.add_named("#", 0);
        Encoding {
            dtd,
            mode,
            style,
            alphabet,
            exprs,
            hash_sym,
        }
    }

    /// The `R*` style in use.
    pub fn style(&self) -> EncodingStyle {
        self.style
    }

    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The pcdata mode the encoding was compiled with.
    pub fn mode(&self) -> &PcDataMode {
        &self.mode
    }

    /// The `#` (empty list / absent option) symbol of the encoding.
    pub fn hash_symbol(&self) -> Symbol {
        self.hash_sym
    }

    /// The regular subexpression a rendered group-symbol name denotes,
    /// if the name is one of this encoding's group symbols. Element
    /// names and pcdata symbols are *not* group symbols.
    pub fn group_expr(&self, rendered: &str) -> Option<&Regex> {
        self.exprs.get(rendered)
    }

    /// The ranked alphabet of the encoding, in deterministic order
    /// (elements and their subexpressions in declaration order, pcdata
    /// constants, then `#`).
    pub fn alphabet(&self) -> &RankedAlphabet {
        &self.alphabet
    }

    fn hash(&self) -> Tree {
        Tree::leaf(self.hash_sym)
    }

    /// Encodes a DTD-valid document.
    pub fn encode(&self, doc: &UTree) -> Result<Tree, EncodeError> {
        let label = doc
            .label()
            .ok_or_else(|| EncodeError::NotValid("root is a text node".into()))?;
        if label != self.dtd.root() {
            return Err(EncodeError::NotValid(format!(
                "root is <{label}>, expected <{}>",
                self.dtd.root()
            )));
        }
        self.encode_element(doc)
    }

    fn encode_element(&self, e: &UTree) -> Result<Tree, EncodeError> {
        let label = e
            .label()
            .ok_or_else(|| EncodeError::NotValid("expected an element, found text".into()))?;
        let content = self
            .dtd
            .content(label)
            .ok_or_else(|| EncodeError::NotValid(format!("undeclared element <{label}>")))?;
        match content {
            Content::Empty => {
                if !e.children().is_empty() {
                    return Err(EncodeError::NotValid(format!(
                        "<{label}> is EMPTY but has children"
                    )));
                }
                Ok(Tree::leaf(Symbol::new(label)))
            }
            Content::Model(r) => {
                let mut pos = 0usize;
                let inner = self.encode_model(r, e.children(), &mut pos)?;
                if pos != e.children().len() {
                    return Err(EncodeError::NotValid(format!(
                        "<{label}> has trailing children not matched by {}",
                        r.render()
                    )));
                }
                Ok(Tree::new(Symbol::new(label), vec![inner]))
            }
        }
    }

    fn peek(items: &[UTree], pos: usize) -> Option<Tok> {
        items.get(pos).map(|t| match t {
            UTree::Text(_) => Tok::Text,
            UTree::Elem { label, .. } => Tok::Elem(label.clone()),
        })
    }

    fn starts(r: &Regex, tok: &Option<Tok>) -> bool {
        match tok {
            Some(t) => r.first().contains(t),
            None => false,
        }
    }

    fn encode_model(
        &self,
        r: &Regex,
        items: &[UTree],
        pos: &mut usize,
    ) -> Result<Tree, EncodeError> {
        let sym = |r: &Regex| Symbol::new(&r.render());
        match r {
            Regex::Elem(name) => match items.get(*pos) {
                Some(item) if item.label() == Some(name) => {
                    *pos += 1;
                    self.encode_element(item)
                }
                other => Err(EncodeError::NotValid(format!(
                    "expected <{name}>, found {}",
                    other.map_or("end of children".to_owned(), ToString::to_string)
                ))),
            },
            Regex::PcData => match items.get(*pos) {
                Some(UTree::Text(s)) => {
                    *pos += 1;
                    let name = self
                        .mode
                        .symbol_for(s)
                        .ok_or_else(|| EncodeError::UnknownText(s.clone()))?;
                    Ok(Tree::leaf(Symbol::new(&name)))
                }
                other => Err(EncodeError::NotValid(format!(
                    "expected text, found {}",
                    other.map_or("end of children".to_owned(), ToString::to_string)
                ))),
            },
            Regex::Star(r1) => {
                if Self::starts(r1, &Self::peek(items, *pos)) {
                    let head = self.encode_model(r1, items, pos)?;
                    let tail = self.encode_model(r, items, pos)?;
                    Ok(Tree::new(sym(r), vec![head, tail]))
                } else {
                    match self.style {
                        EncodingStyle::Paper => {
                            Ok(Tree::new(sym(r), vec![self.hash(), self.hash()]))
                        }
                        EncodingStyle::PathClosed => Ok(self.hash()),
                    }
                }
            }
            Regex::Plus(r1) => {
                let head = self.encode_model(r1, items, pos)?;
                if Self::starts(r1, &Self::peek(items, *pos)) {
                    let tail = self.encode_model(r, items, pos)?;
                    Ok(Tree::new(sym(r), vec![head, tail]))
                } else {
                    Ok(Tree::new(sym(r), vec![head, self.hash()]))
                }
            }
            Regex::Opt(r1) => {
                if Self::starts(r1, &Self::peek(items, *pos)) {
                    let inner = self.encode_model(r1, items, pos)?;
                    Ok(Tree::new(sym(r), vec![inner]))
                } else {
                    Ok(Tree::new(sym(r), vec![self.hash()]))
                }
            }
            Regex::Alt(branches) => {
                let tok = Self::peek(items, *pos);
                let branch = branches
                    .iter()
                    .find(|b| Self::starts(b, &tok))
                    .or_else(|| branches.iter().find(|b| b.nullable()))
                    .ok_or_else(|| {
                        EncodeError::NotValid(format!(
                            "no branch of {} matches the children",
                            r.render()
                        ))
                    })?;
                let inner = self.encode_model(branch, items, pos)?;
                Ok(Tree::new(sym(r), vec![inner]))
            }
            Regex::Seq(parts) => {
                let mut children = Vec::with_capacity(parts.len());
                for p in parts {
                    children.push(self.encode_model(p, items, pos)?);
                }
                Ok(Tree::new(sym(r), children))
            }
        }
    }

    /// Decodes a genuine encoding back into the document.
    pub fn decode(&self, t: &Tree) -> Result<UTree, EncodeError> {
        self.decode_element(t)
    }

    fn decode_element(&self, t: &Tree) -> Result<UTree, EncodeError> {
        let label = t.symbol().name();
        let content = self
            .dtd
            .content(label)
            .ok_or_else(|| EncodeError::Malformed(format!("unknown element symbol {label}")))?;
        match content {
            Content::Empty => {
                if !t.is_leaf() {
                    return Err(EncodeError::Malformed(format!(
                        "EMPTY element {label} has children"
                    )));
                }
                Ok(UTree::leaf(label))
            }
            Content::Model(r) => {
                let inner = t.child(0).ok_or_else(|| {
                    EncodeError::Malformed(format!("element {label} missing content"))
                })?;
                let mut children = Vec::new();
                self.decode_model(r, inner, &mut children)?;
                Ok(UTree::elem(label, children))
            }
        }
    }

    fn decode_model(&self, r: &Regex, t: &Tree, out: &mut Vec<UTree>) -> Result<(), EncodeError> {
        let expect = |want: &str| -> Result<(), EncodeError> {
            if t.symbol().name() == want {
                Ok(())
            } else {
                Err(EncodeError::Malformed(format!(
                    "expected node {want}, found {}",
                    t.symbol()
                )))
            }
        };
        match r {
            Regex::Elem(name) => {
                expect(name)?;
                out.push(self.decode_element(t)?);
                Ok(())
            }
            Regex::PcData => {
                let name = t.symbol().name();
                match &self.mode {
                    PcDataMode::Abstract => {
                        expect("pcdata")?;
                        out.push(UTree::text("pcdata"));
                    }
                    PcDataMode::Valued(_) => {
                        let stripped = name
                            .strip_prefix('\'')
                            .and_then(|s| s.strip_suffix('\''))
                            .ok_or_else(|| {
                            EncodeError::Malformed(format!("{name} is not a pcdata value"))
                        })?;
                        out.push(UTree::text(stripped));
                    }
                }
                Ok(())
            }
            Regex::Star(r1) => match self.style {
                EncodingStyle::Paper => {
                    expect(&r.render())?;
                    let (c1, c2) = (t.child(0).unwrap(), t.child(1).unwrap());
                    if c1.symbol() == self.hash_sym && c2.symbol() == self.hash_sym {
                        return Ok(());
                    }
                    if c1.symbol() == self.hash_sym || c2.symbol() == self.hash_sym {
                        return Err(EncodeError::Malformed(format!(
                            "{} node mixes # with content (path-closure junk)",
                            r.render()
                        )));
                    }
                    self.decode_model(r1, c1, out)?;
                    self.decode_model(r, c2, out)
                }
                EncodingStyle::PathClosed => {
                    if t.symbol() == self.hash_sym {
                        return Ok(());
                    }
                    expect(&r.render())?;
                    let (c1, c2) = (t.child(0).unwrap(), t.child(1).unwrap());
                    self.decode_model(r1, c1, out)?;
                    self.decode_model(r, c2, out)
                }
            },
            Regex::Plus(r1) => {
                expect(&r.render())?;
                let (c1, c2) = (t.child(0).unwrap(), t.child(1).unwrap());
                self.decode_model(r1, c1, out)?;
                if c2.symbol() == self.hash_sym {
                    return Ok(());
                }
                self.decode_model(r, c2, out)
            }
            Regex::Opt(r1) => {
                expect(&r.render())?;
                let c = t.child(0).unwrap();
                if c.symbol() == self.hash_sym {
                    return Ok(());
                }
                self.decode_model(r1, c, out)
            }
            Regex::Alt(branches) => {
                expect(&r.render())?;
                let c = t.child(0).unwrap();
                for b in branches {
                    if self.branch_roots(b).contains(&c.symbol().name().to_owned()) {
                        return self.decode_model(b, c, out);
                    }
                }
                Err(EncodeError::Malformed(format!(
                    "no branch of {} produces node {}",
                    r.render(),
                    c.symbol()
                )))
            }
            Regex::Seq(parts) => {
                expect(&r.render())?;
                for (p, c) in parts.iter().zip(t.children()) {
                    self.decode_model(p, c, out)?;
                }
                Ok(())
            }
        }
    }

    /// The symbols that can appear at the root of `enc(b, ·)`.
    fn branch_roots(&self, b: &Regex) -> Vec<String> {
        match b {
            Regex::Elem(n) => vec![n.clone()],
            Regex::PcData => self.mode.symbols().into_iter().map(|(s, _)| s).collect(),
            Regex::Star(_) if self.style == EncodingStyle::PathClosed => {
                vec![b.render(), "#".to_owned()]
            }
            _ => vec![b.render()],
        }
    }

    /// Builds the DTTA of the **path closure** of the encoding language —
    /// the domain automaton handed to the learner (see the module docs for
    /// why the closure, not the encoding set itself).
    pub fn domain(&self) -> Dtta {
        let mut b = DttaBuilder::new(self.alphabet.clone());
        let mut states: HashMap<Key, StateId> = HashMap::new();
        let root_key = Key::Elem(self.dtd.root().to_owned());
        let mut queue: Vec<Key> = Vec::new();
        let s0 = b.add_state(root_key.name());
        states.insert(root_key.clone(), s0);
        queue.push(root_key);
        while let Some(key) = queue.pop() {
            let id = states[&key];
            let (entries, optional) = self.entries_of(&key);
            if optional {
                b.add_transition(id, self.hash_sym, Vec::new())
                    .expect("ranks agree");
            }
            for (sym, child_keys) in entries {
                let mut children = Vec::with_capacity(child_keys.len());
                for ck in child_keys {
                    let child = *states.entry(ck.clone()).or_insert_with(|| {
                        queue.push(ck.clone());
                        b.add_state(ck.name())
                    });
                    children.push(child);
                }
                b.add_transition(id, sym, children).expect("ranks agree");
            }
        }
        b.build().expect("root state exists")
    }

    /// Entry transitions of a state key, plus whether `#` is allowed.
    fn entries_of(&self, key: &Key) -> (Vec<(Symbol, Vec<Key>)>, bool) {
        match key {
            Key::Elem(name) => (self.entry_transitions(&Regex::Elem(name.clone())), false),
            Key::Exact(text) => {
                let r = self.exprs[text].clone();
                (self.entry_transitions(&r), false)
            }
            Key::Opt(inner) => {
                let (entries, _) = self.entries_of(inner);
                (entries, true)
            }
            Key::Union(keys) => {
                let mut entries = Vec::new();
                let mut optional = false;
                for k in keys {
                    let (e, o) = self.entries_of(k);
                    entries.extend(e);
                    optional |= o;
                }
                (entries, optional)
            }
        }
    }

    /// The transitions a sequence position offers when the expected
    /// expression is `r` (symbol at the node, child state keys).
    fn entry_transitions(&self, r: &Regex) -> Vec<(Symbol, Vec<Key>)> {
        match r {
            Regex::Elem(name) => {
                let content = self.dtd.content(name).expect("validated DTD");
                let children = match content {
                    Content::Empty => Vec::new(),
                    Content::Model(m) => vec![self.key_of(m)],
                };
                vec![(Symbol::new(name), children)]
            }
            Regex::PcData => self
                .mode
                .symbols()
                .into_iter()
                .map(|(s, _)| (Symbol::new(&s), Vec::new()))
                .collect(),
            Regex::Star(r1) => match self.style {
                EncodingStyle::Paper => vec![(
                    Symbol::new(&r.render()),
                    vec![opt(self.key_of(r1)), opt(Key::Exact(r.render()))],
                )],
                // cons cell: head is a genuine item, tail is a list or #
                EncodingStyle::PathClosed => vec![(
                    Symbol::new(&r.render()),
                    vec![self.key_of(r1), opt(Key::Exact(r.render()))],
                )],
            },
            Regex::Plus(r1) => vec![(
                Symbol::new(&r.render()),
                vec![self.key_of(r1), opt(Key::Exact(r.render()))],
            )],
            Regex::Opt(r1) => vec![(Symbol::new(&r.render()), vec![opt(self.key_of(r1))])],
            Regex::Alt(branches) => {
                let inner: Vec<Key> = branches.iter().map(|b| self.key_of(b)).collect();
                vec![(Symbol::new(&r.render()), vec![Key::union_of(inner)])]
            }
            Regex::Seq(parts) => vec![(
                Symbol::new(&r.render()),
                parts.iter().map(|p| self.key_of(p)).collect(),
            )],
        }
    }

    fn key_of(&self, r: &Regex) -> Key {
        match r {
            Regex::Elem(n) => Key::Elem(n.clone()),
            // in the path-closed style a star position may hold `#`
            Regex::Star(_) if self.style == EncodingStyle::PathClosed => {
                opt(Key::Exact(r.render()))
            }
            _ => Key::Exact(r.render()),
        }
    }
}

fn regex_rank(r: &Regex) -> usize {
    match r {
        Regex::Elem(_) | Regex::PcData => unreachable!("no node symbol"),
        Regex::Star(_) | Regex::Plus(_) => 2,
        Regex::Opt(_) | Regex::Alt(_) => 1,
        Regex::Seq(parts) => parts.len(),
    }
}

fn opt(k: Key) -> Key {
    Key::Opt(Box::new(k))
}

/// A domain-automaton state key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Key {
    /// Accepts encodings of the element.
    Elem(String),
    /// Accepts `enc(R, w)` for the rendered expression.
    Exact(String),
    /// The inner key's language plus `#`.
    Opt(Box<Key>),
    /// Union of the branch languages (below an alternation node); branch
    /// root symbols are pairwise distinct in a deterministic DTD, so the
    /// merged transition table stays deterministic.
    Union(Vec<Key>),
}

impl Key {
    fn name(&self) -> String {
        match self {
            Key::Elem(n) => format!("elem:{n}"),
            Key::Exact(t) => format!("enc:{t}"),
            Key::Opt(k) => format!("{}?", k.name()),
            Key::Union(ks) => {
                let names: Vec<String> = ks.iter().map(Key::name).collect();
                format!("[{}]", names.join("|"))
            }
        }
    }

    fn union_of(inner: Vec<Key>) -> Key {
        if inner.len() == 1 {
            inner.into_iter().next().unwrap()
        } else {
            Key::Union(inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmlparse::parse_xml;

    fn flip_encoding() -> Encoding {
        let dtd = Dtd::parse("<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >")
            .unwrap();
        Encoding::new(dtd, PcDataMode::Abstract)
    }

    #[test]
    fn encodes_the_paper_example() {
        // paper §1: root(a,a,b) ↦
        // root((a*,b*)(a*(a,a*(a,a*(#,#))),b*(b,b*(#,#))))
        let enc = flip_encoding();
        let doc = parse_xml("<root><a/><a/><b/></root>").unwrap();
        let t = enc.encode(&doc).unwrap();
        assert_eq!(
            t.to_string(),
            "root(\"(a*,b*)\"(a*(a,a*(a,a*(#,#))),b*(b,b*(#,#))))"
        );
    }

    #[test]
    fn decode_inverts_encode() {
        let enc = flip_encoding();
        for doc_text in [
            "<root/>",
            "<root><a/></root>",
            "<root><b/><b/></root>",
            "<root><a/><a/><a/><b/></root>",
        ] {
            let doc = parse_xml(doc_text).unwrap();
            let t = enc.encode(&doc).unwrap();
            assert_eq!(enc.decode(&t).unwrap(), doc, "{doc_text}");
        }
    }

    #[test]
    fn invalid_documents_rejected() {
        let enc = flip_encoding();
        // b before a violates (a*,b*)
        let doc = parse_xml("<root><b/><a/></root>").unwrap();
        assert!(enc.encode(&doc).is_err());
        let doc2 = parse_xml("<root><c/></root>").unwrap();
        assert!(enc.encode(&doc2).is_err());
    }

    #[test]
    fn alphabet_ranks_match_paper() {
        let enc = flip_encoding();
        let a = enc.alphabet();
        assert_eq!(a.rank(Symbol::new("root")), Some(1));
        assert_eq!(a.rank(Symbol::new("(a*,b*)")), Some(2));
        assert_eq!(a.rank(Symbol::new("a*")), Some(2));
        assert_eq!(a.rank(Symbol::new("a")), Some(0)); // EMPTY
        assert_eq!(a.rank(Symbol::new("#")), Some(0));
    }

    #[test]
    fn domain_accepts_encodings_and_closure() {
        let enc = flip_encoding();
        let d = enc.domain();
        for n in [(0, 0), (2, 1), (0, 3)] {
            let doc = make_flip_doc(n.0, n.1);
            let t = enc.encode(&doc).unwrap();
            assert!(d.accepts(&t), "{t}");
        }
        // path-closure junk: accepted by the domain, rejected by decode
        let junk = xtt_trees::parse_tree("root(\"(a*,b*)\"(a*(#,a*(a,a*(#,#))),b*(#,#)))").unwrap();
        assert!(d.accepts(&junk));
        assert!(enc.decode(&junk).is_err());
    }

    fn make_flip_doc(n: usize, m: usize) -> UTree {
        let mut children = Vec::new();
        for _ in 0..n {
            children.push(UTree::leaf("a"));
        }
        for _ in 0..m {
            children.push(UTree::leaf("b"));
        }
        UTree::elem("root", children)
    }

    #[test]
    fn valued_pcdata_roundtrip() {
        let dtd = Dtd::parse("<!ELEMENT t #PCDATA >").unwrap();
        let enc = Encoding::new(dtd, PcDataMode::Valued(vec!["x".into(), "y".into()]));
        let doc = parse_xml("<t>x</t>").unwrap();
        let t = enc.encode(&doc).unwrap();
        assert_eq!(t.to_string(), "t('x')");
        assert_eq!(enc.decode(&t).unwrap(), doc);
        let bad = parse_xml("<t>zzz</t>").unwrap();
        assert!(matches!(enc.encode(&bad), Err(EncodeError::UnknownText(_))));
    }

    #[test]
    fn library_dtd_encoding() {
        let dtd = Dtd::parse(
            "<!ELEMENT LIBRARY (BOOK*) >\n\
             <!ELEMENT BOOK ((AUTHOR, TITLE, YEAR?) | TITLE) >\n\
             <!ELEMENT AUTHOR #PCDATA >\n\
             <!ELEMENT TITLE #PCDATA >\n\
             <!ELEMENT YEAR #PCDATA >",
        )
        .unwrap();
        let enc = Encoding::new(dtd, PcDataMode::Abstract);
        let doc = parse_xml(
            "<LIBRARY><BOOK><AUTHOR>a</AUTHOR><TITLE>t</TITLE></BOOK>\
             <BOOK><TITLE>u</TITLE></BOOK></LIBRARY>",
        )
        .unwrap();
        let t = enc.encode(&doc).unwrap();
        // paper: e1 = ((A,T,Y?)|T)((A,T,Y?)(A(P),T(P),Y?(#)))
        let text = t.to_string();
        assert!(
            text.contains("\"((AUTHOR,TITLE,YEAR?)|TITLE)\"(\"(AUTHOR,TITLE,YEAR?)\"(AUTHOR(pcdata),TITLE(pcdata),YEAR?(#))"),
            "{text}"
        );
        // decode loses nothing except text values (Abstract mode)
        let back = enc.decode(&t).unwrap();
        assert_eq!(back.children().len(), 2);
    }
}
