//! # xtt-xml
//!
//! The XML substrate of the workspace — Section 10 of *"A Learning
//! Algorithm for Top-Down XML Transformations"* (PODS 2010):
//!
//! * [`utree::UTree`] — unranked trees, the natural model of XML;
//! * [`xmlparse`] — a minimal hand-rolled XML reader/writer (elements and
//!   text);
//! * [`dtd`] — DTDs with 1-unambiguous (deterministic) content models,
//!   including the W3C `<!ELEMENT …>` syntax;
//! * [`encode`] — the paper's DTD-based ranked encoding: group siblings by
//!   the regular subexpressions of the content model, so that dtops can
//!   swap/copy/delete whole groups; includes the path-closure domain
//!   automaton handed to the learner;
//! * [`fcns`] — the classical first-child/next-sibling encoding, kept as
//!   the baseline that *cannot* express `xmlflip` (experiment E3);
//! * [`xslt`] — rendering learned transducers as XSLT-like stylesheets
//!   (one template per rule, modes = states).

pub mod dtd;
pub mod encode;
pub mod fcns;
pub mod infer;
pub mod utree;
pub mod xmlflip;
pub mod xmlparse;
pub mod xslt;

pub use dtd::{Content, Dtd, DtdError, Regex, Tok};
pub use encode::{EncodeError, Encoding, PcDataMode};
pub use fcns::{fcns_alphabet, fcns_decode, fcns_encode};
pub use infer::{XmlLearnError, XmlLearner, XmlTransformation};
pub use utree::UTree;
pub use xmlparse::{parse_xml, write_xml, write_xml_pretty, XmlError};
pub use xslt::to_xslt;
