//! # xtt-xml
//!
//! The XML substrate of the workspace — Section 10 of *"A Learning
//! Algorithm for Top-Down XML Transformations"* (PODS 2010):
//!
//! * [`utree::UTree`] — unranked trees, the natural model of XML;
//! * [`xmlparse`] — a hand-rolled XML reader/writer: a pull-based
//!   SAX-style event tokenizer ([`xmlparse::XmlEventReader`]) yielding
//!   zero-copy events (names and clean text borrow the input buffer),
//!   with real attribute + namespace-prefix parsing in lenient mode and
//!   the paper's minimal strict mode, plus the tree-building
//!   [`parse_xml`] on top;
//! * [`scan`] — the block-wise (SSE2/SWAR) structural-byte scanners the
//!   tokenizer's hot loop runs on, with scalar reference variants;
//! * [`dtd`] — DTDs with 1-unambiguous (deterministic) content models,
//!   including the W3C `<!ELEMENT …>` syntax;
//! * [`encode`] — the paper's DTD-based ranked encoding: group siblings by
//!   the regular subexpressions of the content model, so that dtops can
//!   swap/copy/delete whole groups; includes the path-closure domain
//!   automaton handed to the learner;
//! * [`fcns`] — the classical first-child/next-sibling encoding, kept as
//!   the baseline that *cannot* express `xmlflip` (experiment E3);
//! * [`xslt`] — rendering learned transducers as XSLT-like stylesheets
//!   (one template per rule, modes = states).

pub mod dtd;
pub mod encode;
pub mod fcns;
pub mod infer;
pub mod scan;
pub mod utree;
pub mod xmlflip;
pub mod xmlparse;
pub mod xslt;

pub use dtd::{Content, Dtd, DtdError, Regex, Tok};
pub use encode::{EncodeError, Encoding, EncodingStyle, PcDataMode};
pub use fcns::{fcns_alphabet, fcns_decode, fcns_encode};
pub use infer::{XmlLearnError, XmlLearner, XmlTransformation};
pub use utree::UTree;
pub use xmlparse::{
    parse_xml, parse_xml_strict, parse_xml_with, split_qname, write_xml, write_xml_pretty,
    xml_events, xml_events_with, Attr, XmlError, XmlEvent, XmlEventReader, XmlOptions,
};
pub use xslt::to_xslt;
