//! The paper's running XML example `xmlflip` (§1 and §10): transform a
//! root with `n` `a`-children followed by `m` `b`-children into a root
//! with the `m` `b`s first.
//!
//! * Over the DTD-based encoding (input DTD `root → (a*,b*)`, output DTD
//!   `root → (b*,a*)`) the transformation is realized by a small dtop
//!   ([`target_dtop`]; the paper reports 12 states and 16 rules — our
//!   minimal canonical transducer is measured in experiment E3).
//! * Over the first-child/next-sibling encoding it is **not** realizable
//!   by any dtop, because the `b`s are descendants of the `a`s and a dtop
//!   cannot exchange a node with a descendant; [`fcns_residual_inputs`]
//!   provides the io-path family whose residuals are pairwise distinct
//!   (unbounded Myhill–Nerode index), which experiment E3 verifies.

use xtt_transducer::{Dtop, DtopBuilder};
use xtt_trees::Tree;

use crate::dtd::Dtd;
use crate::encode::{Encoding, PcDataMode};
use crate::utree::UTree;

/// The input DTD of the paper: `root → (a*,b*)`.
pub fn input_dtd() -> Dtd {
    Dtd::parse("<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >").unwrap()
}

/// The output DTD: `root → (b*,a*)`.
pub fn output_dtd() -> Dtd {
    Dtd::parse("<!ELEMENT root (b*,a*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >").unwrap()
}

/// Compiled input encoding.
pub fn input_encoding() -> Encoding {
    Encoding::new(input_dtd(), PcDataMode::Abstract)
}

/// Compiled output encoding.
pub fn output_encoding() -> Encoding {
    Encoding::new(output_dtd(), PcDataMode::Abstract)
}

/// The unranked document `root(aⁿ, bᵐ)`.
pub fn document(n: usize, m: usize) -> UTree {
    let mut children = Vec::with_capacity(n + m);
    for _ in 0..n {
        children.push(UTree::leaf("a"));
    }
    for _ in 0..m {
        children.push(UTree::leaf("b"));
    }
    UTree::elem("root", children)
}

/// The transformation on unranked documents: `root(aⁿ,bᵐ) ↦ root(bᵐ,aⁿ)`.
pub fn flip_document(doc: &UTree) -> UTree {
    let mut bs: Vec<UTree> = Vec::new();
    let mut as_: Vec<UTree> = Vec::new();
    for c in doc.children() {
        match c.label() {
            Some("a") => as_.push(c.clone()),
            Some("b") => bs.push(c.clone()),
            _ => {}
        }
    }
    bs.extend(as_);
    UTree::elem("root", bs)
}

/// A hand-written dtop realizing `xmlflip` over the DTD encodings — the
/// learning target of experiment E3. It is defined on the whole *path
/// closure* of the input encoding (copy states accept `#` tails).
pub fn target_dtop() -> Dtop {
    let input = input_encoding();
    let output = output_encoding();
    let mut b = DtopBuilder::new(input.alphabet().clone(), output.alphabet().clone());
    for s in ["q1", "q2", "q1g", "q2g", "qbs", "qb", "qas", "qa"] {
        b.add_state(s);
    }
    b.set_axiom_str("root(\"(b*,a*)\"(<q1,x0>,<q2,x0>))")
        .unwrap();
    b.add_rule_str("q1", "root", "<q1g,x1>").unwrap();
    b.add_rule_str("q2", "root", "<q2g,x1>").unwrap();
    b.add_rule_str("q1g", "(a*,b*)", "<qbs,x2>").unwrap();
    b.add_rule_str("q2g", "(a*,b*)", "<qas,x1>").unwrap();
    b.add_rule_str("qbs", "b*", "b*(<qb,x1>,<qbs,x2>)").unwrap();
    b.add_rule_str("qbs", "#", "#").unwrap();
    b.add_rule_str("qb", "b", "b").unwrap();
    b.add_rule_str("qb", "#", "#").unwrap();
    b.add_rule_str("qas", "a*", "a*(<qa,x1>,<qas,x2>)").unwrap();
    b.add_rule_str("qas", "#", "#").unwrap();
    b.add_rule_str("qa", "a", "a").unwrap();
    b.add_rule_str("qa", "#", "#").unwrap();
    b.build().unwrap()
}

/// Input encoding in the path-closed style (see
/// [`crate::encode::EncodingStyle`]): over it, `xmlflip` is learnable from
/// genuine document pairs alone.
pub fn input_encoding_pc() -> Encoding {
    Encoding::with_style(
        input_dtd(),
        PcDataMode::Abstract,
        crate::encode::EncodingStyle::PathClosed,
    )
}

/// Output encoding in the path-closed style.
pub fn output_encoding_pc() -> Encoding {
    Encoding::with_style(
        output_dtd(),
        PcDataMode::Abstract,
        crate::encode::EncodingStyle::PathClosed,
    )
}

/// The `xmlflip` dtop over path-closed encodings (empty lists are `#`).
pub fn target_dtop_pc() -> Dtop {
    let input = input_encoding_pc();
    let output = output_encoding_pc();
    let mut b = DtopBuilder::new(input.alphabet().clone(), output.alphabet().clone());
    for s in ["q1", "q2", "q1g", "q2g", "qbs", "qb", "qas", "qa"] {
        b.add_state(s);
    }
    b.set_axiom_str("root(\"(b*,a*)\"(<q1,x0>,<q2,x0>))")
        .unwrap();
    b.add_rule_str("q1", "root", "<q1g,x1>").unwrap();
    b.add_rule_str("q2", "root", "<q2g,x1>").unwrap();
    b.add_rule_str("q1g", "(a*,b*)", "<qbs,x2>").unwrap();
    b.add_rule_str("q2g", "(a*,b*)", "<qas,x1>").unwrap();
    b.add_rule_str("qbs", "b*", "b*(<qb,x1>,<qbs,x2>)").unwrap();
    b.add_rule_str("qbs", "#", "#").unwrap();
    b.add_rule_str("qb", "b", "b").unwrap();
    b.add_rule_str("qas", "a*", "a*(<qa,x1>,<qas,x2>)").unwrap();
    b.add_rule_str("qas", "#", "#").unwrap();
    b.add_rule_str("qa", "a", "a").unwrap();
    b.build().unwrap()
}

/// fc/ns-encoded inputs for the Myhill–Nerode impossibility argument: for
/// the io-path `u_n = (root,1)·((a,2))ⁿ` of the fc/ns version of
/// `xmlflip`, the residual must "remember" `n` (the `a`s are replayed
/// *after* the `b`s in the output), so all residuals are pairwise
/// distinct. Returns, for each `n < count`, the encoded input with `n` `a`s
/// and `m` `b`s.
pub fn fcns_flip_input(n: usize, m: usize) -> Tree {
    crate::fcns::fcns_encode(&document(n, m))
}

/// The fc/ns-encoded *output* for `n` `a`s and `m` `b`s.
pub fn fcns_flip_output(n: usize, m: usize) -> Tree {
    crate::fcns::fcns_encode(&flip_document(&document(n, m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::eval;

    #[test]
    fn target_realizes_xmlflip_on_encodings() {
        let enc_in = input_encoding();
        let enc_out = output_encoding();
        let m = target_dtop();
        for (n, k) in [(0, 0), (2, 1), (1, 3), (4, 4), (0, 2), (3, 0)] {
            let doc = document(n, k);
            let input = enc_in.encode(&doc).unwrap();
            let expected = enc_out.encode(&flip_document(&doc)).unwrap();
            let got = eval(&m, &input).expect("defined on encodings");
            assert_eq!(got, expected, "n={n}, m={k}");
        }
    }

    #[test]
    fn target_total_on_path_closure() {
        let enc_in = input_encoding();
        let m = target_dtop();
        let domain = enc_in.domain();
        for t in xtt_automata::enumerate_language(&domain, domain.initial(), 300, 25) {
            assert!(eval(&m, &t).is_some(), "undefined on closure tree {t}");
        }
    }

    #[test]
    fn paper_example_encoding_shape() {
        // §1: root(a,a,b) encodes and flips into the displayed trees.
        let enc_in = input_encoding();
        let enc_out = output_encoding();
        let doc = document(2, 1);
        assert_eq!(
            enc_in.encode(&doc).unwrap().to_string(),
            "root(\"(a*,b*)\"(a*(a,a*(a,a*(#,#))),b*(b,b*(#,#))))"
        );
        assert_eq!(
            enc_out.encode(&flip_document(&doc)).unwrap().to_string(),
            "root(\"(b*,a*)\"(b*(b,b*(#,#)),a*(a,a*(a,a*(#,#)))))"
        );
    }

    #[test]
    fn fcns_encoding_nests_bs_below_as() {
        let t = fcns_flip_input(2, 1);
        assert_eq!(t.to_string(), "root(a(#,a(#,b(#,#))),#)");
        let o = fcns_flip_output(2, 1);
        assert_eq!(o.to_string(), "root(b(#,a(#,a(#,#))),#)");
    }
}
