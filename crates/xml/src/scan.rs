//! Block-wise structural-byte scanning — the tokenizer's hot loop.
//!
//! XML tokenization is dominated by "find the next structural byte":
//! `<` ends a text run, `&` starts an entity reference, a quote ends an
//! attribute value, `-`/`]`/`?` anchor comment/CDATA/PI terminators.
//! Instead of a byte-at-a-time `pos += 1` loop, these scanners classify
//! 16-byte blocks (SSE2 via [`core::arch`], baseline on every x86_64) or
//! 8-byte words (a portable SWAR fallback) per iteration. The workspace
//! is offline and dependency-free, so both are hand-rolled — the same
//! discipline as `xtt-netio`'s raw syscall layer.
//!
//! The `*_scalar` variants are the reference implementation: the exact
//! one-byte-per-iteration loop the tokenizer used before the rebuild.
//! They back the differential proptests (SIMD ≡ scalar, event for
//! event) and the scalar baseline of experiment E15 (`BENCH_xml.json`),
//! and they are the build on non-x86_64 targets without a SWAR win.

/// First index `i >= from` with `hay[i] == n`, or `hay.len()`.
#[inline]
pub fn memchr(n: u8, hay: &[u8], from: usize) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        sse2::memchr(n, hay, from)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        swar::memchr(n, hay, from)
    }
}

/// First index `i >= from` with `hay[i] == a || hay[i] == b`, or
/// `hay.len()`.
#[inline]
pub fn memchr2(a: u8, b: u8, hay: &[u8], from: usize) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        sse2::memchr2(a, b, hay, from)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        swar::memchr2(a, b, hay, from)
    }
}

/// Reference scalar scan: the pre-rebuild byte-at-a-time loop.
#[inline]
pub fn memchr_scalar(n: u8, hay: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < hay.len() && hay[i] != n {
        i += 1;
    }
    i
}

/// Reference scalar two-byte scan.
#[inline]
pub fn memchr2_scalar(a: u8, b: u8, hay: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < hay.len() && hay[i] != a && hay[i] != b {
        i += 1;
    }
    i
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    //! SSE2 is part of the x86_64 baseline ABI, so the intrinsics are
    //! unconditionally available — no runtime feature detection needed.
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::{
        __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi8,
    };

    #[inline]
    pub fn memchr(n: u8, hay: &[u8], from: usize) -> usize {
        let mut i = from;
        // SAFETY: every 16-byte load starts at `i` with `i + 16 <=
        // hay.len()`, so it reads entirely inside the slice; `loadu`
        // has no alignment requirement.
        unsafe {
            let needle = _mm_set1_epi8(n as i8);
            while i + 16 <= hay.len() {
                let block = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
                let hits = _mm_movemask_epi8(_mm_cmpeq_epi8(block, needle)) as u32;
                if hits != 0 {
                    return i + hits.trailing_zeros() as usize;
                }
                i += 16;
            }
        }
        super::memchr_scalar(n, hay, i)
    }

    #[inline]
    pub fn memchr2(a: u8, b: u8, hay: &[u8], from: usize) -> usize {
        let mut i = from;
        // SAFETY: as in `memchr` — in-bounds unaligned 16-byte loads.
        unsafe {
            let na = _mm_set1_epi8(a as i8);
            let nb = _mm_set1_epi8(b as i8);
            while i + 16 <= hay.len() {
                let block = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
                let hit_a = _mm_cmpeq_epi8(block, na);
                let hit_b = _mm_cmpeq_epi8(block, nb);
                let hits = _mm_movemask_epi8(_mm_or_si128(hit_a, hit_b)) as u32;
                if hits != 0 {
                    return i + hits.trailing_zeros() as usize;
                }
                i += 16;
            }
        }
        super::memchr2_scalar(a, b, hay, i)
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod swar {
    //! Portable SWAR: detect a zero byte in `word ^ broadcast(needle)`
    //! with the classic `(x - 0x01…01) & !x & 0x80…80` trick, 8 bytes
    //! per iteration, no `unsafe`.

    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;

    #[inline]
    fn broadcast(n: u8) -> u64 {
        u64::from(n) * LO
    }

    /// A nonzero result has bit 7 set in every byte lane of `x` that is
    /// zero (and only spuriously in lanes following one — irrelevant
    /// here because the first hit wins).
    #[inline]
    fn zero_lanes(x: u64) -> u64 {
        x.wrapping_sub(LO) & !x & HI
    }

    /// Index of the first zero byte lane (little-endian lane order,
    /// which `u64::from_le_bytes` guarantees on every host).
    #[inline]
    fn first_lane(hits: u64) -> usize {
        (hits.trailing_zeros() / 8) as usize
    }

    #[inline]
    pub fn memchr(n: u8, hay: &[u8], from: usize) -> usize {
        let needle = broadcast(n);
        let mut i = from;
        while i + 8 <= hay.len() {
            let word = u64::from_le_bytes(hay[i..i + 8].try_into().unwrap());
            let hits = zero_lanes(word ^ needle);
            if hits != 0 {
                return i + first_lane(hits);
            }
            i += 8;
        }
        super::memchr_scalar(n, hay, i)
    }

    #[inline]
    pub fn memchr2(a: u8, b: u8, hay: &[u8], from: usize) -> usize {
        let na = broadcast(a);
        let nb = broadcast(b);
        let mut i = from;
        while i + 8 <= hay.len() {
            let word = u64::from_le_bytes(hay[i..i + 8].try_into().unwrap());
            let hits = zero_lanes(word ^ na) | zero_lanes(word ^ nb);
            if hits != 0 {
                return i + first_lane(hits);
            }
            i += 8;
        }
        super::memchr2_scalar(a, b, hay, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bytes (xorshift) — no rand dep.
    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn block_scan_agrees_with_scalar_everywhere() {
        let hay = noise(301, 0xE15);
        for from in 0..hay.len() + 1 {
            for n in [b'<', b'&', b'"', 0, 255] {
                assert_eq!(memchr(n, &hay, from), memchr_scalar(n, &hay, from));
            }
            assert_eq!(
                memchr2(b'<', b'&', &hay, from),
                memchr2_scalar(b'<', b'&', &hay, from)
            );
        }
    }

    #[test]
    fn finds_hits_at_every_offset_within_a_block() {
        for pos in 0..48 {
            let mut hay = vec![b'x'; 48];
            hay[pos] = b'<';
            assert_eq!(memchr(b'<', &hay, 0), pos);
            assert_eq!(memchr2(b'<', b'&', &hay, 0), pos);
            hay[pos] = b'&';
            assert_eq!(memchr2(b'<', b'&', &hay, 0), pos);
        }
    }

    #[test]
    fn misses_return_len() {
        let hay = vec![b'x'; 100];
        assert_eq!(memchr(b'<', &hay, 0), 100);
        assert_eq!(memchr2(b'<', b'&', &hay, 0), 100);
        assert_eq!(memchr(b'<', &hay, 100), 100);
        assert_eq!(memchr(b'<', b"", 0), 0);
    }

    #[test]
    fn from_offset_skips_earlier_hits() {
        let hay = b"a<b<c&d";
        assert_eq!(memchr(b'<', hay, 0), 1);
        assert_eq!(memchr(b'<', hay, 2), 3);
        assert_eq!(memchr(b'<', hay, 4), 7);
        assert_eq!(memchr2(b'<', b'&', hay, 4), 5);
    }
}
