//! Unranked trees — the natural model of XML documents (Section 10).

use std::fmt;

use serde::{Deserialize, Serialize};

/// An unranked tree: an element with arbitrarily many children, or a text
/// node (pcdata).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UTree {
    Elem { label: String, children: Vec<UTree> },
    Text(String),
}

impl UTree {
    pub fn elem(label: &str, children: Vec<UTree>) -> UTree {
        UTree::Elem {
            label: label.to_owned(),
            children,
        }
    }

    pub fn leaf(label: &str) -> UTree {
        UTree::elem(label, Vec::new())
    }

    pub fn text(content: &str) -> UTree {
        UTree::Text(content.to_owned())
    }

    /// The element label, if this is an element.
    pub fn label(&self) -> Option<&str> {
        match self {
            UTree::Elem { label, .. } => Some(label),
            UTree::Text(_) => None,
        }
    }

    /// The children (empty for text nodes).
    pub fn children(&self) -> &[UTree] {
        match self {
            UTree::Elem { children, .. } => children,
            UTree::Text(_) => &[],
        }
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(UTree::size).sum::<usize>()
    }

    /// True if this is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self, UTree::Text(_))
    }

    /// Looks up an attribute materialized by
    /// [`XmlOptions::keep_attributes`](crate::XmlOptions): finds the
    /// `@attrs` child and within it the `@name` element, returning its
    /// text value (`Some("")` for an empty or bare attribute, `None`
    /// when absent).
    pub fn attribute(&self, name: &str) -> Option<&str> {
        let attrs = self
            .children()
            .iter()
            .find(|c| c.label() == Some("@attrs"))?;
        let entry = attrs
            .children()
            .iter()
            .find(|c| c.label().and_then(|l| l.strip_prefix('@')) == Some(name))?;
        match entry.children().first() {
            Some(UTree::Text(s)) => Some(s),
            _ => Some(""),
        }
    }
}

impl fmt::Display for UTree {
    /// Paper-style rendering: `root(a,a,b)`; text nodes as quoted strings.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UTree::Text(s) => write!(f, "{s:?}"),
            UTree::Elem { label, children } => {
                write!(f, "{label}")?;
                if !children.is_empty() {
                    write!(f, "(")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_paper_style() {
        let t = UTree::elem(
            "root",
            vec![UTree::leaf("a"), UTree::leaf("a"), UTree::leaf("b")],
        );
        assert_eq!(t.to_string(), "root(a,a,b)");
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn text_nodes() {
        let t = UTree::elem("TITLE", vec![UTree::text("Dune")]);
        assert_eq!(t.to_string(), "TITLE(\"Dune\")");
        assert!(t.children()[0].is_text());
        assert_eq!(t.label(), Some("TITLE"));
        assert_eq!(t.children()[0].label(), None);
    }
}
