//! XML reading and writing.
//!
//! The core is [`XmlEventReader`], a pull-based SAX-style tokenizer that
//! yields [`XmlEvent`]s; [`parse_xml`] builds an [`UTree`] on top of it and
//! the streaming engine (`xtt-engine`) consumes the events directly. Built
//! by hand: the workspace policy is to implement substrates rather than
//! pull dependencies.
//!
//! Two modes:
//!
//! * **lenient** (default) — accepts and skips XML comments, processing
//!   instructions, DOCTYPE declarations, and attributes, and reads CDATA
//!   sections as text, so real-world documents reach the engine;
//! * **strict** ([`XmlOptions::strict`]) — the paper's minimal subset:
//!   elements and text only (plus an optional leading `<?xml …?>` prolog);
//!   anything else is a hard [`XmlError`].
//!
//! Documents are data-centric trees in both modes: attributes carry no
//! content in the paper's DTD encodings, so skipping them is lossless for
//! every workload in this workspace.

use std::fmt;

use crate::utree::UTree;

/// XML syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parsing options; see the module docs for the two modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XmlOptions {
    /// Reject comments, processing instructions, DOCTYPE, CDATA, and
    /// attributes instead of skipping them.
    pub strict: bool,
}

impl XmlOptions {
    /// The paper's minimal element/text subset.
    pub fn strict() -> XmlOptions {
        XmlOptions { strict: true }
    }
}

/// A SAX-style parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name …>` — element start (attributes, if any, were skipped).
    Start(String),
    /// Trimmed, unescaped character data (never whitespace-only).
    Text(String),
    /// `</name>` or the implicit close of `<name/>`.
    End(String),
}

/// Pull parser over a complete input buffer, yielding one event per call.
///
/// The iterator ends (`None`) after the root element closes and only
/// ignorable trailing content remains; every malformation is reported as a
/// single `Err`, after which the iterator is fused.
pub struct XmlEventReader<'a> {
    input: &'a [u8],
    pos: usize,
    opts: XmlOptions,
    /// Names of currently open elements.
    open: Vec<String>,
    /// Queued event for self-closing tags (`Start` then `End`).
    pending: Option<XmlEvent>,
    started: bool,
    finished: bool,
}

/// Lenient event stream over `input` (see [`XmlOptions`]).
pub fn xml_events(input: &str) -> XmlEventReader<'_> {
    xml_events_with(input, XmlOptions::default())
}

/// Event stream with explicit options.
pub fn xml_events_with(input: &str, opts: XmlOptions) -> XmlEventReader<'_> {
    XmlEventReader {
        input: input.as_bytes(),
        pos: 0,
        opts,
        open: Vec::new(),
        pending: None,
        started: false,
        finished: false,
    }
}

/// What a `<`-initiated piece of non-element markup amounted to.
enum Markup {
    /// An element tag after all — the caller parses it.
    Element,
    /// Comment / PI / DOCTYPE / whitespace CDATA: skipped, keep scanning.
    Skipped,
    /// An event (CDATA text) or a syntax error to emit.
    Emit(Result<XmlEvent, XmlError>),
}

impl<'a> XmlEventReader<'a> {
    /// Records a syntax error and fuses the iterator.
    fn fail(&mut self, message: impl Into<String>) -> XmlError {
        self.finished = true;
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn err<T>(&mut self, message: impl Into<String>) -> Option<Result<T, XmlError>> {
        Some(Err(self.fail(message)))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.input[self.pos..].starts_with(prefix)
    }

    /// Advances past `terminator`, returning the bytes before it.
    fn skip_until(&mut self, terminator: &[u8]) -> Option<(usize, usize)> {
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.starts_with(terminator) {
                let end = self.pos;
                self.pos += terminator.len();
                return Some((start, end));
            }
            self.pos += 1;
        }
        None
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(&c) = self.input.get(self.pos) {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(XmlError {
                offset: self.pos,
                message: "expected a name".into(),
            });
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(str::to_owned)
            .map_err(|_| XmlError {
                offset: start,
                message: "invalid UTF-8 in name".into(),
            })
    }

    /// Skips `name="value"` attributes up to `/>` or `>`.
    fn skip_attributes(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            match self.input.get(self.pos) {
                None => return Err(self.fail("unterminated start tag")),
                Some(b'>') | Some(b'/') => return Ok(()),
                Some(_) if self.opts.strict => {
                    return Err(self.fail("attributes are not allowed in strict mode"))
                }
                Some(_) => {
                    if self.name().is_err() {
                        return Err(self.fail("malformed attribute name"));
                    }
                    self.skip_ws();
                    if self.input.get(self.pos) != Some(&b'=') {
                        continue; // bare attribute (HTML-style); tolerate
                    }
                    self.pos += 1;
                    self.skip_ws();
                    match self.input.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => {
                            self.pos += 1;
                            if self.skip_until(&[q]).is_none() {
                                return Err(self.fail("unterminated attribute value"));
                            }
                        }
                        _ => return Err(self.fail("expected a quoted attribute value")),
                    }
                }
            }
        }
    }

    /// Skips `<!DOCTYPE …>` including an internal subset in brackets.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let mut brackets = 0usize;
        while let Some(&c) = self.input.get(self.pos) {
            self.pos += 1;
            match c {
                b'[' => brackets += 1,
                b']' => brackets = brackets.saturating_sub(1),
                b'>' if brackets == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.fail("unterminated DOCTYPE declaration"))
    }

    /// Classifies and consumes markup starting with `<` that is not an
    /// element tag (comment, CDATA, DOCTYPE, PI).
    fn markup(&mut self) -> Markup {
        if self.starts_with(b"<!--") {
            if self.opts.strict {
                return Markup::Emit(Err(self.fail("comments are not allowed in strict mode")));
            }
            self.pos += 4;
            if self.skip_until(b"-->").is_none() {
                return Markup::Emit(Err(self.fail("unterminated comment")));
            }
            return Markup::Skipped;
        }
        if self.starts_with(b"<![CDATA[") {
            if self.opts.strict {
                return Markup::Emit(Err(self.fail("CDATA is not allowed in strict mode")));
            }
            if self.open.is_empty() {
                return Markup::Emit(Err(self.fail("CDATA outside the root element")));
            }
            self.pos += 9;
            let Some((s, e)) = self.skip_until(b"]]>") else {
                return Markup::Emit(Err(self.fail("unterminated CDATA section")));
            };
            return match std::str::from_utf8(&self.input[s..e]) {
                Ok(text) if !text.trim().is_empty() => {
                    Markup::Emit(Ok(XmlEvent::Text(text.trim().to_owned())))
                }
                Ok(_) => Markup::Skipped,
                Err(_) => Markup::Emit(Err(self.fail("invalid UTF-8 in CDATA"))),
            };
        }
        if self.starts_with(b"<!") {
            if self.opts.strict {
                return Markup::Emit(Err(
                    self.fail("DOCTYPE/markup declarations are not allowed in strict mode")
                ));
            }
            self.pos += 2;
            return match self.skip_doctype() {
                Ok(()) => Markup::Skipped,
                Err(e) => Markup::Emit(Err(e)),
            };
        }
        if self.starts_with(b"<?") {
            // Strict mode admits only the leading `<?xml …?>` prolog.
            let is_prolog = !self.started && self.open.is_empty();
            if self.opts.strict && !(is_prolog && self.starts_with(b"<?xml")) {
                return Markup::Emit(Err(
                    self.fail("processing instructions are not allowed in strict mode")
                ));
            }
            self.pos += 2;
            if self.skip_until(b"?>").is_none() {
                return Markup::Emit(Err(self.fail("unterminated processing instruction")));
            }
            return Markup::Skipped;
        }
        Markup::Element
    }

    /// Byte position of the reader (diagnostics and fast-forward tests).
    pub fn byte_pos(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements (the root counts as 1).
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Fast-forwards past the subtree of the most recently returned
    /// [`XmlEvent::Start`]: raw input is consumed up to and including the
    /// matching end tag without decoding character data and without
    /// yielding any events. This is how a streaming consumer that knows a
    /// subtree is *deleted* (e.g. the engine's domain guard in a `∅`-skip
    /// state) avoids tokenizing it.
    ///
    /// Structural well-formedness is still enforced — mismatched or
    /// unterminated tags, comments, CDATA, and PIs inside the skipped
    /// region fail exactly as they would during normal reading — but
    /// character data is not decoded (no unescaping, trimming, or
    /// tokenizing). This is unobservable: the input is `&str`, and text
    /// runs are delimited by ASCII markup bytes, so the decoding the
    /// skip omits cannot fail on content normal reading would accept.
    pub fn skip_subtree(&mut self) -> Result<(), XmlError> {
        if self.finished {
            return Err(self.fail("skip_subtree on a finished reader"));
        }
        // Self-closing element: its Start was returned, its End is queued.
        if let Some(XmlEvent::End(_)) = self.pending {
            self.pending = None;
            self.open.pop();
            return Ok(());
        }
        let target = self.open.len();
        if target == 0 {
            return Err(self.fail("skip_subtree with no open element"));
        }
        while self.open.len() >= target {
            // Raw scan to the next markup; text is not decoded.
            while self.pos < self.input.len() && self.input[self.pos] != b'<' {
                self.pos += 1;
            }
            if self.pos >= self.input.len() {
                let label = self.open.last().cloned().unwrap_or_default();
                return Err(self.fail(format!("unterminated element <{label}>")));
            }
            match self.markup() {
                Markup::Emit(Err(e)) => return Err(e),
                // CDATA content inside a skipped subtree is discarded.
                Markup::Emit(Ok(_)) | Markup::Skipped => continue,
                Markup::Element => {}
            }
            self.pos += 1; // consume '<'
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                let close = match self.name() {
                    Ok(n) => n,
                    Err(e) => return Err(self.fail(e.message)),
                };
                self.skip_ws();
                if self.input.get(self.pos) != Some(&b'>') {
                    return Err(self.fail("expected '>' in end tag"));
                }
                self.pos += 1;
                match self.open.last() {
                    Some(label) if *label == close => {
                        self.open.pop();
                    }
                    Some(label) => {
                        let label = label.clone();
                        return Err(
                            self.fail(format!("mismatched </{close}>, expected </{label}>"))
                        );
                    }
                    None => unreachable!("loop guard keeps open non-empty"),
                }
                continue;
            }
            let label = match self.name() {
                Ok(n) => n,
                Err(e) => return Err(self.fail(e.message)),
            };
            self.skip_attributes()?;
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                if self.input.get(self.pos) != Some(&b'>') {
                    return Err(self.fail("expected '>' after '/'"));
                }
                self.pos += 1;
                // Self-closing inside the skipped region: nothing opens.
            } else if self.input.get(self.pos) == Some(&b'>') {
                self.pos += 1;
                self.open.push(label);
            } else {
                return Err(self.fail("expected '>' in start tag"));
            }
        }
        Ok(())
    }
}

impl Iterator for XmlEventReader<'_> {
    type Item = Result<XmlEvent, XmlError>;

    fn next(&mut self) -> Option<Result<XmlEvent, XmlError>> {
        if self.finished {
            return None;
        }
        if let Some(ev) = self.pending.take() {
            if let XmlEvent::End(_) = &ev {
                self.open.pop();
            }
            return Some(Ok(ev));
        }
        loop {
            if self.open.is_empty() {
                // Outside the root: only ignorable content is allowed.
                self.skip_ws();
                if self.pos >= self.input.len() {
                    self.finished = true;
                    if !self.started {
                        self.pos = 0;
                        return self.err("expected a root element");
                    }
                    return None;
                }
                if self.input[self.pos] != b'<' {
                    return self.err(if self.started {
                        "trailing content after the root element"
                    } else {
                        "text outside the root element"
                    });
                }
                if self.started && !self.starts_with(b"<!--") && !self.starts_with(b"<?") {
                    return self.err("trailing content after the root element");
                }
            } else {
                // Inside an element: gather character data up to '<'.
                let start = self.pos;
                while self.pos < self.input.len() && self.input[self.pos] != b'<' {
                    self.pos += 1;
                }
                if self.pos > start {
                    let Ok(text) = std::str::from_utf8(&self.input[start..self.pos]) else {
                        return self.err("invalid UTF-8 in text");
                    };
                    let unescaped = unescape(text);
                    let trimmed = unescaped.trim();
                    if !trimmed.is_empty() {
                        return Some(Ok(XmlEvent::Text(trimmed.to_owned())));
                    }
                }
                if self.pos >= self.input.len() {
                    let label = self.open.last().cloned().unwrap_or_default();
                    return self.err(format!("unterminated element <{label}>"));
                }
            }

            // At '<': comment / CDATA / DOCTYPE / PI, or an element tag.
            match self.markup() {
                Markup::Emit(result) => return Some(result),
                Markup::Skipped => continue,
                Markup::Element => {}
            }
            self.pos += 1; // consume '<'
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                let close = match self.name() {
                    Ok(n) => n,
                    Err(e) => return self.err(e.message),
                };
                self.skip_ws();
                if self.input.get(self.pos) != Some(&b'>') {
                    return self.err("expected '>' in end tag");
                }
                self.pos += 1;
                match self.open.last() {
                    Some(label) if *label == close => {
                        self.open.pop();
                        return Some(Ok(XmlEvent::End(close)));
                    }
                    Some(label) => {
                        let label = label.clone();
                        return self.err(format!("mismatched </{close}>, expected </{label}>"));
                    }
                    None => {
                        return self.err(format!("close tag </{close}> without an open element"))
                    }
                }
            }
            // Start tag.
            let label = match self.name() {
                Ok(n) => n,
                Err(e) => return self.err(e.message),
            };
            if let Err(e) = self.skip_attributes() {
                return Some(Err(e));
            }
            self.started = true;
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                if self.input.get(self.pos) != Some(&b'>') {
                    return self.err("expected '>' after '/'");
                }
                self.pos += 1;
                // Self-closing: Start now, End queued. `open` tracks the
                // element until the queued End is delivered.
                self.open.push(label.clone());
                self.pending = Some(XmlEvent::End(label.clone()));
                return Some(Ok(XmlEvent::Start(label)));
            }
            if self.input.get(self.pos) != Some(&b'>') {
                return self.err("expected '>' in start tag");
            }
            self.pos += 1;
            self.open.push(label.clone());
            return Some(Ok(XmlEvent::Start(label)));
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Parses a document (a single root element) leniently: comments,
/// processing instructions, DOCTYPE, and attributes are skipped, CDATA is
/// read as text. Use [`parse_xml_strict`] for the paper's minimal subset.
pub fn parse_xml(input: &str) -> Result<UTree, XmlError> {
    parse_xml_with(input, XmlOptions::default())
}

/// Parses in strict mode: elements and text only (plus an optional leading
/// `<?xml …?>` prolog); comments, PIs, DOCTYPE, CDATA, and attributes are
/// syntax errors.
pub fn parse_xml_strict(input: &str) -> Result<UTree, XmlError> {
    parse_xml_with(input, XmlOptions::strict())
}

/// Parses with explicit options, building the tree from the event stream.
pub fn parse_xml_with(input: &str, opts: XmlOptions) -> Result<UTree, XmlError> {
    let mut stack: Vec<(String, Vec<UTree>)> = Vec::new();
    let mut root: Option<UTree> = None;
    for event in xml_events_with(input, opts) {
        match event? {
            XmlEvent::Start(label) => stack.push((label, Vec::new())),
            XmlEvent::Text(text) => {
                if let Some((_, children)) = stack.last_mut() {
                    children.push(UTree::Text(text));
                }
            }
            XmlEvent::End(_) => {
                let (label, children) = stack.pop().expect("reader balances events");
                let elem = UTree::Elem { label, children };
                match stack.last_mut() {
                    Some((_, siblings)) => siblings.push(elem),
                    None => root = Some(elem),
                }
            }
        }
    }
    root.ok_or(XmlError {
        offset: input.len(),
        message: "document has no root element".into(),
    })
}

/// Serializes a tree to XML text (self-closing tags for empty elements).
pub fn write_xml(t: &UTree) -> String {
    let mut out = String::new();
    write_node(t, &mut out);
    out
}

/// Serializes with two-space indentation.
pub fn write_xml_pretty(t: &UTree) -> String {
    let mut out = String::new();
    write_pretty(t, 0, &mut out);
    out
}

fn write_node(t: &UTree, out: &mut String) {
    match t {
        UTree::Text(s) => out.push_str(&escape(s)),
        UTree::Elem { label, children } => {
            if children.is_empty() {
                out.push_str(&format!("<{label}/>"));
            } else {
                out.push_str(&format!("<{label}>"));
                for c in children {
                    write_node(c, out);
                }
                out.push_str(&format!("</{label}>"));
            }
        }
    }
}

fn write_pretty(t: &UTree, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match t {
        UTree::Text(s) => {
            out.push_str(&pad);
            out.push_str(&escape(s));
            out.push('\n');
        }
        UTree::Elem { label, children } => {
            if children.is_empty() {
                out.push_str(&format!("{pad}<{label}/>\n"));
            } else if children.len() == 1 && children[0].is_text() {
                if let UTree::Text(s) = &children[0] {
                    out.push_str(&format!("{pad}<{label}>{}</{label}>\n", escape(s)));
                }
            } else {
                out.push_str(&format!("{pad}<{label}>\n"));
                for c in children {
                    write_pretty(c, indent + 1, out);
                }
                out.push_str(&format!("{pad}</{label}>\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let t = parse_xml("<root><a/><a/><b/></root>").unwrap();
        assert_eq!(t.to_string(), "root(a,a,b)");
    }

    #[test]
    fn parses_text_content() {
        let t = parse_xml("<BOOK><AUTHOR>Herbert</AUTHOR><TITLE>Dune</TITLE></BOOK>").unwrap();
        assert_eq!(t.to_string(), "BOOK(AUTHOR(\"Herbert\"),TITLE(\"Dune\"))");
    }

    #[test]
    fn roundtrip() {
        let doc = "<L><B><A>x</A><T>y</T></B><B><A>z</A><T>w</T></B></L>";
        let t = parse_xml(doc).unwrap();
        assert_eq!(write_xml(&t), doc);
        assert_eq!(parse_xml(&write_xml(&t)).unwrap(), t);
    }

    #[test]
    fn tolerates_prolog_and_whitespace() {
        let t = parse_xml("  <?xml version=\"1.0\"?>\n <root>\n  <a/>\n </root>\n").unwrap();
        assert_eq!(t.to_string(), "root(a)");
        let t = parse_xml_strict("  <?xml version=\"1.0\"?>\n <root>\n  <a/>\n </root>\n").unwrap();
        assert_eq!(t.to_string(), "root(a)");
    }

    #[test]
    fn escaping_roundtrips() {
        let t = UTree::elem("x", vec![UTree::text("a<b&c>d")]);
        let xml = write_xml(&t);
        assert_eq!(parse_xml(&xml).unwrap(), t);
    }

    #[test]
    fn rejects_malformed() {
        for parse in [parse_xml, parse_xml_strict] {
            assert!(parse("<a><b></a></b>").is_err());
            assert!(parse("<a>").is_err());
            assert!(parse("<a/><b/>").is_err());
            assert!(parse("plain text").is_err());
            assert!(parse("").is_err());
            assert!(parse("</a>").is_err());
        }
    }

    #[test]
    fn pretty_printer_is_reparsable() {
        let t = parse_xml("<L><B><T>x</T></B><B/></L>").unwrap();
        let pretty = write_xml_pretty(&t);
        assert_eq!(parse_xml(&pretty).unwrap(), t);
    }

    #[test]
    fn lenient_skips_comments_pis_doctype_attributes() {
        let doc = "<?xml version=\"1.0\"?>\n\
                   <!DOCTYPE root [ <!ELEMENT root (a*)> ]>\n\
                   <!-- a catalog -->\n\
                   <root id=\"r1\" class='x'>\n\
                     <?target data?>\n\
                     <a href=\"https://example.invalid\" disabled/>\n\
                     <!-- trailing --><a/>\n\
                   </root>\n\
                   <!-- after -->";
        let t = parse_xml(doc).unwrap();
        assert_eq!(t.to_string(), "root(a,a)");
    }

    #[test]
    fn strict_rejects_real_world_markup() {
        assert!(parse_xml_strict("<root><!-- c --></root>").is_err());
        assert!(parse_xml_strict("<root><?pi?></root>").is_err());
        assert!(parse_xml_strict("<root id=\"1\"/>").is_err());
        assert!(parse_xml_strict("<!DOCTYPE root><root/>").is_err());
        assert!(parse_xml_strict("<root><![CDATA[x]]></root>").is_err());
    }

    #[test]
    fn cdata_reads_as_text() {
        let t = parse_xml("<x><![CDATA[a <raw> & b]]></x>").unwrap();
        assert_eq!(t, UTree::elem("x", vec![UTree::text("a <raw> & b")]));
    }

    #[test]
    fn event_stream_shape() {
        use XmlEvent::*;
        let events: Vec<XmlEvent> = xml_events("<r><a/>hi</r>")
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            events,
            vec![
                Start("r".into()),
                Start("a".into()),
                End("a".into()),
                Text("hi".into()),
                End("r".into()),
            ]
        );
    }

    #[test]
    fn event_reader_is_fused_after_error() {
        let mut r = xml_events("<a><b></a>");
        let mut saw_err = false;
        for ev in &mut r {
            if ev.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(r.next().is_none());
    }

    #[test]
    fn skip_subtree_fast_forwards_without_decoding() {
        let mut r =
            xml_events("<root><junk>text <deep><x/>&bad;</deep><!-- c --></junk><b/></root>");
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::Start("root".into()));
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::Start("junk".into()));
        r.skip_subtree().unwrap();
        // The reader resumes exactly after </junk>.
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::Start("b".into()));
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::End("b".into()));
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::End("root".into()));
        assert!(r.next().is_none());
    }

    #[test]
    fn skip_subtree_handles_self_closing_and_root() {
        let mut r = xml_events("<root><a/><b/></root>");
        r.next().unwrap().unwrap(); // <root>
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::Start("a".into()));
        r.skip_subtree().unwrap(); // drops the queued End("a")
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::Start("b".into()));
        r.next().unwrap().unwrap(); // </b>
        assert_eq!(r.next().unwrap().unwrap(), XmlEvent::End("root".into()));
        // Skipping the whole root works too.
        let mut r = xml_events("<root><a>hi</a></root>");
        r.next().unwrap().unwrap();
        r.skip_subtree().unwrap();
        assert!(r.next().is_none());
    }

    #[test]
    fn skip_subtree_still_enforces_structure() {
        let mut r = xml_events("<root><junk><a></b></a></junk></root>");
        r.next().unwrap().unwrap();
        r.next().unwrap().unwrap(); // <junk>
        assert!(r.skip_subtree().is_err(), "mismatched tags must still fail");
        assert!(r.next().is_none(), "reader is fused after a skip error");
        let mut r = xml_events("<root><junk><never-closed></root>");
        r.next().unwrap().unwrap();
        r.next().unwrap().unwrap();
        assert!(r.skip_subtree().is_err());
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(parse_xml("<a><!-- no end").is_err());
        assert!(parse_xml("<a><?pi no end").is_err());
        assert!(parse_xml("<a><![CDATA[ no end").is_err());
        assert!(parse_xml("<!DOCTYPE a [ <!ELEMENT a> ").is_err());
        assert!(parse_xml("<a b=\"unclosed>").is_err());
    }
}
