//! A minimal XML reader/writer for the subset the paper needs: elements
//! and text content. No attributes, namespaces, comments, or processing
//! instructions — documents are data-centric trees, exactly what the
//! DTD-based encoding consumes. Built by hand: the workspace policy is to
//! implement substrates rather than pull dependencies.

use std::fmt;

use crate::utree::UTree;

/// XML syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.input.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(&c) = self.input.get(self.pos) {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_owned())
    }

    fn element(&mut self) -> Result<UTree, XmlError> {
        self.expect(b'<')?;
        let label = self.name()?;
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b'/') {
            self.pos += 1;
            self.expect(b'>')?;
            return Ok(UTree::elem(&label, Vec::new()));
        }
        self.expect(b'>')?;
        let mut children = Vec::new();
        loop {
            // text run until '<'
            let start = self.pos;
            while self.pos < self.input.len() && self.input[self.pos] != b'<' {
                self.pos += 1;
            }
            if self.pos > start {
                let text = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in text"))?;
                let unescaped = unescape(text);
                if !unescaped.trim().is_empty() {
                    children.push(UTree::Text(unescaped.trim().to_owned()));
                }
            }
            if self.input.get(self.pos).is_none() {
                return Err(self.err(format!("unterminated element <{label}>")));
            }
            if self.input.get(self.pos + 1) == Some(&b'/') {
                self.pos += 2;
                let close = self.name()?;
                if close != label {
                    return Err(self.err(format!("mismatched </{close}>, expected </{label}>")));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(UTree::Elem { label, children });
            }
            children.push(self.element()?);
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Parses a document (a single root element; leading/trailing whitespace
/// and an optional `<?xml …?>` prolog are allowed).
pub fn parse_xml(input: &str) -> Result<UTree, XmlError> {
    let mut r = Reader {
        input: input.as_bytes(),
        pos: 0,
    };
    r.skip_ws();
    if input[r.pos..].starts_with("<?xml") {
        match input[r.pos..].find("?>") {
            Some(end) => r.pos += end + 2,
            None => return Err(r.err("unterminated XML prolog")),
        }
        r.skip_ws();
    }
    let tree = r.element()?;
    r.skip_ws();
    if r.pos != r.input.len() {
        return Err(r.err("trailing content after the root element"));
    }
    Ok(tree)
}

/// Serializes a tree to XML text (self-closing tags for empty elements).
pub fn write_xml(t: &UTree) -> String {
    let mut out = String::new();
    write_node(t, &mut out);
    out
}

/// Serializes with two-space indentation.
pub fn write_xml_pretty(t: &UTree) -> String {
    let mut out = String::new();
    write_pretty(t, 0, &mut out);
    out
}

fn write_node(t: &UTree, out: &mut String) {
    match t {
        UTree::Text(s) => out.push_str(&escape(s)),
        UTree::Elem { label, children } => {
            if children.is_empty() {
                out.push_str(&format!("<{label}/>"));
            } else {
                out.push_str(&format!("<{label}>"));
                for c in children {
                    write_node(c, out);
                }
                out.push_str(&format!("</{label}>"));
            }
        }
    }
}

fn write_pretty(t: &UTree, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match t {
        UTree::Text(s) => {
            out.push_str(&pad);
            out.push_str(&escape(s));
            out.push('\n');
        }
        UTree::Elem { label, children } => {
            if children.is_empty() {
                out.push_str(&format!("{pad}<{label}/>\n"));
            } else if children.len() == 1 && children[0].is_text() {
                if let UTree::Text(s) = &children[0] {
                    out.push_str(&format!("{pad}<{label}>{}</{label}>\n", escape(s)));
                }
            } else {
                out.push_str(&format!("{pad}<{label}>\n"));
                for c in children {
                    write_pretty(c, indent + 1, out);
                }
                out.push_str(&format!("{pad}</{label}>\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let t = parse_xml("<root><a/><a/><b/></root>").unwrap();
        assert_eq!(t.to_string(), "root(a,a,b)");
    }

    #[test]
    fn parses_text_content() {
        let t = parse_xml("<BOOK><AUTHOR>Herbert</AUTHOR><TITLE>Dune</TITLE></BOOK>").unwrap();
        assert_eq!(t.to_string(), "BOOK(AUTHOR(\"Herbert\"),TITLE(\"Dune\"))");
    }

    #[test]
    fn roundtrip() {
        let doc = "<L><B><A>x</A><T>y</T></B><B><A>z</A><T>w</T></B></L>";
        let t = parse_xml(doc).unwrap();
        assert_eq!(write_xml(&t), doc);
        assert_eq!(parse_xml(&write_xml(&t)).unwrap(), t);
    }

    #[test]
    fn tolerates_prolog_and_whitespace() {
        let t = parse_xml("  <?xml version=\"1.0\"?>\n <root>\n  <a/>\n </root>\n").unwrap();
        assert_eq!(t.to_string(), "root(a)");
    }

    #[test]
    fn escaping_roundtrips() {
        let t = UTree::elem("x", vec![UTree::text("a<b&c>d")]);
        let xml = write_xml(&t);
        assert_eq!(parse_xml(&xml).unwrap(), t);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_xml("<a><b></a></b>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a/><b/>").is_err());
        assert!(parse_xml("plain text").is_err());
    }

    #[test]
    fn pretty_printer_is_reparsable() {
        let t = parse_xml("<L><B><T>x</T></B><B/></L>").unwrap();
        let pretty = write_xml_pretty(&t);
        assert_eq!(parse_xml(&pretty).unwrap(), t);
    }
}
