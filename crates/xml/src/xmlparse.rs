//! XML reading and writing.
//!
//! The core is [`XmlEventReader`], a pull-based SAX-style tokenizer that
//! yields [`XmlEvent`]s; [`parse_xml`] builds an [`UTree`] on top of it and
//! the streaming engine (`xtt-engine`) consumes the events directly. Built
//! by hand: the workspace policy is to implement substrates rather than
//! pull dependencies.
//!
//! The hot scan is block-wise ([`crate::scan`]): structural bytes (`<`,
//! `&`, quotes, comment/CDATA anchors) are located 16 bytes per iteration
//! (SSE2, with a portable SWAR fallback) instead of the historical
//! byte-at-a-time loop, and events are **zero-copy** — tag names are
//! borrowed `&str` slices of the input buffer, character data is a
//! [`Cow`] that only allocates when a run contains entity references or
//! merges CDATA sections.
//!
//! Two modes:
//!
//! * **lenient** (default) — accepts and skips XML comments, processing
//!   instructions, and DOCTYPE declarations, parses attributes and
//!   namespace declarations for real (surfaced on [`XmlEvent::Start`] and
//!   the reader's prefix stack), and merges CDATA sections into the
//!   surrounding character data, so real-world documents reach the
//!   engine;
//! * **strict** ([`XmlOptions::strict`]) — the paper's minimal subset:
//!   elements and text only (plus an optional leading `<?xml …?>` prolog);
//!   anything else is a hard [`XmlError`].
//!
//! Character data follows XML well-formedness: the five predefined
//! entities and numeric character references (`&#65;`, `&#x416;`) decode
//! to their characters in a single left-to-right pass (decoded output is
//! never re-scanned), and an unknown entity or bare `&` is a positioned
//! error in **both** modes unless
//! [`XmlOptions::allow_unknown_entities`] opts out. Adjacent text and
//! CDATA runs coalesce into one [`XmlEvent::Text`]: the merged run is
//! whitespace-trimmed at its edges only, so interior whitespace —
//! including around CDATA boundaries — survives.

use std::borrow::Cow;
use std::fmt;

use crate::scan;
use crate::utree::UTree;

/// XML syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parsing options; see the module docs for the two modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XmlOptions {
    /// Reject comments, processing instructions, DOCTYPE, CDATA, and
    /// attributes instead of skipping them.
    pub strict: bool,
    /// Lenient-mode opt-out from entity well-formedness: unknown entity
    /// references (`&bogus;`) and bare `&` pass through as literal text
    /// instead of raising a positioned [`XmlError`]. The five predefined
    /// entities and numeric character references still decode.
    pub allow_unknown_entities: bool,
    /// Surface attributes when building trees: [`parse_xml_with`] maps a
    /// start tag's attributes to an `@attrs` first child whose children
    /// are one `@name` element per attribute holding the (unescaped)
    /// value as text. Off by default — the paper's data-centric trees
    /// carry no attributes.
    pub keep_attributes: bool,
    /// Force the byte-at-a-time reference scanner instead of the
    /// block-wise SSE2/SWAR scan — the scalar baseline of experiment E15
    /// and the differential proptests. Event streams are identical in
    /// both modes by construction (and pinned by tests).
    pub scalar_scan: bool,
}

impl XmlOptions {
    /// The paper's minimal element/text subset.
    pub fn strict() -> XmlOptions {
        XmlOptions {
            strict: true,
            ..XmlOptions::default()
        }
    }
}

/// One `name="value"` attribute of a start tag. The name is a borrowed
/// slice of the input; the value is unescaped (entities and numeric
/// character references decoded), borrowing when no reference occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr<'a> {
    /// The qualified name as written (`href`, `xlink:href`, `xmlns:svg`).
    pub name: &'a str,
    /// The unescaped value (empty for HTML-style bare attributes).
    pub value: Cow<'a, str>,
}

impl Attr<'_> {
    /// The namespace prefix, if the name is prefixed (`xlink:href` →
    /// `xlink`).
    pub fn prefix(&self) -> Option<&str> {
        split_qname(self.name).0
    }

    /// The local part of the name (`xlink:href` → `href`).
    pub fn local_name(&self) -> &str {
        split_qname(self.name).1
    }
}

/// Splits a qualified name at its first `:` into `(prefix, local)`.
pub fn split_qname(name: &str) -> (Option<&str>, &str) {
    match name.split_once(':') {
        Some((prefix, local)) if !prefix.is_empty() && !local.is_empty() => (Some(prefix), local),
        _ => (None, name),
    }
}

/// A SAX-style parse event borrowing from the input buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// `<name …>` — element start with its parsed attributes.
    Start { name: &'a str, attrs: Vec<Attr<'a>> },
    /// One coalesced character-data run (text and CDATA sections merged),
    /// entity references decoded, trimmed at the run's edges only; never
    /// whitespace-only. Borrowed unless decoding or merging forced an
    /// allocation.
    Text(Cow<'a, str>),
    /// `</name>` or the implicit close of `<name/>`.
    End(&'a str),
}

impl<'a> XmlEvent<'a> {
    /// An attribute-less start event (test and fixture convenience).
    pub fn start(name: &'a str) -> XmlEvent<'a> {
        XmlEvent::Start {
            name,
            attrs: Vec::new(),
        }
    }

    /// The element name of a `Start`/`End` event.
    pub fn name(&self) -> Option<&'a str> {
        match self {
            XmlEvent::Start { name, .. } => Some(name),
            XmlEvent::End(name) => Some(name),
            XmlEvent::Text(_) => None,
        }
    }
}

/// An in-scope namespace binding (kept on the reader's O(depth) stack).
struct NsBinding<'a> {
    /// `open.len()` of the element that declared it — bindings pop with
    /// their element.
    depth: usize,
    /// The bound prefix (`""` for the default namespace).
    prefix: &'a str,
    uri: Cow<'a, str>,
}

/// Pull parser over a complete input buffer, yielding one event per call.
///
/// The iterator ends (`None`) after the root element closes and only
/// ignorable trailing content remains; every malformation is reported as a
/// single `Err`, after which the iterator is fused.
pub struct XmlEventReader<'a> {
    src: &'a str,
    input: &'a [u8],
    pos: usize,
    opts: XmlOptions,
    /// Names of currently open elements (borrowed start-tag slices).
    open: Vec<&'a str>,
    /// In-scope namespace declarations, innermost last.
    ns: Vec<NsBinding<'a>>,
    /// Queued implicit close for self-closing tags (`Start` then `End`).
    pending_end: Option<&'a str>,
    started: bool,
    finished: bool,
}

/// Lenient event stream over `input` (see [`XmlOptions`]).
pub fn xml_events(input: &str) -> XmlEventReader<'_> {
    xml_events_with(input, XmlOptions::default())
}

/// Event stream with explicit options.
pub fn xml_events_with(input: &str, opts: XmlOptions) -> XmlEventReader<'_> {
    XmlEventReader {
        src: input,
        input: input.as_bytes(),
        pos: 0,
        opts,
        open: Vec::new(),
        ns: Vec::new(),
        pending_end: None,
        started: false,
        finished: false,
    }
}

/// What a `<`-initiated piece of non-element markup amounted to.
enum Markup {
    /// An element tag after all — the caller parses it.
    Element,
    /// Comment / PI / DOCTYPE: skipped, keep scanning.
    Skipped,
    /// A `<![CDATA[` opener, **not consumed** — character-data gathering
    /// merges it, the skip fast path discards it, the top level rejects
    /// it.
    Cdata,
    /// A syntax error.
    Error(XmlError),
}

impl<'a> XmlEventReader<'a> {
    /// Records a syntax error and fuses the iterator.
    fn fail(&mut self, message: impl Into<String>) -> XmlError {
        self.finished = true;
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn err<T>(&mut self, message: impl Into<String>) -> Option<Result<T, XmlError>> {
        Some(Err(self.fail(message)))
    }

    /// Next occurrence of `n` at or after `from` (block-wise scan unless
    /// the scalar baseline is forced).
    #[inline]
    fn scan1(&self, n: u8, from: usize) -> usize {
        if self.opts.scalar_scan {
            scan::memchr_scalar(n, self.input, from)
        } else {
            scan::memchr(n, self.input, from)
        }
    }

    /// Next occurrence of `a` or `b` at or after `from`.
    #[inline]
    fn scan2(&self, a: u8, b: u8, from: usize) -> usize {
        if self.opts.scalar_scan {
            scan::memchr2_scalar(a, b, self.input, from)
        } else {
            scan::memchr2(a, b, self.input, from)
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.input[self.pos..].starts_with(prefix)
    }

    /// Advances past `terminator`, returning the bytes before it.
    fn skip_until(&mut self, terminator: &[u8]) -> Option<(usize, usize)> {
        let start = self.pos;
        let mut i = self.scan1(terminator[0], self.pos);
        while i < self.input.len() {
            if self.input[i..].starts_with(terminator) {
                self.pos = i + terminator.len();
                return Some((start, i));
            }
            i = self.scan1(terminator[0], i + 1);
        }
        self.pos = self.input.len();
        None
    }

    /// Parses a name as a borrowed slice (names are ASCII in this
    /// subset, so no UTF-8 revalidation is needed).
    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while let Some(&c) = self.input.get(self.pos) {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(XmlError {
                offset: self.pos,
                message: "expected a name".into(),
            });
        }
        Ok(&self.src[start..self.pos])
    }

    /// Unescapes a raw slice, fusing the reader on a malformed reference.
    fn unescape_at(&mut self, raw: &'a str, base: usize) -> Result<Cow<'a, str>, XmlError> {
        match unescape(raw, base, self.opts) {
            Ok(text) => Ok(text),
            Err(e) => {
                self.finished = true;
                Err(e)
            }
        }
    }

    /// Parses the attribute list of a start tag up to `/>` or `>`. With
    /// `collect`, values are unescaped and namespace declarations pushed;
    /// without (the subtree-skip fast path), the tag is only validated —
    /// quote-aware, no decoding, no allocation.
    fn attributes(&mut self, collect: bool) -> Result<Vec<Attr<'a>>, XmlError> {
        let mut attrs = Vec::new();
        let depth = self.open.len() + 1;
        loop {
            self.skip_ws();
            match self.input.get(self.pos) {
                None => return Err(self.fail("unterminated start tag")),
                Some(b'>') | Some(b'/') => return Ok(attrs),
                Some(_) if self.opts.strict => {
                    return Err(self.fail("attributes are not allowed in strict mode"))
                }
                Some(_) => {
                    let name = match self.name() {
                        Ok(n) => n,
                        Err(_) => return Err(self.fail("malformed attribute name")),
                    };
                    self.skip_ws();
                    if self.input.get(self.pos) != Some(&b'=') {
                        // Bare attribute (HTML-style); tolerate as empty.
                        if collect {
                            attrs.push(Attr {
                                name,
                                value: Cow::Borrowed(""),
                            });
                        }
                        continue;
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let q = match self.input.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.fail("expected a quoted attribute value")),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    let vend = self.scan1(q, vstart);
                    if vend >= self.input.len() {
                        self.pos = vend;
                        return Err(self.fail("unterminated attribute value"));
                    }
                    self.pos = vend + 1;
                    if collect {
                        let value = self.unescape_at(&self.src[vstart..vend], vstart)?;
                        if name == "xmlns" {
                            self.ns.push(NsBinding {
                                depth,
                                prefix: "",
                                uri: value.clone(),
                            });
                        } else if let Some(prefix) = name.strip_prefix("xmlns:") {
                            self.ns.push(NsBinding {
                                depth,
                                prefix,
                                uri: value.clone(),
                            });
                        }
                        attrs.push(Attr { name, value });
                    }
                }
            }
        }
    }

    /// Pops namespace bindings scoped to elements no longer open.
    fn drop_ns_bindings(&mut self) {
        while self.ns.last().is_some_and(|b| b.depth > self.open.len()) {
            self.ns.pop();
        }
    }

    /// Resolves a namespace prefix against the in-scope declarations
    /// (`""` for the default namespace). Follows literal scoping: an
    /// inner re-declaration shadows, and `xmlns=""` resolves to `Some("")`
    /// (an explicit un-declaration).
    pub fn resolve_prefix(&self, prefix: &str) -> Option<&str> {
        self.ns
            .iter()
            .rev()
            .find(|b| b.prefix == prefix)
            .map(|b| b.uri.as_ref())
    }

    /// Skips `<!DOCTYPE …>` including an internal subset in brackets.
    /// Quoted strings are opaque: a `]` or `>` inside `"…"`/`'…'` (e.g.
    /// `<!ENTITY e "a>b">`) neither closes the declaration nor changes
    /// the bracket depth.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let mut brackets = 0usize;
        let mut quote: Option<u8> = None;
        while let Some(&c) = self.input.get(self.pos) {
            self.pos += 1;
            match quote {
                Some(q) => {
                    if c == q {
                        quote = None;
                    }
                }
                None => match c {
                    b'"' | b'\'' => quote = Some(c),
                    b'[' => brackets += 1,
                    b']' => brackets = brackets.saturating_sub(1),
                    b'>' if brackets == 0 => return Ok(()),
                    _ => {}
                },
            }
        }
        Err(self.fail("unterminated DOCTYPE declaration"))
    }

    /// Classifies markup starting with `<` that is not an element tag,
    /// consuming comments, PIs, and DOCTYPE declarations.
    fn markup(&mut self) -> Markup {
        if self.starts_with(b"<!--") {
            if self.opts.strict {
                return Markup::Error(self.fail("comments are not allowed in strict mode"));
            }
            self.pos += 4;
            if self.skip_until(b"-->").is_none() {
                return Markup::Error(self.fail("unterminated comment"));
            }
            return Markup::Skipped;
        }
        if self.starts_with(b"<![CDATA[") {
            return Markup::Cdata;
        }
        if self.starts_with(b"<!") {
            if self.opts.strict {
                return Markup::Error(
                    self.fail("DOCTYPE/markup declarations are not allowed in strict mode"),
                );
            }
            self.pos += 2;
            return match self.skip_doctype() {
                Ok(()) => Markup::Skipped,
                Err(e) => Markup::Error(e),
            };
        }
        if self.starts_with(b"<?") {
            // Strict mode admits only the leading `<?xml …?>` prolog.
            let is_prolog = !self.started && self.open.is_empty();
            if self.opts.strict && !(is_prolog && self.starts_with(b"<?xml")) {
                return Markup::Error(
                    self.fail("processing instructions are not allowed in strict mode"),
                );
            }
            self.pos += 2;
            if self.skip_until(b"?>").is_none() {
                return Markup::Error(self.fail("unterminated processing instruction"));
            }
            return Markup::Skipped;
        }
        Markup::Element
    }

    /// Gathers the maximal character-data run starting at the current
    /// position: text segments (entity-decoded) and CDATA sections
    /// (literal) are concatenated, and the merged run is trimmed at its
    /// edges only. Leaves the position at the `<` of the next non-CDATA
    /// markup (or at input end). `Ok(None)` = the run was empty or
    /// whitespace-only.
    fn char_data(&mut self) -> Result<Option<XmlEvent<'a>>, XmlError> {
        let len = self.input.len();
        // `head` is the first decoded segment (zero-copy in the common
        // single-segment case); `tail` accumulates merged continuations.
        let mut head: Option<Cow<'a, str>> = None;
        let mut tail: Option<String> = None;
        loop {
            let seg_start = self.pos;
            let mut probe = self.scan2(b'<', b'&', seg_start);
            let has_ref = probe < len && self.input[probe] == b'&';
            if has_ref {
                probe = self.scan1(b'<', probe + 1);
            }
            self.pos = probe;
            if probe > seg_start {
                let raw = &self.src[seg_start..probe];
                let decoded = if has_ref {
                    self.unescape_at(raw, seg_start)?
                } else {
                    Cow::Borrowed(raw)
                };
                match &mut tail {
                    Some(t) => t.push_str(&decoded),
                    None => match &head {
                        None => head = Some(decoded),
                        Some(_) => tail = Some(decoded.into_owned()),
                    },
                }
            }
            if self.pos >= len || !self.starts_with(b"<![CDATA[") {
                break;
            }
            if self.opts.strict {
                return Err(self.fail("CDATA is not allowed in strict mode"));
            }
            self.pos += 9;
            let Some((s, e)) = self.skip_until(b"]]>") else {
                return Err(self.fail("unterminated CDATA section"));
            };
            let cdata = &self.src[s..e];
            if !cdata.is_empty() {
                match &mut tail {
                    Some(t) => t.push_str(cdata),
                    None => match &head {
                        None => head = Some(Cow::Borrowed(cdata)),
                        Some(_) => tail = Some(cdata.to_owned()),
                    },
                }
            }
        }
        Ok(finish_run(head, tail))
    }

    /// Byte position of the reader (diagnostics and fast-forward tests).
    pub fn byte_pos(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements (the root counts as 1).
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Fast-forwards past the subtree of the most recently returned
    /// [`XmlEvent::Start`]: raw input is consumed up to and including the
    /// matching end tag without decoding character data and without
    /// yielding any events. This is how a streaming consumer that knows a
    /// subtree is *deleted* (e.g. the engine's domain guard in a `∅`-skip
    /// state) avoids tokenizing it.
    ///
    /// Structural well-formedness is still enforced — mismatched or
    /// unterminated tags, comments, CDATA, PIs, and unquoted attributes
    /// inside the skipped region fail exactly as they would during
    /// normal reading — but character data is not decoded (no
    /// unescaping, trimming, or coalescing) and attribute values are
    /// only delimited, never unescaped. This is unobservable for
    /// accepted inputs: the input is `&str`, and text runs are delimited
    /// by ASCII markup bytes, so the decoding the skip omits cannot fail
    /// structurally — though a malformed entity reference a full read
    /// would reject is sailed past (the subtree is deleted; nothing
    /// downstream can observe it).
    pub fn skip_subtree(&mut self) -> Result<(), XmlError> {
        if self.finished {
            return Err(self.fail("skip_subtree on a finished reader"));
        }
        // Self-closing element: its Start was returned, its End is queued.
        if self.pending_end.take().is_some() {
            self.open.pop();
            self.drop_ns_bindings();
            return Ok(());
        }
        let target = self.open.len();
        if target == 0 {
            return Err(self.fail("skip_subtree with no open element"));
        }
        while self.open.len() >= target {
            // Raw scan to the next markup; text is not decoded.
            self.pos = self.scan1(b'<', self.pos);
            if self.pos >= self.input.len() {
                let label = self.open.last().copied().unwrap_or_default().to_owned();
                return Err(self.fail(format!("unterminated element <{label}>")));
            }
            match self.markup() {
                Markup::Error(e) => return Err(e),
                Markup::Skipped => continue,
                Markup::Cdata => {
                    // CDATA content inside a skipped subtree is discarded.
                    if self.opts.strict {
                        return Err(self.fail("CDATA is not allowed in strict mode"));
                    }
                    self.pos += 9;
                    if self.skip_until(b"]]>").is_none() {
                        return Err(self.fail("unterminated CDATA section"));
                    }
                    continue;
                }
                Markup::Element => {}
            }
            self.pos += 1; // consume '<'
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                let close = match self.name() {
                    Ok(n) => n,
                    Err(e) => return Err(self.fail(e.message)),
                };
                self.skip_ws();
                if self.input.get(self.pos) != Some(&b'>') {
                    return Err(self.fail("expected '>' in end tag"));
                }
                self.pos += 1;
                match self.open.last() {
                    Some(label) if *label == close => {
                        self.open.pop();
                        self.drop_ns_bindings();
                    }
                    Some(label) => {
                        let label = (*label).to_owned();
                        return Err(
                            self.fail(format!("mismatched </{close}>, expected </{label}>"))
                        );
                    }
                    None => unreachable!("loop guard keeps open non-empty"),
                }
                continue;
            }
            let label = match self.name() {
                Ok(n) => n,
                Err(e) => return Err(self.fail(e.message)),
            };
            self.attributes(false)?;
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                if self.input.get(self.pos) != Some(&b'>') {
                    return Err(self.fail("expected '>' after '/'"));
                }
                self.pos += 1;
                // Self-closing inside the skipped region: nothing opens.
            } else if self.input.get(self.pos) == Some(&b'>') {
                self.pos += 1;
                self.open.push(label);
            } else {
                return Err(self.fail("expected '>' in start tag"));
            }
        }
        Ok(())
    }
}

/// Assembles the coalesced run: trims at the merged edges only, drops
/// whitespace-only runs, and keeps the single-segment case zero-copy.
fn finish_run<'a>(head: Option<Cow<'a, str>>, tail: Option<String>) -> Option<XmlEvent<'a>> {
    let merged = match (head, tail) {
        (None, _) => return None,
        (Some(one), None) => one,
        (Some(head), Some(tail)) => {
            let mut s = head.into_owned();
            s.push_str(&tail);
            Cow::Owned(s)
        }
    };
    let trimmed = match merged {
        Cow::Borrowed(s) => Cow::Borrowed(s.trim()),
        Cow::Owned(s) => {
            let t = s.trim();
            if t.len() == s.len() {
                Cow::Owned(s)
            } else {
                Cow::Owned(t.to_owned())
            }
        }
    };
    if trimmed.is_empty() {
        None
    } else {
        Some(XmlEvent::Text(trimmed))
    }
}

impl<'a> Iterator for XmlEventReader<'a> {
    type Item = Result<XmlEvent<'a>, XmlError>;

    fn next(&mut self) -> Option<Result<XmlEvent<'a>, XmlError>> {
        if self.finished {
            return None;
        }
        if let Some(name) = self.pending_end.take() {
            self.open.pop();
            self.drop_ns_bindings();
            return Some(Ok(XmlEvent::End(name)));
        }
        loop {
            if self.open.is_empty() {
                // Outside the root: only ignorable content is allowed.
                self.skip_ws();
                if self.pos >= self.input.len() {
                    self.finished = true;
                    if !self.started {
                        self.pos = 0;
                        return self.err("expected a root element");
                    }
                    return None;
                }
                if self.input[self.pos] != b'<' {
                    return self.err(if self.started {
                        "trailing content after the root element"
                    } else {
                        "text outside the root element"
                    });
                }
                if self.started && !self.starts_with(b"<!--") && !self.starts_with(b"<?") {
                    return self.err("trailing content after the root element");
                }
            } else {
                // Inside an element: gather the character-data run.
                match self.char_data() {
                    Err(e) => return Some(Err(e)),
                    Ok(Some(event)) => return Some(Ok(event)),
                    Ok(None) => {}
                }
                if self.pos >= self.input.len() {
                    let label = self.open.last().copied().unwrap_or_default().to_owned();
                    return self.err(format!("unterminated element <{label}>"));
                }
            }

            // At '<': comment / DOCTYPE / PI, or an element tag.
            match self.markup() {
                Markup::Error(e) => return Some(Err(e)),
                Markup::Skipped => continue,
                Markup::Cdata => {
                    // `char_data` consumes CDATA inside elements, so this
                    // position is outside the root.
                    return self.err(if self.opts.strict {
                        "CDATA is not allowed in strict mode"
                    } else {
                        "CDATA outside the root element"
                    });
                }
                Markup::Element => {}
            }
            self.pos += 1; // consume '<'
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                let close = match self.name() {
                    Ok(n) => n,
                    Err(e) => return self.err(e.message),
                };
                self.skip_ws();
                if self.input.get(self.pos) != Some(&b'>') {
                    return self.err("expected '>' in end tag");
                }
                self.pos += 1;
                match self.open.last() {
                    Some(label) if *label == close => {
                        self.open.pop();
                        self.drop_ns_bindings();
                        return Some(Ok(XmlEvent::End(close)));
                    }
                    Some(label) => {
                        let label = (*label).to_owned();
                        return self.err(format!("mismatched </{close}>, expected </{label}>"));
                    }
                    None => {
                        return self.err(format!("close tag </{close}> without an open element"))
                    }
                }
            }
            // Start tag.
            let name = match self.name() {
                Ok(n) => n,
                Err(e) => return self.err(e.message),
            };
            let attrs = match self.attributes(true) {
                Ok(attrs) => attrs,
                Err(e) => return Some(Err(e)),
            };
            self.started = true;
            if self.input.get(self.pos) == Some(&b'/') {
                self.pos += 1;
                if self.input.get(self.pos) != Some(&b'>') {
                    return self.err("expected '>' after '/'");
                }
                self.pos += 1;
                // Self-closing: Start now, End queued. `open` tracks the
                // element until the queued End is delivered.
                self.open.push(name);
                self.pending_end = Some(name);
                return Some(Ok(XmlEvent::Start { name, attrs }));
            }
            if self.input.get(self.pos) != Some(&b'>') {
                return self.err("expected '>' in start tag");
            }
            self.pos += 1;
            self.open.push(name);
            return Some(Ok(XmlEvent::Start { name, attrs }));
        }
    }
}

/// Decodes entity and numeric character references in a single
/// left-to-right pass; the decoded output is never re-scanned, so
/// `&amp;lt;` yields the literal text `&lt;`. Borrows when the slice
/// contains no `&`. Errors are positioned at the offending `&` (relative
/// to `base`, the slice's offset in the document); with
/// [`XmlOptions::allow_unknown_entities`] an undecodable reference
/// passes through literally instead.
fn unescape<'s>(s: &'s str, base: usize, opts: XmlOptions) -> Result<Cow<'s, str>, XmlError> {
    let bytes = s.as_bytes();
    let find = if opts.scalar_scan {
        scan::memchr_scalar
    } else {
        scan::memchr
    };
    let mut i = find(b'&', bytes, 0);
    if i >= bytes.len() {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..i]);
    while i < bytes.len() {
        debug_assert_eq!(bytes[i], b'&');
        match entity(&s[i..]) {
            Ok((c, used)) => {
                out.push(c);
                i += used;
            }
            Err(message) => {
                if opts.allow_unknown_entities {
                    out.push('&');
                    i += 1;
                } else {
                    return Err(XmlError {
                        offset: base + i,
                        message,
                    });
                }
            }
        }
        let next = find(b'&', bytes, i);
        out.push_str(&s[i..next]);
        i = next;
    }
    Ok(Cow::Owned(out))
}

/// Decodes the reference at the start of `s` (`s[0] == '&'`), returning
/// the character and the bytes consumed.
fn entity(s: &str) -> Result<(char, usize), String> {
    // References are short; cap the `;` search so a bare `&` deep inside
    // a long run never scans far.
    let window = s.len().min(32);
    let semi = scan::memchr_scalar(b';', &s.as_bytes()[..window], 1);
    if semi >= window {
        return Err("bare '&' in character data (escape it as &amp;)".into());
    }
    let body = &s[1..semi];
    let used = semi + 1;
    let c = match body {
        "lt" => '<',
        "gt" => '>',
        "amp" => '&',
        "apos" => '\'',
        "quot" => '"',
        _ => {
            if let Some(num) = body.strip_prefix('#') {
                let (digits, radix) = match num.strip_prefix(['x', 'X']) {
                    Some(hex) => (hex, 16),
                    None => (num, 10),
                };
                let code = (!digits.is_empty())
                    .then(|| u32::from_str_radix(digits, radix).ok())
                    .flatten();
                match code.and_then(char::from_u32) {
                    Some(c) if c != '\0' => c,
                    _ => return Err(format!("invalid numeric character reference '&{body};'")),
                }
            } else if !body.is_empty()
                && body
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.'))
            {
                return Err(format!("unknown entity reference '&{body};'"));
            } else {
                return Err("bare '&' in character data (escape it as &amp;)".into());
            }
        }
    };
    Ok((c, used))
}

/// Escapes `&`, `<`, `>` for text content; borrows when nothing needs
/// escaping.
fn escape(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Parses a document (a single root element) leniently: comments,
/// processing instructions, and DOCTYPE are skipped, attributes are
/// parsed (and dropped unless [`XmlOptions::keep_attributes`]), CDATA is
/// read as text. Use [`parse_xml_strict`] for the paper's minimal subset.
pub fn parse_xml(input: &str) -> Result<UTree, XmlError> {
    parse_xml_with(input, XmlOptions::default())
}

/// Parses in strict mode: elements and text only (plus an optional leading
/// `<?xml …?>` prolog); comments, PIs, DOCTYPE, CDATA, and attributes are
/// syntax errors.
pub fn parse_xml_strict(input: &str) -> Result<UTree, XmlError> {
    parse_xml_with(input, XmlOptions::strict())
}

/// Parses with explicit options, building the tree from the event stream.
/// With [`XmlOptions::keep_attributes`], a start tag's attributes become
/// an `@attrs` first child: one `@name` element per attribute, holding
/// the unescaped value as a text child (empty values stay childless).
pub fn parse_xml_with(input: &str, opts: XmlOptions) -> Result<UTree, XmlError> {
    let mut stack: Vec<(String, Vec<UTree>)> = Vec::new();
    let mut root: Option<UTree> = None;
    for event in xml_events_with(input, opts) {
        match event? {
            XmlEvent::Start { name, attrs } => {
                let mut children = Vec::new();
                if opts.keep_attributes && !attrs.is_empty() {
                    children.push(attrs_subtree(&attrs));
                }
                stack.push((name.to_owned(), children));
            }
            XmlEvent::Text(text) => {
                if let Some((_, children)) = stack.last_mut() {
                    children.push(UTree::Text(text.into_owned()));
                }
            }
            XmlEvent::End(_) => {
                let (label, children) = stack.pop().expect("reader balances events");
                let elem = UTree::Elem { label, children };
                match stack.last_mut() {
                    Some((_, siblings)) => siblings.push(elem),
                    None => root = Some(elem),
                }
            }
        }
    }
    root.ok_or(XmlError {
        offset: input.len(),
        message: "document has no root element".into(),
    })
}

/// The `@attrs` child materialized by [`XmlOptions::keep_attributes`].
fn attrs_subtree(attrs: &[Attr<'_>]) -> UTree {
    UTree::Elem {
        label: "@attrs".to_owned(),
        children: attrs
            .iter()
            .map(|a| UTree::Elem {
                label: format!("@{}", a.name),
                children: if a.value.is_empty() {
                    Vec::new()
                } else {
                    vec![UTree::Text(a.value.clone().into_owned())]
                },
            })
            .collect(),
    }
}

/// Serializes a tree to XML text (self-closing tags for empty elements).
pub fn write_xml(t: &UTree) -> String {
    let mut out = String::new();
    write_node(t, &mut out);
    out
}

/// Serializes with two-space indentation.
pub fn write_xml_pretty(t: &UTree) -> String {
    let mut out = String::new();
    write_pretty(t, 0, &mut out);
    out
}

fn write_node(t: &UTree, out: &mut String) {
    match t {
        UTree::Text(s) => out.push_str(&escape(s)),
        UTree::Elem { label, children } => {
            if children.is_empty() {
                out.push_str(&format!("<{label}/>"));
            } else {
                out.push_str(&format!("<{label}>"));
                for c in children {
                    write_node(c, out);
                }
                out.push_str(&format!("</{label}>"));
            }
        }
    }
}

fn write_pretty(t: &UTree, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match t {
        UTree::Text(s) => {
            out.push_str(&pad);
            out.push_str(&escape(s));
            out.push('\n');
        }
        UTree::Elem { label, children } => {
            if children.is_empty() {
                out.push_str(&format!("{pad}<{label}/>\n"));
            } else if children.len() == 1 && children[0].is_text() {
                if let UTree::Text(s) = &children[0] {
                    out.push_str(&format!("{pad}<{label}>{}</{label}>\n", escape(s)));
                }
            } else {
                out.push_str(&format!("{pad}<{label}>\n"));
                for c in children {
                    write_pretty(c, indent + 1, out);
                }
                out.push_str(&format!("{pad}</{label}>\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> XmlEvent<'_> {
        XmlEvent::start(name)
    }

    fn text(s: &str) -> XmlEvent<'_> {
        XmlEvent::Text(Cow::Borrowed(s))
    }

    fn end(name: &str) -> XmlEvent<'_> {
        XmlEvent::End(name)
    }

    fn events(doc: &str) -> Vec<XmlEvent<'_>> {
        xml_events(doc).collect::<Result<_, _>>().unwrap()
    }

    #[test]
    fn parses_nested_elements() {
        let t = parse_xml("<root><a/><a/><b/></root>").unwrap();
        assert_eq!(t.to_string(), "root(a,a,b)");
    }

    #[test]
    fn parses_text_content() {
        let t = parse_xml("<BOOK><AUTHOR>Herbert</AUTHOR><TITLE>Dune</TITLE></BOOK>").unwrap();
        assert_eq!(t.to_string(), "BOOK(AUTHOR(\"Herbert\"),TITLE(\"Dune\"))");
    }

    #[test]
    fn roundtrip() {
        let doc = "<L><B><A>x</A><T>y</T></B><B><A>z</A><T>w</T></B></L>";
        let t = parse_xml(doc).unwrap();
        assert_eq!(write_xml(&t), doc);
        assert_eq!(parse_xml(&write_xml(&t)).unwrap(), t);
    }

    #[test]
    fn tolerates_prolog_and_whitespace() {
        let t = parse_xml("  <?xml version=\"1.0\"?>\n <root>\n  <a/>\n </root>\n").unwrap();
        assert_eq!(t.to_string(), "root(a)");
        let t = parse_xml_strict("  <?xml version=\"1.0\"?>\n <root>\n  <a/>\n </root>\n").unwrap();
        assert_eq!(t.to_string(), "root(a)");
    }

    #[test]
    fn escaping_roundtrips() {
        let t = UTree::elem("x", vec![UTree::text("a<b&c>d")]);
        let xml = write_xml(&t);
        assert_eq!(parse_xml(&xml).unwrap(), t);
    }

    #[test]
    fn rejects_malformed() {
        for parse in [parse_xml, parse_xml_strict] {
            assert!(parse("<a><b></a></b>").is_err());
            assert!(parse("<a>").is_err());
            assert!(parse("<a/><b/>").is_err());
            assert!(parse("plain text").is_err());
            assert!(parse("").is_err());
            assert!(parse("</a>").is_err());
        }
    }

    #[test]
    fn pretty_printer_is_reparsable() {
        let t = parse_xml("<L><B><T>x</T></B><B/></L>").unwrap();
        let pretty = write_xml_pretty(&t);
        assert_eq!(parse_xml(&pretty).unwrap(), t);
    }

    #[test]
    fn lenient_skips_comments_pis_doctype() {
        let doc = "<?xml version=\"1.0\"?>\n\
                   <!DOCTYPE root [ <!ELEMENT root (a*)> ]>\n\
                   <!-- a catalog -->\n\
                   <root id=\"r1\" class='x'>\n\
                     <?target data?>\n\
                     <a href=\"https://example.invalid\" disabled/>\n\
                     <!-- trailing --><a/>\n\
                   </root>\n\
                   <!-- after -->";
        let t = parse_xml(doc).unwrap();
        assert_eq!(t.to_string(), "root(a,a)");
    }

    #[test]
    fn strict_rejects_real_world_markup() {
        assert!(parse_xml_strict("<root><!-- c --></root>").is_err());
        assert!(parse_xml_strict("<root><?pi?></root>").is_err());
        assert!(parse_xml_strict("<root id=\"1\"/>").is_err());
        assert!(parse_xml_strict("<!DOCTYPE root><root/>").is_err());
        assert!(parse_xml_strict("<root><![CDATA[x]]></root>").is_err());
    }

    #[test]
    fn cdata_reads_as_text() {
        let t = parse_xml("<x><![CDATA[a <raw> & b]]></x>").unwrap();
        assert_eq!(t, UTree::elem("x", vec![UTree::text("a <raw> & b")]));
    }

    #[test]
    fn event_stream_shape() {
        assert_eq!(
            events("<r><a/>hi</r>"),
            vec![start("r"), start("a"), end("a"), text("hi"), end("r")]
        );
    }

    #[test]
    fn start_events_carry_attributes() {
        let evs = events("<r a=\"1\" b='two &amp; three' empty/>");
        let XmlEvent::Start { name, attrs } = &evs[0] else {
            panic!("expected a start event");
        };
        assert_eq!(*name, "r");
        assert_eq!(attrs.len(), 3);
        assert_eq!((attrs[0].name, attrs[0].value.as_ref()), ("a", "1"));
        assert!(matches!(attrs[0].value, Cow::Borrowed(_)), "zero-copy");
        assert_eq!(
            (attrs[1].name, attrs[1].value.as_ref()),
            ("b", "two & three")
        );
        assert_eq!((attrs[2].name, attrs[2].value.as_ref()), ("empty", ""));
    }

    #[test]
    fn attribute_values_decode_character_references() {
        let evs = events("<r title=\"&#65;&#x42;&lt;\"/>");
        let XmlEvent::Start { attrs, .. } = &evs[0] else {
            panic!("expected a start event");
        };
        assert_eq!(attrs[0].value.as_ref(), "AB<");
    }

    #[test]
    fn qname_splitting_and_attr_helpers() {
        assert_eq!(split_qname("xlink:href"), (Some("xlink"), "href"));
        assert_eq!(split_qname("plain"), (None, "plain"));
        assert_eq!(split_qname(":odd"), (None, ":odd"));
        let evs = events("<r xlink:href=\"#t\"/>");
        let XmlEvent::Start { attrs, .. } = &evs[0] else {
            panic!("expected a start event");
        };
        assert_eq!(attrs[0].prefix(), Some("xlink"));
        assert_eq!(attrs[0].local_name(), "href");
    }

    #[test]
    fn namespace_prefix_stack_scopes_bindings() {
        let doc = "<r xmlns=\"urn:default\" xmlns:a=\"urn:one\">\
                     <x xmlns:a=\"urn:two\"><y/></x><z/></r>";
        let mut r = xml_events(doc);
        r.next().unwrap().unwrap(); // <r>
        assert_eq!(r.resolve_prefix(""), Some("urn:default"));
        assert_eq!(r.resolve_prefix("a"), Some("urn:one"));
        r.next().unwrap().unwrap(); // <x> shadows a
        assert_eq!(r.resolve_prefix("a"), Some("urn:two"));
        r.next().unwrap().unwrap(); // <y/> Start
        r.next().unwrap().unwrap(); // y End
        r.next().unwrap().unwrap(); // </x> — shadowing binding popped
        assert_eq!(r.resolve_prefix("a"), Some("urn:one"));
        assert_eq!(r.resolve_prefix("b"), None);
    }

    #[test]
    fn numeric_character_references_decode() {
        assert_eq!(
            events("<x>&#65;&#x416;&#X2713;</x>")[1],
            text("AЖ✓"),
            "decimal, hex, and capital-X hex references decode"
        );
    }

    #[test]
    fn decoded_output_is_not_rescanned() {
        // The historical replace-chain turned `&amp;lt;` into `<`; the
        // single pass must yield the literal text `&lt;`.
        assert_eq!(events("<x>&amp;lt;</x>")[1], text("&lt;"));
        assert_eq!(events("<x>&amp;amp;</x>")[1], text("&amp;"));
    }

    #[test]
    fn invalid_numeric_references_error() {
        for doc in [
            "<x>&#;</x>",
            "<x>&#x;</x>",
            "<x>&#xD800;</x>",
            "<x>&#0;</x>",
            "<x>&#1114112;</x>",
            "<x>&#xzz;</x>",
        ] {
            assert!(parse_xml(doc).is_err(), "{doc} must be rejected");
        }
    }

    #[test]
    fn unknown_entities_error_in_both_modes() {
        for doc in ["<x>&nbsp;</x>", "<x>&bogus;</x>", "<x>a & b</x>"] {
            let lenient = parse_xml(doc);
            assert!(lenient.is_err(), "{doc} must be rejected leniently");
            assert!(parse_xml_strict(doc).is_err(), "{doc} strict");
        }
        // The error is positioned at the '&'.
        let err = parse_xml("<x>ab&nope;</x>").unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(err.message.contains("&nope;"), "{}", err.message);
    }

    #[test]
    fn allow_unknown_entities_opts_out() {
        let opts = XmlOptions {
            allow_unknown_entities: true,
            ..XmlOptions::default()
        };
        let t = parse_xml_with("<x>&bogus; &amp; a & b</x>", opts).unwrap();
        assert_eq!(t, UTree::elem("x", vec![UTree::text("&bogus; & a & b")]));
    }

    #[test]
    fn adjacent_text_and_cdata_coalesce() {
        // One logical pcdata node: trimmed at the run's edges only, so
        // the interior whitespace around the CDATA boundary survives.
        assert_eq!(events("<x>a <![CDATA[b]]> c</x>")[1], text("a b c"));
        assert_eq!(
            events("<x> <![CDATA[b]]><![CDATA[c]]>d </x>")[1],
            text("bcd")
        );
        // Entity decoding composes with coalescing.
        assert_eq!(
            events("<x>1 &lt; 2 <![CDATA[& 2 > 1]]>!</x>")[1],
            text("1 < 2 & 2 > 1!")
        );
        // Whitespace-only runs still vanish.
        assert_eq!(
            events("<x> <![CDATA[  ]]> </x>"),
            vec![start("x"), end("x")]
        );
    }

    #[test]
    fn comments_still_split_text_runs() {
        assert_eq!(
            events("<x>a<!-- c -->b</x>"),
            vec![start("x"), text("a"), text("b"), end("x")]
        );
    }

    #[test]
    fn doctype_internal_subset_tracks_quotes() {
        // A quoted '>' must not terminate the declaration …
        let doc = "<!DOCTYPE r [ <!ENTITY e \"a>b\"> ]><r/>";
        assert_eq!(parse_xml(doc).unwrap(), UTree::leaf("r"));
        // … nor a quoted ']' close the internal subset.
        let doc = "<!DOCTYPE r [ <!ENTITY e 'a]b'> <!ELEMENT r EMPTY> ]><r/>";
        assert_eq!(parse_xml(doc).unwrap(), UTree::leaf("r"));
        // An unbalanced quote leaves the declaration unterminated.
        assert!(parse_xml("<!DOCTYPE r [ <!ENTITY e \"a> ]><r/>").is_err());
    }

    #[test]
    fn keep_attributes_materializes_attr_children() {
        let opts = XmlOptions {
            keep_attributes: true,
            ..XmlOptions::default()
        };
        let t = parse_xml_with("<r a=\"1\"><x b='&#50;' c=''/><y/></r>", opts).unwrap();
        assert_eq!(
            t.to_string(),
            "r(@attrs(@a(\"1\")),x(@attrs(@b(\"2\"),@c)),y)"
        );
        // Default: attributes are parsed but not materialized.
        let t = parse_xml("<r a=\"1\"><x b='2'/></r>").unwrap();
        assert_eq!(t.to_string(), "r(x)");
    }

    #[test]
    fn scalar_scan_yields_identical_events() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE r [ <!ENTITY x \"]\"> ]>\
                   <r a=\"v&#33;\"><k>t &amp; u <![CDATA[<raw>]]></k><e/></r>";
        let fast: Vec<XmlEvent<'_>> = xml_events(doc).collect::<Result<_, _>>().unwrap();
        let opts = XmlOptions {
            scalar_scan: true,
            ..XmlOptions::default()
        };
        let slow: Vec<XmlEvent<'_>> = xml_events_with(doc, opts)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn text_events_borrow_when_clean() {
        let evs = events("<x>plain run with no references</x>");
        match &evs[1] {
            XmlEvent::Text(Cow::Borrowed(s)) => {
                assert_eq!(*s, "plain run with no references")
            }
            other => panic!("expected a borrowed text event, got {other:?}"),
        }
    }

    #[test]
    fn event_reader_is_fused_after_error() {
        let mut r = xml_events("<a><b></a>");
        let mut saw_err = false;
        for ev in &mut r {
            if ev.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(r.next().is_none());
    }

    #[test]
    fn skip_subtree_fast_forwards_without_decoding() {
        let mut r =
            xml_events("<root><junk>text <deep><x/>&bad;</deep><!-- c --></junk><b/></root>");
        assert_eq!(r.next().unwrap().unwrap(), start("root"));
        assert_eq!(r.next().unwrap().unwrap(), start("junk"));
        r.skip_subtree().unwrap();
        // The reader resumes exactly after </junk>.
        assert_eq!(r.next().unwrap().unwrap(), start("b"));
        assert_eq!(r.next().unwrap().unwrap(), end("b"));
        assert_eq!(r.next().unwrap().unwrap(), end("root"));
        assert!(r.next().is_none());
    }

    #[test]
    fn skip_subtree_handles_self_closing_and_root() {
        let mut r = xml_events("<root><a/><b/></root>");
        r.next().unwrap().unwrap(); // <root>
        assert_eq!(r.next().unwrap().unwrap(), start("a"));
        r.skip_subtree().unwrap(); // drops the queued End("a")
        assert_eq!(r.next().unwrap().unwrap(), start("b"));
        r.next().unwrap().unwrap(); // </b>
        assert_eq!(r.next().unwrap().unwrap(), end("root"));
        // Skipping the whole root works too.
        let mut r = xml_events("<root><a>hi</a></root>");
        r.next().unwrap().unwrap();
        r.skip_subtree().unwrap();
        assert!(r.next().is_none());
    }

    #[test]
    fn skip_subtree_still_enforces_structure() {
        let mut r = xml_events("<root><junk><a></b></a></junk></root>");
        r.next().unwrap().unwrap();
        r.next().unwrap().unwrap(); // <junk>
        assert!(r.skip_subtree().is_err(), "mismatched tags must still fail");
        assert!(r.next().is_none(), "reader is fused after a skip error");
        let mut r = xml_events("<root><junk><never-closed></root>");
        r.next().unwrap().unwrap();
        r.next().unwrap().unwrap();
        assert!(r.skip_subtree().is_err());
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(parse_xml("<a><!-- no end").is_err());
        assert!(parse_xml("<a><?pi no end").is_err());
        assert!(parse_xml("<a><![CDATA[ no end").is_err());
        assert!(parse_xml("<!DOCTYPE a [ <!ELEMENT a> ").is_err());
        assert!(parse_xml("<a b=\"unclosed>").is_err());
    }
}
