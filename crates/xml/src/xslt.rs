//! Rendering learned dtops as XSLT-like stylesheets.
//!
//! The paper (Section 1/10): "The transducer we obtain can, modulo syntax,
//! be seen as an xslt program for unranked trees: rules correspond to
//! apply-templates with the mode corresponding to the state." This module
//! performs that rendering — one `<xsl:template>` per rule, with the state
//! as the template mode and state calls as `<xsl:apply-templates>` on the
//! matched child. The output is for human consumption (the point of the
//! paper is to *free the web programmer from writing this by hand*), not a
//! conforming executable stylesheet: it operates on the ranked encoding.

use std::fmt::Write as _;

use xtt_transducer::{Dtop, QId, Rhs};

/// Renders the transducer as an XSLT-like stylesheet.
pub fn to_xslt(m: &Dtop) -> String {
    let mut out = String::new();
    out.push_str(
        "<xsl:stylesheet version=\"1.0\" xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">\n",
    );
    out.push_str("  <!-- generated from a learned deterministic top-down tree transducer -->\n");
    out.push_str("  <xsl:template match=\"/\">\n");
    render_rhs(m, m.axiom(), true, 2, &mut out);
    out.push_str("  </xsl:template>\n");
    for (q, f, rhs) in m.rules() {
        let _ = writeln!(
            out,
            "  <xsl:template match=\"{}\" mode=\"{}\">",
            escape_sym(f.name()),
            m.state_name(q)
        );
        render_rhs(m, rhs, false, 2, &mut out);
        out.push_str("  </xsl:template>\n");
    }
    out.push_str("</xsl:stylesheet>\n");
    out
}

fn render_rhs(m: &Dtop, rhs: &Rhs, axiom: bool, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match rhs {
        Rhs::Call { state, child } => {
            let select = if axiom {
                ".".to_owned()
            } else {
                format!("*[{}]", child + 1)
            };
            let _ = writeln!(
                out,
                "{pad}<xsl:apply-templates select=\"{select}\" mode=\"{}\"/>",
                state_name(m, *state)
            );
        }
        Rhs::Out(sym, children) => {
            if children.is_empty() {
                let _ = writeln!(out, "{pad}<{}/>", escape_sym(sym.name()));
            } else {
                let _ = writeln!(out, "{pad}<{}>", escape_sym(sym.name()));
                for c in children {
                    render_rhs(m, c, axiom, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}</{}>", escape_sym(sym.name()));
            }
        }
    }
}

fn state_name(m: &Dtop, q: QId) -> String {
    m.state_name(q).to_owned()
}

fn escape_sym(name: &str) -> String {
    // encoding symbols like "(a*,b*)" are not XML names; keep them
    // readable inside the pseudo-stylesheet
    name.replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::examples;

    #[test]
    fn flip_stylesheet_mentions_modes_and_templates() {
        let m = examples::flip().dtop;
        let xslt = to_xslt(&m);
        assert!(xslt.contains("<xsl:template match=\"root\" mode=\"q1\">"));
        assert!(xslt.contains("<xsl:apply-templates select=\"*[2]\" mode=\"q3\"/>"));
        assert!(xslt.contains("<xsl:template match=\"/\">"));
        // one template per rule + the axiom template
        let count = xslt.matches("<xsl:template").count();
        assert_eq!(count, m.rule_count() + 1);
    }

    #[test]
    fn library_stylesheet_renders_all_states() {
        let fix = examples::library();
        let xslt = to_xslt(&fix.dtop);
        for q in fix.dtop.states() {
            assert!(
                xslt.contains(&format!("mode=\"{}\"", fix.dtop.state_name(q))),
                "missing mode for {}",
                fix.dtop.state_name(q)
            );
        }
    }
}
