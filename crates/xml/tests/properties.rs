//! Property-based tests for the XML substrate: encodings, DTD parsing,
//! and the XML reader/writer.

use proptest::prelude::*;
use xtt_automata::enumerate_language;
use xtt_xml::encode::EncodingStyle;
use xtt_xml::{
    fcns_decode, fcns_encode, parse_xml, parse_xml_strict, write_xml, Dtd, Encoding, PcDataMode,
    UTree,
};

/// Random documents valid for the xmlflip DTD: root(aⁿ bᵐ).
fn arb_flip_doc() -> impl Strategy<Value = UTree> {
    (0usize..8, 0usize..8).prop_map(|(n, m)| {
        let mut children = Vec::new();
        for _ in 0..n {
            children.push(UTree::leaf("a"));
        }
        for _ in 0..m {
            children.push(UTree::leaf("b"));
        }
        UTree::elem("root", children)
    })
}

/// Random library documents: books with author/title(/year), some with
/// title only, text values drawn from a 2-value universe.
fn arb_library_doc() -> impl Strategy<Value = UTree> {
    let value = prop_oneof![Just("v0"), Just("v1")];
    let book = (
        value.clone(),
        value.clone(),
        proptest::option::of(value.clone()),
        any::<bool>(),
    )
        .prop_map(|(a, t, y, title_only)| {
            if title_only {
                UTree::elem("BOOK", vec![UTree::elem("TITLE", vec![UTree::text(t)])])
            } else {
                let mut kids = vec![
                    UTree::elem("AUTHOR", vec![UTree::text(a)]),
                    UTree::elem("TITLE", vec![UTree::text(t)]),
                ];
                if let Some(y) = y {
                    kids.push(UTree::elem("YEAR", vec![UTree::text(y)]));
                }
                UTree::elem("BOOK", kids)
            }
        });
    proptest::collection::vec(book, 0..5).prop_map(|books| UTree::elem("LIBRARY", books))
}

fn flip_dtd() -> Dtd {
    Dtd::parse("<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >").unwrap()
}

fn library_dtd() -> Dtd {
    Dtd::parse(
        "<!ELEMENT LIBRARY (BOOK*) >\n\
         <!ELEMENT BOOK ((AUTHOR, TITLE, YEAR?) | TITLE) >\n\
         <!ELEMENT AUTHOR #PCDATA >\n\
         <!ELEMENT TITLE #PCDATA >\n\
         <!ELEMENT YEAR #PCDATA >",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flip_encoding_roundtrips_both_styles(doc in arb_flip_doc()) {
        for style in [EncodingStyle::Paper, EncodingStyle::PathClosed] {
            let enc = Encoding::with_style(flip_dtd(), PcDataMode::Abstract, style);
            let t = enc.encode(&doc).unwrap();
            prop_assert_eq!(enc.decode(&t).unwrap(), doc.clone());
            prop_assert!(enc.domain().accepts(&t), "domain rejects its own encoding");
        }
    }

    #[test]
    fn library_encoding_roundtrips(doc in arb_library_doc()) {
        let enc = Encoding::with_style(
            library_dtd(),
            PcDataMode::Valued(vec!["v0".into(), "v1".into()]),
            EncodingStyle::PathClosed,
        );
        let t = enc.encode(&doc).unwrap();
        prop_assert_eq!(enc.decode(&t).unwrap(), doc.clone());
        prop_assert!(enc.domain().accepts(&t));
    }

    #[test]
    fn fcns_roundtrips(doc in arb_library_doc()) {
        // fc/ns abstracts text; compare after the same abstraction
        let t = fcns_encode(&doc);
        let back = fcns_decode(&t).unwrap();
        prop_assert_eq!(abstract_text(&doc), back);
    }

    #[test]
    fn xml_write_parse_roundtrips(doc in arb_library_doc()) {
        let text = write_xml(&doc);
        prop_assert_eq!(parse_xml(&text).unwrap(), doc.clone());
        let pretty = xtt_xml::write_xml_pretty(&doc);
        prop_assert_eq!(parse_xml(&pretty).unwrap(), doc);
    }
}

/// Which pieces of real-world markup the noisy serializer injects. Every
/// kind is skipped by the lenient parser and a hard error in strict mode.
#[derive(Clone, Copy, Debug, Default)]
struct Noise {
    doctype: bool,
    leading_comment: bool,
    inner_comment: bool,
    inner_pi: bool,
    root_attribute: bool,
    cdata_text: bool,
    trailing_comment: bool,
}

fn arb_noise() -> impl Strategy<Value = Noise> {
    // One bit per noise kind (the vendored proptest has no 7-tuples).
    (0u32..128).prop_map(|bits| Noise {
        doctype: bits & 1 != 0,
        leading_comment: bits & 2 != 0,
        inner_comment: bits & 4 != 0,
        inner_pi: bits & 8 != 0,
        root_attribute: bits & 16 != 0,
        cdata_text: bits & 32 != 0,
        trailing_comment: bits & 64 != 0,
    })
}

/// Serializes `doc` with the selected noise interleaved; returns the text
/// and how many noise constructs were *actually* emitted (flags that find
/// no injection point — e.g. CDATA with no text nodes — count zero).
fn write_noisy(doc: &UTree, noise: Noise) -> (String, usize) {
    let mut out = String::from("<?xml version=\"1.0\"?>\n"); // legal even in strict mode
    let mut emitted = 0usize;
    if noise.doctype {
        out.push_str("<!DOCTYPE LIBRARY [ <!ELEMENT LIBRARY (BOOK*)> ]>\n");
        emitted += 1;
    }
    if noise.leading_comment {
        out.push_str("<!-- generated corpus -->\n");
        emitted += 1;
    }
    write_noisy_node(doc, noise, true, &mut out, &mut emitted);
    if noise.trailing_comment {
        out.push_str("\n<!-- end of document -->");
        emitted += 1;
    }
    (out, emitted)
}

fn write_noisy_node(t: &UTree, noise: Noise, is_root: bool, out: &mut String, emitted: &mut usize) {
    match t {
        UTree::Text(s) => {
            if noise.cdata_text {
                out.push_str(&format!("<![CDATA[{s}]]>"));
                *emitted += 1;
            } else {
                out.push_str(s); // corpus text needs no escaping
            }
        }
        UTree::Elem { label, children } => {
            out.push_str(&format!("<{label}"));
            if is_root && noise.root_attribute {
                out.push_str(" id=\"r1\" class='noisy' defer");
                *emitted += 1;
            }
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            if is_root && noise.inner_comment {
                out.push_str("<!-- first child follows -->");
                *emitted += 1;
            }
            for child in children {
                write_noisy_node(child, noise, false, out, emitted);
            }
            if is_root && noise.inner_pi {
                out.push_str("<?target instruction data?>");
                *emitted += 1;
            }
            out.push_str(&format!("</{label}>"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// serialize-with-noise → lenient parse is the identity, and strict
    /// mode rejects exactly the renderings that contain noise.
    #[test]
    fn noisy_roundtrip_lenient_identity_strict_exact(
        doc in arb_library_doc(),
        noise in arb_noise(),
    ) {
        let (text, emitted) = write_noisy(&doc, noise);
        let lenient = parse_xml(&text);
        prop_assert_eq!(
            lenient.unwrap(), doc.clone(),
            "lenient parse must see through the noise: {}", text
        );
        let strict = parse_xml_strict(&text);
        if emitted == 0 {
            prop_assert_eq!(
                strict.unwrap(), doc,
                "strict must accept the noise-free rendering: {}", text
            );
        } else {
            prop_assert!(
                strict.is_err(),
                "strict accepted a rendering with {} noise constructs: {}", emitted, text
            );
        }
    }
}

/// Collects the full event stream (events *and* the terminating error,
/// if any) under the given scan implementation.
fn event_trace(
    text: &str,
    scalar: bool,
) -> Vec<Result<xtt_xml::xmlparse::XmlEvent<'_>, xtt_xml::xmlparse::XmlError>> {
    let opts = xtt_xml::xmlparse::XmlOptions {
        scalar_scan: scalar,
        ..Default::default()
    };
    xtt_xml::xmlparse::xml_events_with(text, opts).collect()
}

/// XML-flavored fragment soup: markup shards, entities (valid and
/// broken), text, and multi-byte characters, concatenated at random —
/// most samples are malformed somewhere.
fn arb_garbage() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("<a>"),
        Just("</a>"),
        Just("<a"),
        Just("<"),
        Just(">"),
        Just("/>"),
        Just("<!--x-->"),
        Just("<!--"),
        Just("<![CDATA[y]]>"),
        Just("<![CDATA["),
        Just("<!DOCTYPE d [<!-- \"]\" -->]>"),
        Just("<?pi?>"),
        Just("&amp;"),
        Just("&#65;"),
        Just("&#x2026;"),
        Just("&bogus;"),
        Just("&"),
        Just("&#"),
        Just(";"),
        Just("text"),
        Just(" "),
        Just("\t\n"),
        Just("=\"v\""),
        Just("='v'"),
        Just("héllo✓"),
        Just("]]>"),
    ];
    proptest::collection::vec(fragment, 0..24).prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The SIMD/SWAR scanner is a drop-in for the scalar loop: on any
    /// well-formed noisy document the two tokenizations agree
    /// event-for-event (names, attribute lists, coalesced text).
    #[test]
    fn simd_and_scalar_scans_agree_on_documents(
        doc in arb_library_doc(),
        noise in arb_noise(),
    ) {
        let (text, _) = write_noisy(&doc, noise);
        prop_assert_eq!(event_trace(&text, false), event_trace(&text, true));
    }

    /// …and on arbitrary garbage: same events, then the same positioned
    /// error. Exercises the scanners' tail handling on inputs that stop
    /// mid-construct.
    #[test]
    fn simd_and_scalar_scans_agree_on_garbage(input in arb_garbage()) {
        prop_assert_eq!(event_trace(&input, false), event_trace(&input, true));
    }
}

fn abstract_text(doc: &UTree) -> UTree {
    match doc {
        UTree::Text(_) => UTree::text("pcdata"),
        UTree::Elem { label, children } => UTree::Elem {
            label: label.clone(),
            children: children.iter().map(abstract_text).collect(),
        },
    }
}

/// The decisive property of the path-closed style: every tree of the
/// domain automaton decodes to a document (language = closure).
#[test]
fn path_closed_domain_equals_encoding_language() {
    for dtd in [flip_dtd(), library_dtd()] {
        let enc = Encoding::with_style(dtd, PcDataMode::Abstract, EncodingStyle::PathClosed);
        let domain = enc.domain();
        let trees = enumerate_language(&domain, domain.initial(), 200, 24);
        assert!(!trees.is_empty());
        for t in trees {
            let doc = enc
                .decode(&t)
                .unwrap_or_else(|e| panic!("closure tree fails to decode: {t}: {e}"));
            // and encoding the decoded document gives back the same tree
            assert_eq!(enc.encode(&doc).unwrap(), t);
        }
    }
}

/// The paper style is genuinely not path-closed: some accepted trees do
/// not decode.
#[test]
fn paper_style_domain_strictly_larger() {
    let enc = Encoding::new(flip_dtd(), PcDataMode::Abstract);
    let domain = enc.domain();
    let trees = enumerate_language(&domain, domain.initial(), 400, 16);
    let undecodable = trees.iter().filter(|t| enc.decode(t).is_err()).count();
    assert!(
        undecodable > 0,
        "expected path-closure junk in the paper-style domain"
    );
}
