//! Property-based tests for the XML substrate: encodings, DTD parsing,
//! and the XML reader/writer.

use proptest::prelude::*;
use xtt_automata::enumerate_language;
use xtt_xml::encode::EncodingStyle;
use xtt_xml::{fcns_decode, fcns_encode, parse_xml, write_xml, Dtd, Encoding, PcDataMode, UTree};

/// Random documents valid for the xmlflip DTD: root(aⁿ bᵐ).
fn arb_flip_doc() -> impl Strategy<Value = UTree> {
    (0usize..8, 0usize..8).prop_map(|(n, m)| {
        let mut children = Vec::new();
        for _ in 0..n {
            children.push(UTree::leaf("a"));
        }
        for _ in 0..m {
            children.push(UTree::leaf("b"));
        }
        UTree::elem("root", children)
    })
}

/// Random library documents: books with author/title(/year), some with
/// title only, text values drawn from a 2-value universe.
fn arb_library_doc() -> impl Strategy<Value = UTree> {
    let value = prop_oneof![Just("v0"), Just("v1")];
    let book = (
        value.clone(),
        value.clone(),
        proptest::option::of(value.clone()),
        any::<bool>(),
    )
        .prop_map(|(a, t, y, title_only)| {
            if title_only {
                UTree::elem("BOOK", vec![UTree::elem("TITLE", vec![UTree::text(t)])])
            } else {
                let mut kids = vec![
                    UTree::elem("AUTHOR", vec![UTree::text(a)]),
                    UTree::elem("TITLE", vec![UTree::text(t)]),
                ];
                if let Some(y) = y {
                    kids.push(UTree::elem("YEAR", vec![UTree::text(y)]));
                }
                UTree::elem("BOOK", kids)
            }
        });
    proptest::collection::vec(book, 0..5).prop_map(|books| UTree::elem("LIBRARY", books))
}

fn flip_dtd() -> Dtd {
    Dtd::parse("<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >").unwrap()
}

fn library_dtd() -> Dtd {
    Dtd::parse(
        "<!ELEMENT LIBRARY (BOOK*) >\n\
         <!ELEMENT BOOK ((AUTHOR, TITLE, YEAR?) | TITLE) >\n\
         <!ELEMENT AUTHOR #PCDATA >\n\
         <!ELEMENT TITLE #PCDATA >\n\
         <!ELEMENT YEAR #PCDATA >",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flip_encoding_roundtrips_both_styles(doc in arb_flip_doc()) {
        for style in [EncodingStyle::Paper, EncodingStyle::PathClosed] {
            let enc = Encoding::with_style(flip_dtd(), PcDataMode::Abstract, style);
            let t = enc.encode(&doc).unwrap();
            prop_assert_eq!(enc.decode(&t).unwrap(), doc.clone());
            prop_assert!(enc.domain().accepts(&t), "domain rejects its own encoding");
        }
    }

    #[test]
    fn library_encoding_roundtrips(doc in arb_library_doc()) {
        let enc = Encoding::with_style(
            library_dtd(),
            PcDataMode::Valued(vec!["v0".into(), "v1".into()]),
            EncodingStyle::PathClosed,
        );
        let t = enc.encode(&doc).unwrap();
        prop_assert_eq!(enc.decode(&t).unwrap(), doc.clone());
        prop_assert!(enc.domain().accepts(&t));
    }

    #[test]
    fn fcns_roundtrips(doc in arb_library_doc()) {
        // fc/ns abstracts text; compare after the same abstraction
        let t = fcns_encode(&doc);
        let back = fcns_decode(&t).unwrap();
        prop_assert_eq!(abstract_text(&doc), back);
    }

    #[test]
    fn xml_write_parse_roundtrips(doc in arb_library_doc()) {
        let text = write_xml(&doc);
        prop_assert_eq!(parse_xml(&text).unwrap(), doc.clone());
        let pretty = xtt_xml::write_xml_pretty(&doc);
        prop_assert_eq!(parse_xml(&pretty).unwrap(), doc);
    }
}

fn abstract_text(doc: &UTree) -> UTree {
    match doc {
        UTree::Text(_) => UTree::text("pcdata"),
        UTree::Elem { label, children } => UTree::Elem {
            label: label.clone(),
            children: children.iter().map(abstract_text).collect(),
        },
    }
}

/// The decisive property of the path-closed style: every tree of the
/// domain automaton decodes to a document (language = closure).
#[test]
fn path_closed_domain_equals_encoding_language() {
    for dtd in [flip_dtd(), library_dtd()] {
        let enc = Encoding::with_style(dtd, PcDataMode::Abstract, EncodingStyle::PathClosed);
        let domain = enc.domain();
        let trees = enumerate_language(&domain, domain.initial(), 200, 24);
        assert!(!trees.is_empty());
        for t in trees {
            let doc = enc
                .decode(&t)
                .unwrap_or_else(|e| panic!("closure tree fails to decode: {t}: {e}"));
            // and encoding the decoded document gives back the same tree
            assert_eq!(enc.encode(&doc).unwrap(), t);
        }
    }
}

/// The paper style is genuinely not path-closed: some accepted trees do
/// not decode.
#[test]
fn paper_style_domain_strictly_larger() {
    let enc = Encoding::new(flip_dtd(), PcDataMode::Abstract);
    let domain = enc.domain();
    let trees = enumerate_language(&domain, domain.initial(), 400, 16);
    let undecodable = trees.iter().filter(|t| enc.decode(t).is_err()).count();
    assert!(
        undecodable > 0,
        "expected path-closure junk in the paper-style domain"
    );
}
