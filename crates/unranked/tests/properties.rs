//! Property-based tests pinning the streaming pipeline to the batch one:
//!
//! * streaming encode ≡ `Encoding::encode` / `fcns_encode`, **event for
//!   event**, on random documents (both styles, both pcdata modes);
//! * streaming decode ∘ streaming encode ≡ the batch round trip, byte
//!   for byte;
//! * the lockstep domain guard over streaming unranked events consumes
//!   strictly fewer events than the document holds on out-of-domain
//!   documents (fail-fast without tokenizing the tail).

use std::sync::Arc;

use proptest::prelude::*;
use xtt_trees::{RankedAlphabet, TreeEvent};
use xtt_typecheck::{domain_guard, GuardedEvents};
use xtt_unranked::XmlCodec;
use xtt_xml::encode::EncodingStyle;
use xtt_xml::{fcns_decode, fcns_encode, parse_xml, write_xml, Dtd, Encoding, PcDataMode, UTree};

/// Deterministic document builder: interpret a byte string as build
/// operations (open/close elements, leaves, text) on a stack.
fn doc_from_ops(ops: &[u8]) -> UTree {
    let mut stack: Vec<(String, Vec<UTree>)> = vec![("root".to_owned(), Vec::new())];
    for &op in ops {
        match op % 6 {
            0 => stack.push(("a".to_owned(), Vec::new())),
            1 => stack.push(("b".to_owned(), Vec::new())),
            2 => stack.push(("c".to_owned(), Vec::new())),
            3 => {
                if stack.len() > 1 {
                    let (label, children) = stack.pop().unwrap();
                    stack
                        .last_mut()
                        .unwrap()
                        .1
                        .push(UTree::Elem { label, children });
                }
            }
            4 => stack.last_mut().unwrap().1.push(UTree::leaf("d")),
            _ => stack.last_mut().unwrap().1.push(UTree::text("t")),
        }
    }
    while stack.len() > 1 {
        let (label, children) = stack.pop().unwrap();
        stack
            .last_mut()
            .unwrap()
            .1
            .push(UTree::Elem { label, children });
    }
    let (label, children) = stack.pop().unwrap();
    UTree::Elem { label, children }
}

fn arb_doc() -> impl Strategy<Value = UTree> {
    proptest::collection::vec(any::<u8>(), 0..60).prop_map(|ops| doc_from_ops(&ops))
}

/// Random documents valid for the xmlflip DTD: root(aⁿ bᵐ).
fn arb_flip_doc() -> impl Strategy<Value = UTree> {
    (0usize..8, 0usize..8).prop_map(|(n, m)| {
        let mut children = Vec::new();
        for _ in 0..n {
            children.push(UTree::leaf("a"));
        }
        for _ in 0..m {
            children.push(UTree::leaf("b"));
        }
        UTree::elem("root", children)
    })
}

/// Random library documents with text from a 2-value universe.
fn arb_library_doc() -> impl Strategy<Value = UTree> {
    let value = prop_oneof![Just("v0"), Just("v1")];
    let book = (
        value.clone(),
        value.clone(),
        proptest::option::of(value),
        any::<bool>(),
    )
        .prop_map(|(a, t, y, title_only)| {
            if title_only {
                UTree::elem("BOOK", vec![UTree::elem("TITLE", vec![UTree::text(t)])])
            } else {
                let mut kids = vec![
                    UTree::elem("AUTHOR", vec![UTree::text(a)]),
                    UTree::elem("TITLE", vec![UTree::text(t)]),
                ];
                if let Some(y) = y {
                    kids.push(UTree::elem("YEAR", vec![UTree::text(y)]));
                }
                UTree::elem("BOOK", kids)
            }
        });
    proptest::collection::vec(book, 0..5).prop_map(|books| UTree::elem("LIBRARY", books))
}

fn flip_dtd() -> Dtd {
    Dtd::parse("<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >").unwrap()
}

fn library_dtd() -> Dtd {
    Dtd::parse(
        "<!ELEMENT LIBRARY (BOOK*) >\n\
         <!ELEMENT BOOK ((AUTHOR, TITLE, YEAR?) | TITLE) >\n\
         <!ELEMENT AUTHOR #PCDATA >\n\
         <!ELEMENT TITLE #PCDATA >\n\
         <!ELEMENT YEAR #PCDATA >",
    )
    .unwrap()
}

fn stream_events(codec: &XmlCodec, xml: &str) -> Vec<TreeEvent> {
    codec
        .events(xml)
        .collect::<Result<Vec<_>, _>>()
        .unwrap_or_else(|e| panic!("streaming encode of {xml}: {e}"))
}

/// A dtop over the fc/ns alphabet that copies `a`-only documents and is
/// undefined on any inspected `b` — the partial transducer whose domain
/// guard the fail-fast property exercises.
fn a_only_copier() -> xtt_transducer::Dtop {
    let alpha = RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
    let mut b = xtt_transducer::DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q0");
    b.add_state("q");
    b.set_axiom_str("<q0,x0>").unwrap();
    b.add_rule_str("q0", "root", "root(<q,x1>,<q,x2>)").unwrap();
    b.add_rule_str("q", "a", "a(<q,x1>,<q,x2>)").unwrap();
    b.add_rule_str("q", "#", "#").unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// fc/ns: streaming encode emits exactly `fcns_encode(doc).events()`.
    #[test]
    fn fcns_streaming_equals_batch_event_for_event(doc in arb_doc()) {
        let xml = write_xml(&doc);
        let parsed = parse_xml(&xml).unwrap();
        let batch: Vec<TreeEvent> = fcns_encode(&parsed).events().collect();
        prop_assert_eq!(stream_events(&XmlCodec::fcns(), &xml), batch);
    }

    /// fc/ns: streaming decode ∘ streaming encode ≡ the batch round trip
    /// `write_xml(fcns_decode(fcns_encode(doc)))`, byte for byte.
    #[test]
    fn fcns_decode_encode_is_identity(doc in arb_doc()) {
        let xml = write_xml(&doc);
        let parsed = parse_xml(&xml).unwrap();
        let codec = XmlCodec::fcns();
        let streamed = codec.ranked_tree(&xml).unwrap();
        let batch_roundtrip = write_xml(&fcns_decode(&fcns_encode(&parsed)).unwrap());
        prop_assert_eq!(codec.decode_tree(&streamed).unwrap(), batch_roundtrip);
    }

    /// DTD (both styles): streaming encode ≡ `Encoding::encode`, event
    /// for event, and decode ∘ encode is the identity on documents.
    #[test]
    fn dtd_flip_streaming_equals_batch(doc in arb_flip_doc()) {
        let xml = write_xml(&doc);
        for style in [EncodingStyle::Paper, EncodingStyle::PathClosed] {
            let enc = Arc::new(Encoding::with_style(flip_dtd(), PcDataMode::Abstract, style));
            let codec = XmlCodec::dtd(Arc::clone(&enc));
            let batch = enc.encode(&doc).unwrap();
            let batch_events: Vec<TreeEvent> = batch.events().collect();
            prop_assert_eq!(stream_events(&codec, &xml), batch_events);
            prop_assert_eq!(codec.decode_tree(&batch).unwrap(), xml.clone());
        }
    }

    /// DTD with valued text: the alternation/option machinery and the
    /// pcdata universe stream identically to batch, and text survives
    /// the round trip.
    #[test]
    fn dtd_library_streaming_equals_batch(doc in arb_library_doc()) {
        let xml = write_xml(&doc);
        let mode = PcDataMode::Valued(vec!["v0".into(), "v1".into()]);
        for style in [EncodingStyle::Paper, EncodingStyle::PathClosed] {
            let enc = Arc::new(Encoding::with_style(library_dtd(), mode.clone(), style));
            let codec = XmlCodec::dtd(Arc::clone(&enc));
            let batch = enc.encode(&doc).unwrap();
            let batch_events: Vec<TreeEvent> = batch.events().collect();
            prop_assert_eq!(stream_events(&codec, &xml), batch_events);
            prop_assert_eq!(parse_xml(&codec.decode_tree(&batch).unwrap()).unwrap(), doc.clone());
        }
    }

    /// Fail-fast: on a document whose first `b` sits at position `k` of
    /// `n ≥ k+1` children, the lockstep guard over *streaming* unranked
    /// events consumes strictly fewer events than the document holds —
    /// the tail beyond the violation is never encoded.
    #[test]
    fn guarded_streaming_consumes_strictly_fewer_events_when_rejecting(
        k in 0usize..6, tail in 1usize..30,
    ) {
        let m = a_only_copier();
        let guard = domain_guard(&m).unwrap();
        let mut children = vec!["<a/>"; k].join("");
        children.push_str("<b/>");
        children.push_str(&"<a/>".repeat(tail));
        let xml = format!("<root>{children}</root>");
        let codec = XmlCodec::fcns();
        let total = stream_events(&codec, &xml).len() as u64;
        let events = codec.events(&xml).map(Result::unwrap);
        let mut guarded = GuardedEvents::new(&guard, events);
        (&mut guarded).for_each(drop);
        prop_assert!(guarded.violation().is_some(), "document must be rejected");
        prop_assert!(
            guarded.events_consumed() < total,
            "consumed {} of {} events",
            guarded.events_consumed(),
            total
        );
        // In-domain documents pass every event through unchanged.
        let ok_xml = format!("<root>{}</root>", "<a/>".repeat(k + tail));
        let ok_events = codec.events(&ok_xml).map(Result::unwrap);
        let mut guarded = GuardedEvents::new(&guard, ok_events);
        let passed = (&mut guarded).count() as u64;
        prop_assert!(guarded.violation().is_none());
        prop_assert_eq!(passed, stream_events(&codec, &ok_xml).len() as u64);
    }
}
