//! Streaming first-child/next-sibling encoding and decoding.
//!
//! The batch pipeline (`xtt_xml::fcns_encode`) builds the whole `UTree`,
//! then the whole ranked tree, before the first event reaches the engine.
//! [`FcnsStreamEncoder`] instead maps SAX events straight to the ranked
//! pre-order events of the fc/ns encoding with **O(depth)** live state:
//! one counter per open XML element.
//!
//! The inversion that makes this nontrivial: under fc/ns the *next
//! sibling* of a node is nested inside it (`fcns(f(w), rest) = f(fcns(w),
//! fcns(rest))`), so an element's `Close` event is emitted only when its
//! whole sibling tail has been emitted — the encoder tracks, per open XML
//! element, how many of its children's ranked `Open`s are still awaiting
//! their cascaded `Close`.
//!
//! [`FcnsXmlWriter`] is the inverse: it consumes the pre-order events of
//! an fc/ns-encoded tree (a materialized output tree, or a prefix as it
//! is produced) and writes XML text incrementally, again in O(depth).

use std::collections::VecDeque;

use xtt_trees::{Symbol, TreeEvent};
use xtt_xml::{EncodeError, XmlEvent};

use crate::util::{escape_text, is_xml_name};

/// The text symbol of the fc/ns encoding (`xtt_xml::fcns::PCDATA`).
const PCDATA: &str = "pcdata";

/// Incremental fc/ns encoder; feed it [`XmlEvent`]s, it emits the ranked
/// [`TreeEvent`]s of `fcns_encode(doc)` in order.
pub struct FcnsStreamEncoder {
    /// `Some(sentinel)` = bounded mode: element names are resolved with
    /// [`Symbol::lookup`] and unknown names map to the sentinel, so
    /// untrusted documents never grow the process-global interner.
    sentinel: Option<Symbol>,
    hash: Symbol,
    pcdata: Symbol,
    /// Per open XML element: ranked `Open`s emitted for its children that
    /// are still awaiting their cascaded `Close`.
    open_children: Vec<u32>,
    done: bool,
    peak: usize,
}

impl FcnsStreamEncoder {
    /// Trusted-input encoder: element names are interned faithfully.
    pub fn new() -> FcnsStreamEncoder {
        FcnsStreamEncoder::with_sentinel(None)
    }

    /// Bounded encoder for untrusted traffic: names never seen by any
    /// transducer alphabet resolve to `sentinel` instead of growing the
    /// interner (evaluation is unaffected — an out-of-vocabulary symbol
    /// has no rules either way).
    pub fn with_sentinel(sentinel: Option<Symbol>) -> FcnsStreamEncoder {
        FcnsStreamEncoder {
            sentinel,
            hash: Symbol::new("#"),
            pcdata: Symbol::new(PCDATA),
            open_children: Vec::new(),
            done: false,
            peak: 0,
        }
    }

    fn resolve(&self, name: &str) -> Symbol {
        match self.sentinel {
            None => Symbol::new(name),
            Some(s) => Symbol::lookup(name).unwrap_or(s),
        }
    }

    /// Live encoder frames (one per open XML element) — the O(depth)
    /// claim, measured by experiment E12.
    pub fn live_frames(&self) -> usize {
        self.open_children.len()
    }

    /// High-water mark of [`FcnsStreamEncoder::live_frames`].
    pub fn peak_frames(&self) -> usize {
        self.peak
    }

    /// The document's encoding is complete (root closed).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True right after an element's `Start` was fed and nothing else:
    /// the last ranked event emitted was that element's `Open`, and its
    /// fc/ns subtree (content *and* sibling tail) is still entirely ahead
    /// — the precondition for [`FcnsStreamEncoder::skip_open_element`].
    pub fn just_opened_element(&self) -> bool {
        !self.done && self.open_children.last() == Some(&0)
    }

    /// Fast-forward bookkeeping for a skipped fc/ns subtree. Under fc/ns
    /// a node's *next sibling* is nested inside it, so the ranked subtree
    /// of a just-opened element `e` covers `e`'s content **and** its
    /// entire following sibling forest, ending at the cascaded `Close`
    /// emitted when `e`'s parent's end tag arrives. The caller has
    /// fast-forwarded the raw tokenizer accordingly (past `e`'s end tag,
    /// every following sibling, and the parent's end tag — or just past
    /// `e`'s end tag when `e` is the root); this drops the frames those
    /// events would have popped and queues whatever follows the skipped
    /// subtree (the root trailer, when the parent was the root).
    ///
    /// Precondition: [`FcnsStreamEncoder::just_opened_element`].
    pub fn skip_open_element(&mut self, out: &mut VecDeque<TreeEvent>) {
        debug_assert!(self.just_opened_element());
        self.open_children.pop().expect("skipped element frame");
        match self.open_children.pop() {
            None => {
                // The skipped element was the root: its ranked subtree is
                // the whole remainder of the stream.
                self.done = true;
            }
            Some(parent_count) => {
                // The parent's frame is consumed with its end tag; the
                // parent's own ranked `Close` cascades at *its* parent's
                // end tag and is already counted there. The skipped
                // element's *preceding* siblings, however, are ranked
                // ancestors of the skipped subtree (the sibling slot
                // nests), so their cascaded `Close`s — emitted at the
                // parent's end tag — fall outside it and are still due.
                for _ in 0..parent_count - 1 {
                    out.push_back(TreeEvent::Close);
                }
                if self.open_children.is_empty() {
                    // The parent was the root: the events after the
                    // skipped subtree are the root trailer.
                    out.push_back(TreeEvent::Open(self.hash));
                    out.push_back(TreeEvent::Close);
                    out.push_back(TreeEvent::Close);
                    self.done = true;
                }
            }
        }
    }

    /// Feeds one SAX event, appending the ranked events it determines.
    /// The tokenizer guarantees well-nested input; `Err` is only possible
    /// on misuse (events after the root closed).
    pub fn feed(
        &mut self,
        event: &XmlEvent<'_>,
        out: &mut VecDeque<TreeEvent>,
    ) -> Result<(), EncodeError> {
        if self.done {
            return Err(EncodeError::Malformed(
                "XML event after the document closed".into(),
            ));
        }
        match event {
            XmlEvent::Start { name, .. } => {
                out.push_back(TreeEvent::Open(self.resolve(name)));
                if let Some(parent) = self.open_children.last_mut() {
                    *parent += 1;
                }
                self.open_children.push(0);
                self.peak = self.peak.max(self.open_children.len());
            }
            XmlEvent::Text(_) => {
                // One text node = one `pcdata` leaf in the first-child
                // slot position; its own first-child slot is `#` now, its
                // sibling slot cascades like an element's.
                out.push_back(TreeEvent::Open(self.pcdata));
                out.push_back(TreeEvent::Open(self.hash));
                out.push_back(TreeEvent::Close);
                if let Some(parent) = self.open_children.last_mut() {
                    *parent += 1;
                }
            }
            XmlEvent::End(_) => {
                let opens = self
                    .open_children
                    .pop()
                    .expect("tokenizer balances start/end");
                // Terminator of this element's child forest (its
                // first-child slot when it has no children, the sibling
                // slot of its last child otherwise) …
                out.push_back(TreeEvent::Open(self.hash));
                out.push_back(TreeEvent::Close);
                // … then the cascaded closes of every child still open.
                for _ in 0..opens {
                    out.push_back(TreeEvent::Close);
                }
                if self.open_children.is_empty() {
                    // Document root: its sibling forest is empty.
                    out.push_back(TreeEvent::Open(self.hash));
                    out.push_back(TreeEvent::Close);
                    out.push_back(TreeEvent::Close);
                    self.done = true;
                }
            }
        }
        Ok(())
    }
}

impl Default for FcnsStreamEncoder {
    fn default() -> FcnsStreamEncoder {
        FcnsStreamEncoder::new()
    }
}

/// One open node of the incremental fc/ns decoder.
enum WFrame {
    /// An element: `slot` is 0 while its content forest is in flight, 1
    /// while its sibling forest is; `head_open` until the start tag's `>`
    /// (or `/>`) is decided.
    Elem {
        label: Symbol,
        slot: u8,
        head_open: bool,
    },
    /// A `pcdata` node (text already written).
    Pcdata { slot: u8 },
    /// A `#` leaf.
    Hash,
}

/// Incremental fc/ns → XML writer; feed it the pre-order events of an
/// fc/ns-encoded tree, then [`FcnsXmlWriter::finish`]. Output is
/// byte-identical to `write_xml(fcns_decode(t))` and the writer rejects
/// trees that are not fc/ns encodings (non-binary nodes, `#` with
/// children, forests of more than one document).
pub struct FcnsXmlWriter {
    out: String,
    stack: Vec<WFrame>,
    hash: Symbol,
    pcdata: Symbol,
    done: bool,
}

impl FcnsXmlWriter {
    pub fn new() -> FcnsXmlWriter {
        FcnsXmlWriter {
            out: String::new(),
            stack: Vec::new(),
            hash: Symbol::new("#"),
            pcdata: Symbol::new(PCDATA),
            done: false,
        }
    }

    /// Feeds one event of the encoded tree.
    pub fn feed(&mut self, event: TreeEvent) -> Result<(), EncodeError> {
        if self.done {
            return Err(EncodeError::Malformed(
                "events after the encoded document closed".into(),
            ));
        }
        match event {
            TreeEvent::Open(sym) => self.open(sym),
            TreeEvent::Close => self.close(),
        }
    }

    /// Drains the XML text produced so far (the committed output prefix).
    /// Concatenating every drain with [`FcnsXmlWriter::finish`]'s
    /// remainder yields exactly the batch output.
    pub fn pending(&mut self) -> String {
        std::mem::take(&mut self.out)
    }

    fn open(&mut self, sym: Symbol) -> Result<(), EncodeError> {
        let is_hash = sym == self.hash;
        // Validate the position this node occupies.
        match self.stack.last() {
            None if is_hash => {
                return Err(EncodeError::Malformed(
                    "top level decodes to 0 trees, expected 1".into(),
                ));
            }
            None => {}
            Some(WFrame::Hash) => {
                return Err(EncodeError::Malformed("# with children".into()));
            }
            Some(WFrame::Pcdata { slot: 0 }) if !is_hash => {
                return Err(EncodeError::Malformed("text node with children".into()));
            }
            Some(WFrame::Elem { slot: 2, .. }) | Some(WFrame::Pcdata { slot: 2 }) => {
                return Err(EncodeError::Malformed(format!(
                    "fc/ns node {sym} exceeds rank 2"
                )));
            }
            _ => {}
        }
        // A second top-level tree: the root's sibling slot must be `#`.
        if self.stack.len() == 1 && !is_hash {
            if let Some(WFrame::Elem { slot: 1, .. } | WFrame::Pcdata { slot: 1 }) =
                self.stack.last()
            {
                return Err(EncodeError::Malformed(
                    "top level decodes to more than one tree".into(),
                ));
            }
        }
        if is_hash {
            self.stack.push(WFrame::Hash);
            return Ok(());
        }
        // Content is about to appear: finish the enclosing start tag.
        if let Some(WFrame::Elem {
            slot: 0, head_open, ..
        }) = self.stack.last_mut()
        {
            if *head_open {
                self.out.push('>');
                *head_open = false;
            }
        }
        if sym == self.pcdata {
            self.out.push_str(&escape_text(PCDATA));
            self.stack.push(WFrame::Pcdata { slot: 0 });
        } else {
            let name = sym.name();
            if !is_xml_name(name) {
                return Err(EncodeError::Malformed(format!(
                    "symbol {name} is not an XML element name"
                )));
            }
            self.out.push('<');
            self.out.push_str(name);
            self.stack.push(WFrame::Elem {
                label: sym,
                slot: 0,
                head_open: true,
            });
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), EncodeError> {
        let frame = self
            .stack
            .pop()
            .ok_or_else(|| EncodeError::Malformed("unbalanced close event".into()))?;
        match frame {
            WFrame::Hash => {}
            WFrame::Elem { slot, .. } | WFrame::Pcdata { slot } => {
                if slot != 2 {
                    return Err(EncodeError::Malformed(format!(
                        "fc/ns node closed with {slot} of 2 subtrees"
                    )));
                }
            }
        }
        // The completed subtree fills its parent's next slot.
        match self.stack.last_mut() {
            None => self.done = true,
            Some(WFrame::Elem {
                label,
                slot,
                head_open,
            }) => {
                if *slot == 0 {
                    // Content forest complete: the end tag goes *before*
                    // the sibling forest (which is XML-level sibling
                    // text, not nested content).
                    if *head_open {
                        self.out.push_str("/>");
                        *head_open = false;
                    } else {
                        self.out.push_str("</");
                        self.out.push_str(label.name());
                        self.out.push('>');
                    }
                }
                *slot += 1;
            }
            Some(WFrame::Pcdata { slot }) => *slot += 1,
            Some(WFrame::Hash) => unreachable!("# children are rejected at open"),
        }
        Ok(())
    }

    /// Finishes the document and returns the XML text.
    pub fn finish(self) -> Result<String, EncodeError> {
        if !self.done || !self.stack.is_empty() {
            return Err(EncodeError::Malformed(
                "encoded event stream ended early".into(),
            ));
        }
        Ok(self.out)
    }
}

impl Default for FcnsXmlWriter {
    fn default() -> FcnsXmlWriter {
        FcnsXmlWriter::new()
    }
}
