//! Small shared helpers for the streaming writers.

/// True iff `s` can be written as an XML element name.
pub(crate) fn is_xml_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

/// Escapes character data for XML output (matches `xtt_xml::write_xml`).
pub(crate) fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}
