//! # xtt-unranked
//!
//! The streaming unranked-XML pipeline: Section 10's ranked encodings
//! driven **incrementally** from the SAX tokenizer, with no intermediate
//! trees on either side.
//!
//! The batch pipeline materializes three representations of every
//! document — XML text → [`xtt_xml::UTree`] → ranked
//! [`xtt_trees::Tree`] → events — before the streaming engine sees the
//! first event, which makes "streaming" a fiction on real XML. This
//! crate replaces the middle with two O(depth) state machines per
//! encoding:
//!
//! * **encode** — [`FcnsStreamEncoder`] / [`DtdStreamEncoder`] map
//!   [`xtt_xml::XmlEvent`]s to the pre-order [`xtt_trees::TreeEvent`]s
//!   of the fc/ns or DTD-based encoding, event-for-event identical to
//!   `fcns_encode(doc).events()` / `Encoding::encode(doc).events()`
//!   (pinned by property tests). The DTD encoder runs the content
//!   models' LL(1) derivation with an explicit frame stack; the fc/ns
//!   encoder inverts the next-sibling nesting with one counter per open
//!   element.
//! * **decode** — [`FcnsXmlWriter`] / [`DtdXmlWriter`] consume the
//!   events of an encoded *output* tree (or a prefix of them, for
//!   order-preserving rule regions whose output is determined early) and
//!   write unranked XML text incrementally.
//! * **[`XmlCodec`]** bundles a direction pair (fc/ns, or an
//!   input/output DTD-encoding pair) behind one handle; `xtt-engine`'s
//!   `DocFormat::Encoded` and `xtt-serve`'s `?encoding=` are built on
//!   it, and [`UnrankedEvents`] is the adaptor the streaming evaluator
//!   (and its lockstep domain guard) consume directly.

pub mod codec;
pub mod dtd;
pub mod error;
pub mod fcns;
mod util;

pub use codec::{UnrankedEvents, XmlCodec, XmlWriter};
pub use dtd::{DtdStreamEncoder, DtdXmlWriter};
pub use error::UnrankedError;
pub use fcns::{FcnsStreamEncoder, FcnsXmlWriter};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use xtt_trees::{Symbol, Tree, TreeEvent};
    use xtt_xml::{fcns_encode, parse_xml, write_xml, Dtd, Encoding, EncodingStyle, PcDataMode};

    use super::*;

    fn stream_events(codec: &XmlCodec, xml: &str) -> Vec<TreeEvent> {
        codec
            .events(xml)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|e| panic!("streaming encode of {xml}: {e}"))
    }

    #[test]
    fn fcns_streaming_matches_batch_on_the_paper_example() {
        let xml = "<root><a/><a/><b/></root>";
        let codec = XmlCodec::fcns();
        let batch: Vec<TreeEvent> = fcns_encode(&parse_xml(xml).unwrap()).events().collect();
        assert_eq!(stream_events(&codec, xml), batch);
        assert_eq!(
            codec.ranked_tree(xml).unwrap().to_string(),
            "root(a(#,a(#,b(#,#))),#)"
        );
    }

    #[test]
    fn fcns_streaming_handles_text_and_nesting() {
        for xml in [
            "<t>hello</t>",
            "<root/>",
            "<x><y><z/></y><y/>tail</x>",
            "<a><b><c><d/></c></b></a>",
        ] {
            let codec = XmlCodec::fcns();
            let batch: Vec<TreeEvent> = fcns_encode(&parse_xml(xml).unwrap()).events().collect();
            assert_eq!(stream_events(&codec, xml), batch, "{xml}");
        }
    }

    #[test]
    fn fcns_encoder_is_o_depth() {
        // Wide document: 1000 siblings, depth 2 — the encoder must not
        // hold per-sibling state.
        let xml = format!("<root>{}</root>", "<a/>".repeat(1000));
        let mut it = XmlCodec::fcns().events(&xml);
        (&mut it).for_each(|r| {
            r.unwrap();
        });
        assert_eq!(it.peak_frames(), 2);
    }

    #[test]
    fn fcns_bounded_mode_never_interns_document_names() {
        let sentinel = Symbol::new("\u{1}test:unknown");
        let xml = "<root><fcns-never-interned-xyz/></root>";
        let codec = XmlCodec::fcns_bounded(sentinel);
        let t = codec.ranked_tree(xml).unwrap();
        assert_eq!(Symbol::lookup("fcns-never-interned-xyz"), None);
        assert!(t.preorder().any(|n| n.symbol() == sentinel));
    }

    #[test]
    fn fcns_writer_inverts_the_encoding() {
        for xml in [
            "<root><a/><a/><b/></root>",
            "<root/>",
            "<x><y><z/></y><y/></x>",
        ] {
            let codec = XmlCodec::fcns();
            let t = codec.ranked_tree(xml).unwrap();
            assert_eq!(codec.decode_tree(&t).unwrap(), xml, "{xml}");
        }
        // Text decodes to the pcdata abstraction, like fcns_decode.
        let codec = XmlCodec::fcns();
        let t = codec.ranked_tree("<t>hello</t>").unwrap();
        assert_eq!(codec.decode_tree(&t).unwrap(), "<t>pcdata</t>");
    }

    #[test]
    fn fcns_writer_rejects_junk() {
        let codec = XmlCodec::fcns();
        for bad in ["#(a(#,#),#)", "a(#)", "a(#,#,#)", "root(#,a(#,#))"] {
            let t = xtt_trees::parse_tree(bad).unwrap();
            assert!(codec.decode_tree(&t).is_err(), "{bad}");
        }
    }

    fn flip_encoding(style: EncodingStyle) -> Arc<Encoding> {
        let dtd = Dtd::parse("<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >")
            .unwrap();
        Arc::new(Encoding::with_style(dtd, PcDataMode::Abstract, style))
    }

    #[test]
    fn dtd_streaming_matches_batch_on_the_paper_example() {
        for style in [EncodingStyle::Paper, EncodingStyle::PathClosed] {
            let enc = flip_encoding(style);
            let codec = XmlCodec::dtd(Arc::clone(&enc));
            for xml in [
                "<root><a/><a/><b/></root>",
                "<root/>",
                "<root><b/></root>",
                "<root><a/><b/><b/><b/></root>",
            ] {
                let batch = enc.encode(&parse_xml(xml).unwrap()).unwrap();
                let batch_events: Vec<TreeEvent> = batch.events().collect();
                assert_eq!(
                    stream_events(&codec, xml),
                    batch_events,
                    "{xml} ({style:?})"
                );
                assert_eq!(codec.ranked_tree(xml).unwrap(), batch, "{xml} ({style:?})");
            }
        }
    }

    #[test]
    fn dtd_streaming_rejects_invalid_documents_like_batch() {
        let enc = flip_encoding(EncodingStyle::Paper);
        let codec = XmlCodec::dtd(Arc::clone(&enc));
        for xml in [
            "<root><b/><a/></root>",    // b before a violates (a*,b*)
            "<root><c/></root>",        // undeclared element
            "<other/>",                 // wrong root
            "<root><a><a/></a></root>", // a is EMPTY
            "<root>text</root>",        // no #PCDATA in the model
        ] {
            let doc = parse_xml(xml).unwrap();
            assert!(enc.encode(&doc).is_err(), "batch must reject {xml}");
            let streamed: Result<Vec<_>, _> = codec.events(xml).collect();
            assert!(streamed.is_err(), "streaming must reject {xml}");
        }
    }

    #[test]
    fn dtd_writer_inverts_the_encoding() {
        let enc = flip_encoding(EncodingStyle::Paper);
        let codec = XmlCodec::dtd(Arc::clone(&enc));
        for xml in [
            "<root><a/><a/><b/></root>",
            "<root/>",
            "<root><b/><b/></root>",
        ] {
            let t = codec.ranked_tree(xml).unwrap();
            assert_eq!(codec.decode_tree(&t).unwrap(), xml, "{xml}");
        }
    }

    #[test]
    fn dtd_library_with_valued_text_roundtrips() {
        let dtd = Dtd::parse(
            "<!ELEMENT LIBRARY (BOOK*) >\n\
             <!ELEMENT BOOK ((AUTHOR, TITLE, YEAR?) | TITLE) >\n\
             <!ELEMENT AUTHOR #PCDATA >\n\
             <!ELEMENT TITLE #PCDATA >\n\
             <!ELEMENT YEAR #PCDATA >",
        )
        .unwrap();
        let enc = Arc::new(Encoding::new(
            dtd,
            PcDataMode::Valued(vec!["dune".into(), "herbert".into(), "1965".into()]),
        ));
        let codec = XmlCodec::dtd(Arc::clone(&enc));
        let xml = "<LIBRARY><BOOK><AUTHOR>herbert</AUTHOR><TITLE>dune</TITLE>\
                   <YEAR>1965</YEAR></BOOK><BOOK><TITLE>dune</TITLE></BOOK></LIBRARY>";
        let doc = parse_xml(xml).unwrap();
        let batch = enc.encode(&doc).unwrap();
        assert_eq!(codec.ranked_tree(xml).unwrap(), batch);
        assert_eq!(parse_xml(&codec.decode_tree(&batch).unwrap()).unwrap(), doc);
        // A value outside the universe fails in both pipelines.
        let bad = "<LIBRARY><BOOK><TITLE>unknown-title</TITLE></BOOK></LIBRARY>";
        assert!(enc.encode(&parse_xml(bad).unwrap()).is_err());
        assert!(codec.ranked_tree(bad).is_err());
    }

    #[test]
    fn dtd_encoder_is_o_depth_on_recursive_models() {
        let dtd = Dtd::parse("<!ELEMENT n (n?) >").unwrap();
        let enc = Arc::new(Encoding::new(dtd, PcDataMode::Abstract));
        let depth = 500;
        let xml = format!("{}{}", "<n>".repeat(depth), "</n>".repeat(depth));
        let codec = XmlCodec::dtd(Arc::clone(&enc));
        let mut it = codec.events(&xml);
        (&mut it).for_each(|r| {
            r.unwrap();
        });
        // One element frame + one content frame per level, nothing more.
        assert!(it.peak_frames() <= 2 * depth + 2, "{}", it.peak_frames());
        // Wide documents stay shallow.
        let dtd = Dtd::parse("<!ELEMENT root (a*) >\n<!ELEMENT a EMPTY >").unwrap();
        let enc = Arc::new(Encoding::new(dtd, PcDataMode::Abstract));
        let xml = format!("<root>{}</root>", "<a/>".repeat(1000));
        let codec = XmlCodec::dtd(enc);
        let mut it = codec.events(&xml);
        (&mut it).for_each(|r| {
            r.unwrap();
        });
        assert!(it.peak_frames() <= 4, "{}", it.peak_frames());
    }

    #[test]
    fn writer_accepts_event_prefixes_incrementally() {
        // The writer is usable on prefixes: feed events one at a time and
        // observe no buffering requirement (no Err until a real error).
        let codec = XmlCodec::fcns();
        let t = codec.ranked_tree("<root><a/><b/></root>").unwrap();
        let mut w = codec.writer();
        let events: Vec<TreeEvent> = t.events().collect();
        for ev in &events[..events.len() - 1] {
            w.feed(*ev).unwrap();
        }
        // Unfinished prefix: finish() reports the stream ended early.
        assert!(w.finish().is_err());
        let mut w = codec.writer();
        for ev in events {
            w.feed(ev).unwrap();
        }
        assert_eq!(w.finish().unwrap(), "<root><a/><b/></root>");
    }

    #[test]
    fn malformed_xml_surfaces_as_a_tokenizer_error() {
        let codec = XmlCodec::fcns();
        let result: Result<Vec<_>, _> = codec.events("<root><a></root>").collect();
        assert!(matches!(result, Err(UnrankedError::Xml(_))));
        // Iterator is fused after the error.
        let mut it = codec.events("<root><a></root>");
        while let Some(Ok(_)) = it.next() {}
        assert!(it.next().is_none());
    }

    #[test]
    fn wide_star_lists_match_batch_exactly() {
        // Cons-cell cascades: a long a-list closes all at once at the
        // first b; pin the whole event stream against batch.
        let enc = flip_encoding(EncodingStyle::Paper);
        let codec = XmlCodec::dtd(Arc::clone(&enc));
        let xml = format!("<root>{}{}</root>", "<a/>".repeat(40), "<b/>".repeat(17));
        let batch: Vec<TreeEvent> = enc
            .encode(&parse_xml(&xml).unwrap())
            .unwrap()
            .events()
            .collect();
        assert_eq!(stream_events(&codec, &xml), batch);
    }

    #[test]
    fn decode_tree_matches_write_xml_of_batch_decode() {
        let enc = flip_encoding(EncodingStyle::Paper);
        let codec = XmlCodec::dtd(Arc::clone(&enc));
        let xml = "<root><a/><b/><b/></root>";
        let t: Tree = codec.ranked_tree(xml).unwrap();
        let batch = write_xml(&enc.decode(&t).unwrap());
        assert_eq!(codec.decode_tree(&t).unwrap(), batch);
    }
}
