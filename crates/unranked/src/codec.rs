//! [`XmlCodec`] — one handle bundling an encoding direction pair (XML →
//! ranked events, ranked tree → XML) for the engine and the server.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use xtt_trees::{tree_from_events, Symbol, Tree, TreeEvent};
use xtt_xml::{xml_events, Encoding, XmlEventReader};

use crate::dtd::{DtdStreamEncoder, DtdXmlWriter};
use crate::error::UnrankedError;
use crate::fcns::{FcnsStreamEncoder, FcnsXmlWriter};

/// How unranked XML maps to ranked trees and back. Cheap to clone (the
/// DTD variant shares its compiled [`Encoding`]s by `Arc`).
#[derive(Clone)]
pub enum XmlCodec {
    /// The classical first-child/next-sibling encoding. `sentinel`
    /// switches the encoder to bounded symbol resolution (untrusted
    /// traffic never grows the interner).
    Fcns { sentinel: Option<Symbol> },
    /// A DTD-based encoding pair: documents are encoded with `input`,
    /// output trees decoded with `output` (they differ when the
    /// transformation changes the schema, e.g. the paper's `xmlflip`).
    Dtd {
        input: Arc<Encoding>,
        output: Arc<Encoding>,
    },
}

impl fmt::Debug for XmlCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlCodec::Fcns { sentinel } => {
                write!(f, "XmlCodec::Fcns {{ bounded: {} }}", sentinel.is_some())
            }
            XmlCodec::Dtd { input, output } => write!(
                f,
                "XmlCodec::Dtd {{ input root: <{}>, output root: <{}> }}",
                input.dtd().root(),
                output.dtd().root()
            ),
        }
    }
}

impl XmlCodec {
    /// fc/ns with faithful symbol interning (trusted input).
    pub fn fcns() -> XmlCodec {
        XmlCodec::Fcns { sentinel: None }
    }

    /// fc/ns with bounded symbol resolution: names never interned before
    /// map to `sentinel` (serving path).
    pub fn fcns_bounded(sentinel: Symbol) -> XmlCodec {
        XmlCodec::Fcns {
            sentinel: Some(sentinel),
        }
    }

    /// A DTD encoding used for both directions.
    pub fn dtd(enc: Arc<Encoding>) -> XmlCodec {
        XmlCodec::Dtd {
            input: Arc::clone(&enc),
            output: enc,
        }
    }

    /// A DTD encoding pair with distinct input and output schemas.
    pub fn dtd_pair(input: Arc<Encoding>, output: Arc<Encoding>) -> XmlCodec {
        XmlCodec::Dtd { input, output }
    }

    /// Short label for diagnostics (`fcns` / the DTD root elements).
    pub fn label(&self) -> String {
        match self {
            XmlCodec::Fcns { .. } => "fcns".to_owned(),
            XmlCodec::Dtd { input, output } => {
                if Arc::ptr_eq(input, output) {
                    format!("dtd:{}", input.dtd().root())
                } else {
                    format!("dtd:{}->{}", input.dtd().root(), output.dtd().root())
                }
            }
        }
    }

    /// Streams a document's ranked encoding straight off the SAX
    /// tokenizer — O(depth) live state, no intermediate trees.
    pub fn events<'a>(&self, xml: &'a str) -> UnrankedEvents<'a> {
        let encoder = match self {
            XmlCodec::Fcns { sentinel } => {
                StreamEncoder::Fcns(FcnsStreamEncoder::with_sentinel(*sentinel))
            }
            XmlCodec::Dtd { input, .. } => {
                StreamEncoder::Dtd(DtdStreamEncoder::new(Arc::clone(input)))
            }
        };
        UnrankedEvents {
            reader: xml_events(xml),
            encoder,
            queue: VecDeque::new(),
            failed: false,
            skippable: false,
            skipped_subtrees: 0,
        }
    }

    /// Materializes the ranked encoding as a tree — the *same* streaming
    /// encoder, collected (what the engine's tree/dag/walk modes use, so
    /// every mode validates documents identically).
    pub fn ranked_tree(&self, xml: &str) -> Result<Tree, UnrankedError> {
        let mut events = Vec::new();
        for ev in self.events(xml) {
            events.push(ev?);
        }
        tree_from_events(events)
            .map_err(|e| UnrankedError::Encode(xtt_xml::EncodeError::Malformed(e.to_string())))
    }

    /// Decodes a ranked output tree back to unranked XML text via the
    /// streaming writer (O(depth) state over the tree's event stream).
    pub fn decode_tree(&self, t: &Tree) -> Result<String, UnrankedError> {
        let mut writer = self.writer();
        for event in t.events() {
            writer.feed(event)?;
        }
        writer.finish()
    }

    /// An incremental decoder for this codec's *output* side; feed it
    /// ranked events (a whole tree's, or a prefix as it is produced).
    pub fn writer(&self) -> XmlWriter {
        match self {
            XmlCodec::Fcns { .. } => XmlWriter::Fcns(FcnsXmlWriter::new()),
            XmlCodec::Dtd { output, .. } => XmlWriter::Dtd(DtdXmlWriter::new(Arc::clone(output))),
        }
    }
}

enum StreamEncoder {
    Fcns(FcnsStreamEncoder),
    Dtd(DtdStreamEncoder),
}

impl StreamEncoder {
    fn feed(
        &mut self,
        event: &xtt_xml::XmlEvent,
        out: &mut VecDeque<TreeEvent>,
    ) -> Result<(), xtt_xml::EncodeError> {
        match self {
            StreamEncoder::Fcns(e) => e.feed(event, out),
            StreamEncoder::Dtd(e) => e.feed(event, out),
        }
    }

    fn live_frames(&self) -> usize {
        match self {
            StreamEncoder::Fcns(e) => e.live_frames(),
            StreamEncoder::Dtd(e) => e.live_frames(),
        }
    }

    fn peak_frames(&self) -> usize {
        match self {
            StreamEncoder::Fcns(e) => e.peak_frames(),
            StreamEncoder::Dtd(e) => e.peak_frames(),
        }
    }

    fn just_opened_element(&self) -> bool {
        match self {
            StreamEncoder::Fcns(e) => e.just_opened_element(),
            StreamEncoder::Dtd(e) => e.just_opened_element(),
        }
    }
}

/// The streaming adaptor: SAX tokenizer → incremental encoder → ranked
/// [`TreeEvent`]s, one well-nested tree per well-formed valid document.
/// Errors are fused: after the first `Err` the iterator ends.
pub struct UnrankedEvents<'a> {
    reader: XmlEventReader<'a>,
    encoder: StreamEncoder,
    queue: VecDeque<TreeEvent>,
    failed: bool,
    /// The event just delivered was an element's ranked `Open`, emitted
    /// directly off its start tag with nothing queued behind it — the
    /// position [`UnrankedEvents::skip_subtree`] can fast-forward from.
    skippable: bool,
    skipped_subtrees: u64,
}

impl UnrankedEvents<'_> {
    /// Live encoder frames right now (O(depth) — one per open element
    /// plus, for DTD encodings, one per open content-model group).
    pub fn live_frames(&self) -> usize {
        self.encoder.live_frames()
    }

    /// High-water mark of [`UnrankedEvents::live_frames`] — the number
    /// experiment E12 reports as *peak live nodes* for the streaming
    /// path (the materializing path's peak is the whole document).
    pub fn peak_frames(&self) -> usize {
        self.encoder.peak_frames()
    }

    /// Subtrees discarded via the raw fast-forward (observability).
    pub fn skipped_subtrees(&self) -> u64 {
        self.skipped_subtrees
    }

    /// Called immediately after [`Iterator::next`] returned an `Open`:
    /// consume the rest of that ranked node's subtree without encoding —
    /// or even tokenizing — it. `Ok(false)` means the position has no
    /// fast path (a `#`/pcdata node, or queued events in flight) and the
    /// caller should consume the events instead.
    ///
    /// Under fc/ns the skipped element's ranked subtree covers its
    /// content *and* its entire following sibling forest (the sibling is
    /// nested inside the node), so the raw reader is fast-forwarded past
    /// every following sibling and the parent's end tag too. Under a DTD
    /// encoding the subtree is the element's encoded content; its
    /// interior is dropped without content-model validation (the
    /// tokenizer still enforces well-formedness).
    pub fn skip_subtree(&mut self) -> Result<bool, UnrankedError> {
        if !self.skippable || self.failed {
            return Ok(false);
        }
        self.skippable = false;
        if let Err(e) = self.skip_subtree_inner() {
            self.failed = true;
            return Err(e);
        }
        self.skipped_subtrees += 1;
        Ok(true)
    }

    fn skip_subtree_inner(&mut self) -> Result<(), UnrankedError> {
        // Past the just-opened element's own end tag first.
        self.reader.skip_subtree().map_err(UnrankedError::Xml)?;
        match &mut self.encoder {
            StreamEncoder::Dtd(e) => e.skip_open_element(&mut self.queue),
            StreamEncoder::Fcns(e) => {
                if e.live_frames() > 1 {
                    // The ranked subtree extends over the sibling tail:
                    // fast-forward every following sibling and consume
                    // the parent's end tag.
                    loop {
                        match self.reader.next() {
                            None => {
                                return Err(UnrankedError::Xml(xtt_xml::XmlError {
                                    offset: 0,
                                    message: "document ended inside a skipped sibling tail".into(),
                                }))
                            }
                            Some(Err(err)) => return Err(UnrankedError::Xml(err)),
                            Some(Ok(xtt_xml::XmlEvent::Start { .. })) => {
                                self.reader.skip_subtree().map_err(UnrankedError::Xml)?;
                            }
                            Some(Ok(xtt_xml::XmlEvent::Text(_))) => {}
                            Some(Ok(xtt_xml::XmlEvent::End(_))) => break,
                        }
                    }
                }
                e.skip_open_element(&mut self.queue);
            }
        }
        Ok(())
    }
}

impl Iterator for UnrankedEvents<'_> {
    type Item = Result<TreeEvent, UnrankedError>;

    fn next(&mut self) -> Option<Result<TreeEvent, UnrankedError>> {
        loop {
            if let Some(ev) = self.queue.pop_front() {
                self.skippable = matches!(ev, TreeEvent::Open(_))
                    && self.queue.is_empty()
                    && self.encoder.just_opened_element();
                return Some(Ok(ev));
            }
            if self.failed {
                return None;
            }
            match self.reader.next()? {
                Err(e) => {
                    self.failed = true;
                    return Some(Err(UnrankedError::Xml(e)));
                }
                Ok(event) => {
                    if let Err(e) = self.encoder.feed(&event, &mut self.queue) {
                        self.failed = true;
                        return Some(Err(UnrankedError::Encode(e)));
                    }
                }
            }
        }
    }
}

/// Incremental ranked-events → XML writer (either encoding).
pub enum XmlWriter {
    Fcns(FcnsXmlWriter),
    Dtd(DtdXmlWriter),
}

impl XmlWriter {
    pub fn feed(&mut self, event: TreeEvent) -> Result<(), UnrankedError> {
        match self {
            XmlWriter::Fcns(w) => w.feed(event).map_err(UnrankedError::Encode),
            XmlWriter::Dtd(w) => w.feed(event).map_err(UnrankedError::Encode),
        }
    }

    /// Drains the XML text produced so far (the committed output
    /// prefix). Concatenating every drain with the remainder returned by
    /// [`XmlWriter::finish`] yields exactly the batch output.
    pub fn pending(&mut self) -> String {
        match self {
            XmlWriter::Fcns(w) => w.pending(),
            XmlWriter::Dtd(w) => w.pending(),
        }
    }

    pub fn finish(self) -> Result<String, UnrankedError> {
        match self {
            XmlWriter::Fcns(w) => w.finish().map_err(UnrankedError::Encode),
            XmlWriter::Dtd(w) => w.finish().map_err(UnrankedError::Encode),
        }
    }
}
