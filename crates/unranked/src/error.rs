//! The one error type of the streaming pipeline: every failure is either
//! a tokenizer error (with its byte offset) or an encoding/decoding error
//! (the document does not match the DTD, or a tree is not a genuine
//! encoding).

use std::fmt;

use xtt_xml::{EncodeError, XmlError};

/// Failure of a streaming encode or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrankedError {
    /// XML syntax error from the SAX tokenizer.
    Xml(XmlError),
    /// The document does not match the encoding (DTD violation, unknown
    /// text value), or a ranked tree is not a genuine encoding.
    Encode(EncodeError),
}

impl fmt::Display for UnrankedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrankedError::Xml(e) => write!(f, "{e}"),
            UnrankedError::Encode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UnrankedError {}

impl From<XmlError> for UnrankedError {
    fn from(e: XmlError) -> UnrankedError {
        UnrankedError::Xml(e)
    }
}

impl From<EncodeError> for UnrankedError {
    fn from(e: EncodeError) -> UnrankedError {
        UnrankedError::Encode(e)
    }
}
