//! Streaming DTD-based encoding and decoding (Section 10, incremental).
//!
//! [`xtt_xml::Encoding::encode`] is a recursive-descent matcher over the
//! (1-unambiguous) content models: every grouping decision looks at one
//! token of lookahead. [`DtdStreamEncoder`] runs the *same* LL(1)
//! derivation inverted: instead of recursing over a materialized child
//! list, it keeps the derivation's spine as an explicit stack of open
//! regex frames per open element, and advances it one SAX token at a
//! time — emitting the encoding's pre-order [`TreeEvent`]s the moment
//! they are determined. Live state is O(depth · content-model nesting);
//! no `UTree` and no ranked tree are ever built, and the emitted event
//! stream is **identical, event for event**, to
//! `Encoding::encode(doc).events()` (pinned by property tests).
//!
//! [`DtdXmlWriter`] is the inverse direction: it consumes the pre-order
//! events of an encoded tree (an engine output, or a prefix of one) and
//! writes the unranked document as XML text, classifying each symbol as
//! an element (start/end tags), a pcdata constant (character data), `#`
//! (structure, nothing written), or a sibling-group symbol (structure,
//! nothing written).

use std::collections::VecDeque;
use std::sync::Arc;

use xtt_trees::{Symbol, TreeEvent};
use xtt_xml::{Content, EncodeError, Encoding, EncodingStyle, Regex, Tok, XmlEvent};

/// One token of lookahead, by reference — the hot path never clones an
/// element name into a [`Tok`].
#[derive(Clone, Copy)]
enum Look<'a> {
    /// End of the element's children.
    End,
    /// A text node.
    Text,
    /// A child element start.
    Elem(&'a str),
}

use crate::util::{escape_text, is_xml_name};

/// What a [`ModelParse::consume`] call matched.
enum Consumed {
    /// The token was an element start matching this name; the caller
    /// opens the element and defers `child_done` to its end tag.
    Element,
    /// The token was character data; the caller emits the pcdata leaf
    /// and calls `child_done` immediately.
    Text,
}

type NodeId = u32;

/// One compiled content-model node: the regex shape with its group
/// symbol, first set, and nullability resolved **once** at encoder
/// construction — the per-token hot path never renders a regex, locks
/// the interner, or recomputes a first set.
struct CNode {
    kind: CKind,
    /// Interned group symbol (the rendered expression; unused for
    /// element/pcdata atoms).
    sym: Symbol,
    /// Rendered expression, for diagnostics only.
    render: String,
    nullable: bool,
    /// First-set, split for allocation-free lookups: can the expression
    /// start with text, and with which elements (sorted)?
    first_text: bool,
    first_elems: Vec<String>,
}

enum CKind {
    Elem(String),
    PcData,
    Star(NodeId),
    Plus(NodeId),
    Opt(NodeId),
    Alt(Vec<NodeId>),
    Seq(Vec<NodeId>),
}

/// The compiled content models of one DTD: an arena of [`CNode`]s plus
/// each element's root node (`None` = `EMPTY`).
struct Models {
    nodes: Vec<CNode>,
    content: std::collections::HashMap<String, Option<NodeId>>,
}

impl Models {
    fn compile(enc: &Encoding) -> Models {
        let mut models = Models {
            nodes: Vec::new(),
            content: std::collections::HashMap::new(),
        };
        for (name, content) in enc.dtd().elements() {
            let root = match content {
                Content::Empty => None,
                Content::Model(r) => Some(models.add(r)),
            };
            models.content.insert(name.clone(), root);
        }
        models
    }

    fn add(&mut self, r: &Regex) -> NodeId {
        let kind = match r {
            Regex::Elem(name) => CKind::Elem(name.clone()),
            Regex::PcData => CKind::PcData,
            Regex::Star(inner) => CKind::Star(self.add(inner)),
            Regex::Plus(inner) => CKind::Plus(self.add(inner)),
            Regex::Opt(inner) => CKind::Opt(self.add(inner)),
            Regex::Alt(branches) => CKind::Alt(branches.iter().map(|b| self.add(b)).collect()),
            Regex::Seq(parts) => CKind::Seq(parts.iter().map(|p| self.add(p)).collect()),
        };
        let render = r.render();
        let mut first_text = false;
        let mut first_elems = Vec::new();
        for tok in r.first() {
            match tok {
                Tok::Text => first_text = true,
                Tok::Elem(name) => first_elems.push(name),
            }
        }
        first_elems.sort();
        let id = self.nodes.len() as NodeId;
        self.nodes.push(CNode {
            kind,
            sym: Symbol::new(&render),
            render,
            nullable: r.nullable(),
            first_text,
            first_elems,
        });
        id
    }

    #[inline]
    fn node(&self, id: NodeId) -> &CNode {
        &self.nodes[id as usize]
    }

    #[inline]
    fn starts(&self, id: NodeId, look: Look<'_>) -> bool {
        let node = self.node(id);
        match look {
            Look::End => false,
            Look::Text => node.first_text,
            Look::Elem(name) => node
                .first_elems
                .binary_search_by(|e| e.as_str().cmp(name))
                .is_ok(),
        }
    }
}

/// One open node of the content-model derivation.
///
/// Iterations are the one place the *encoded* tree is deeper than the
/// document: a list of `n` items is a chain of `n` nested cons cells,
/// all of which close together when the list ends. A naive frame per
/// cons cell would make the encoder O(siblings); instead one frame
/// represents the whole open chain, with `tails` counting the cons-cell
/// `Open`s whose `Close` is still pending — so live state stays
/// O(document depth · content-model nesting).
enum RFrame {
    /// `(R₁,…,Rₙ)` — parts before `idx` are complete.
    Seq { node: NodeId, idx: usize },
    /// An open `R*` cons chain: the deepest cell's head is in flight (or
    /// just completed); `tails` cells await their cascaded `Close`.
    Star { node: NodeId, tails: u32 },
    /// An open `R+` cons chain.
    Plus { node: NodeId, tails: u32 },
    /// `R?` / `(R₁|…|Rₙ)` with the chosen inner expression in flight.
    Wrap,
}

/// The incremental LL(1) derivation of one element's content model.
struct ModelParse {
    stack: Vec<RFrame>,
    /// The node the derivation is about to enter (None while a child
    /// subtree is in flight or the model is complete).
    entering: Option<NodeId>,
    /// The root node, for the trailing-children diagnostic.
    root: NodeId,
    complete: bool,
}

fn describe(look: Look<'_>) -> String {
    match look {
        Look::End => "end of children".to_owned(),
        Look::Text => "text".to_owned(),
        Look::Elem(name) => format!("<{name}>"),
    }
}

impl ModelParse {
    fn new(root: NodeId) -> ModelParse {
        ModelParse {
            stack: Vec::new(),
            entering: Some(root),
            root,
            complete: false,
        }
    }

    fn frames(&self) -> usize {
        self.stack.len()
    }

    /// No token consumed yet (the element just opened).
    fn is_fresh(&self) -> bool {
        self.stack.is_empty() && !self.complete && self.entering == Some(self.root)
    }

    /// Emits the encoding of an empty iteration — `R*(#,#)` in the
    /// paper's style, a bare `#` in the path-closed style.
    fn emit_empty_star(
        sym: Symbol,
        style: EncodingStyle,
        hash: Symbol,
        out: &mut VecDeque<TreeEvent>,
    ) {
        match style {
            EncodingStyle::Paper => {
                out.push_back(TreeEvent::Open(sym));
                out.push_back(TreeEvent::Open(hash));
                out.push_back(TreeEvent::Close);
                out.push_back(TreeEvent::Open(hash));
                out.push_back(TreeEvent::Close);
                out.push_back(TreeEvent::Close);
            }
            EncodingStyle::PathClosed => {
                out.push_back(TreeEvent::Open(hash));
                out.push_back(TreeEvent::Close);
            }
        }
    }

    /// A child subtree of the derivation completed: cascade closes of
    /// every frame this finishes.
    fn child_done(&mut self, models: &Models, out: &mut VecDeque<TreeEvent>) {
        loop {
            match self.stack.last_mut() {
                None => {
                    self.complete = true;
                    return;
                }
                Some(RFrame::Seq { node, idx }) => {
                    *idx += 1;
                    let CKind::Seq(parts) = &models.node(*node).kind else {
                        unreachable!("Seq frame points at a Seq node")
                    };
                    if *idx < parts.len() {
                        return; // next part awaits the next token
                    }
                    out.push_back(TreeEvent::Close);
                    self.stack.pop();
                }
                Some(RFrame::Wrap) => {
                    out.push_back(TreeEvent::Close);
                    self.stack.pop();
                }
                Some(RFrame::Star { .. } | RFrame::Plus { .. }) => {
                    return; // a head completed; the tail decision needs a token
                }
            }
        }
    }

    /// Advances the derivation with the next child token ([`Look::End`]
    /// = the element's end tag), emitting every event this determines.
    /// With an element/text token, ends by matching the corresponding
    /// atom; with `End`, drives the model to completion.
    fn consume(
        &mut self,
        models: &Models,
        look: Look<'_>,
        style: EncodingStyle,
        hash: Symbol,
        out: &mut VecDeque<TreeEvent>,
    ) -> Result<Option<Consumed>, EncodeError> {
        loop {
            if let Some(id) = self.entering.take() {
                let node = models.node(id);
                match &node.kind {
                    CKind::Elem(name) => {
                        return match look {
                            Look::Elem(label) if label == name => Ok(Some(Consumed::Element)),
                            other => Err(EncodeError::NotValid(format!(
                                "expected <{name}>, found {}",
                                describe(other)
                            ))),
                        };
                    }
                    CKind::PcData => {
                        return match look {
                            Look::Text => Ok(Some(Consumed::Text)),
                            other => Err(EncodeError::NotValid(format!(
                                "expected text, found {}",
                                describe(other)
                            ))),
                        };
                    }
                    CKind::Star(inner) => {
                        if models.starts(*inner, look) {
                            out.push_back(TreeEvent::Open(node.sym));
                            self.stack.push(RFrame::Star { node: id, tails: 1 });
                            self.entering = Some(*inner);
                        } else {
                            Self::emit_empty_star(node.sym, style, hash, out);
                            self.child_done(models, out);
                        }
                    }
                    CKind::Plus(inner) => {
                        // The head is mandatory; mismatches surface when
                        // the inner expression's atom is entered.
                        out.push_back(TreeEvent::Open(node.sym));
                        self.stack.push(RFrame::Plus { node: id, tails: 1 });
                        self.entering = Some(*inner);
                    }
                    CKind::Opt(inner) => {
                        out.push_back(TreeEvent::Open(node.sym));
                        if models.starts(*inner, look) {
                            self.stack.push(RFrame::Wrap);
                            self.entering = Some(*inner);
                        } else {
                            out.push_back(TreeEvent::Open(hash));
                            out.push_back(TreeEvent::Close);
                            out.push_back(TreeEvent::Close);
                            self.child_done(models, out);
                        }
                    }
                    CKind::Alt(branches) => {
                        let branch = branches
                            .iter()
                            .find(|b| models.starts(**b, look))
                            .or_else(|| branches.iter().find(|b| models.node(**b).nullable))
                            .copied()
                            .ok_or_else(|| {
                                EncodeError::NotValid(format!(
                                    "no branch of {} matches {}",
                                    node.render,
                                    describe(look)
                                ))
                            })?;
                        out.push_back(TreeEvent::Open(node.sym));
                        self.stack.push(RFrame::Wrap);
                        self.entering = Some(branch);
                    }
                    CKind::Seq(parts) => {
                        out.push_back(TreeEvent::Open(node.sym));
                        let first = parts[0];
                        self.stack.push(RFrame::Seq { node: id, idx: 0 });
                        self.entering = Some(first);
                    }
                }
                continue;
            }
            if self.complete {
                return match look {
                    Look::End => Ok(None),
                    other => Err(EncodeError::NotValid(format!(
                        "trailing children not matched by {}: {}",
                        models.node(self.root).render,
                        describe(other)
                    ))),
                };
            }
            match self.stack.last_mut() {
                None => unreachable!("incomplete derivation always has a frame or an entry"),
                Some(RFrame::Seq { node, idx }) => {
                    let CKind::Seq(parts) = &models.node(*node).kind else {
                        unreachable!("Seq frame points at a Seq node")
                    };
                    self.entering = Some(parts[*idx]);
                }
                Some(RFrame::Star { node, tails }) => {
                    let id = *node;
                    let CKind::Star(inner) = models.node(id).kind else {
                        unreachable!("Star frame points at a Star node")
                    };
                    if models.starts(inner, look) {
                        // The list continues: a fresh cons cell becomes
                        // this cell's tail child.
                        out.push_back(TreeEvent::Open(models.node(id).sym));
                        *tails += 1;
                        self.entering = Some(inner);
                    } else {
                        // The list ends: emit the empty tail, then the
                        // cascaded closes of every open cons cell.
                        let tails = *tails;
                        Self::emit_empty_star(models.node(id).sym, style, hash, out);
                        for _ in 0..tails {
                            out.push_back(TreeEvent::Close);
                        }
                        self.stack.pop();
                        self.child_done(models, out);
                    }
                }
                Some(RFrame::Plus { node, tails }) => {
                    let id = *node;
                    let CKind::Plus(inner) = models.node(id).kind else {
                        unreachable!("Plus frame points at a Plus node")
                    };
                    if models.starts(inner, look) {
                        out.push_back(TreeEvent::Open(models.node(id).sym));
                        *tails += 1;
                        self.entering = Some(inner);
                    } else {
                        let tails = *tails;
                        out.push_back(TreeEvent::Open(hash));
                        out.push_back(TreeEvent::Close);
                        for _ in 0..tails {
                            out.push_back(TreeEvent::Close);
                        }
                        self.stack.pop();
                        self.child_done(models, out);
                    }
                }
                Some(RFrame::Wrap) => {
                    unreachable!("wrap frames are popped by child_done")
                }
            }
        }
    }
}

/// One open XML element.
struct ElemFrame {
    label: String,
    /// `None` for `EMPTY` content.
    model: Option<ModelParse>,
}

/// Incremental DTD encoder; feed it [`XmlEvent`]s, it emits the ranked
/// events of `Encoding::encode(doc)` in order. See the module docs.
pub struct DtdStreamEncoder {
    enc: Arc<Encoding>,
    /// Content models compiled once (symbols, first sets, nullability).
    models: Models,
    hash: Symbol,
    elems: Vec<ElemFrame>,
    started: bool,
    done: bool,
    /// Live frame count, maintained incrementally (open elements plus
    /// open regex groups across all their derivations).
    live: usize,
    peak: usize,
}

impl DtdStreamEncoder {
    pub fn new(enc: Arc<Encoding>) -> DtdStreamEncoder {
        let hash = enc.hash_symbol();
        let models = Models::compile(&enc);
        DtdStreamEncoder {
            enc,
            models,
            hash,
            elems: Vec::new(),
            started: false,
            done: false,
            live: 0,
            peak: 0,
        }
    }

    /// Live derivation frames (open elements plus open regex groups) —
    /// the O(depth) claim, measured by experiment E12.
    pub fn live_frames(&self) -> usize {
        self.live
    }

    /// High-water mark of [`DtdStreamEncoder::live_frames`].
    pub fn peak_frames(&self) -> usize {
        self.peak
    }

    /// The document's encoding is complete (root closed).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True right after an element's `Start` was fed and nothing else:
    /// the last ranked event emitted was that element's `Open`, and its
    /// ranked subtree (the element's encoded content) is still entirely
    /// ahead — the precondition for
    /// [`DtdStreamEncoder::skip_open_element`].
    pub fn just_opened_element(&self) -> bool {
        !self.done
            && self
                .elems
                .last()
                .is_some_and(|e| e.model.as_ref().map_or(true, ModelParse::is_fresh))
    }

    /// Fast-forward bookkeeping for a skipped element subtree: the caller
    /// has fast-forwarded the raw tokenizer past the element's end tag,
    /// so its content is dropped *unvalidated* (the tokenizer still
    /// enforced well-formedness) and the parent derivation advances as if
    /// the element's end tag had been fed.
    ///
    /// Precondition: [`DtdStreamEncoder::just_opened_element`].
    pub fn skip_open_element(&mut self, out: &mut VecDeque<TreeEvent>) {
        debug_assert!(self.just_opened_element());
        self.elems.pop().expect("skipped element frame");
        self.live -= 1;
        if let Some(parent) = self.elems.last_mut() {
            let model = parent
                .model
                .as_mut()
                .expect("an element child implies a content model");
            let before = model.frames();
            model.child_done(&self.models, out);
            self.live = self.live + model.frames() - before;
        } else {
            self.done = true;
        }
    }

    fn open_element(
        &mut self,
        label: &str,
        out: &mut VecDeque<TreeEvent>,
    ) -> Result<(), EncodeError> {
        let Some(root) = self.models.content.get(label) else {
            return Err(EncodeError::NotValid(format!(
                "undeclared element <{label}>"
            )));
        };
        out.push_back(TreeEvent::Open(Symbol::new(label)));
        self.elems.push(ElemFrame {
            label: label.to_owned(),
            model: root.map(ModelParse::new),
        });
        self.live += 1;
        self.peak = self.peak.max(self.live);
        Ok(())
    }

    /// Feeds one SAX event, appending the ranked events it determines.
    pub fn feed(
        &mut self,
        event: &XmlEvent<'_>,
        out: &mut VecDeque<TreeEvent>,
    ) -> Result<(), EncodeError> {
        if self.done {
            return Err(EncodeError::Malformed(
                "XML event after the document closed".into(),
            ));
        }
        let style = self.enc.style();
        let hash = self.hash;
        match event {
            XmlEvent::Start { name: label, .. } => {
                if !self.started {
                    self.started = true;
                    if *label != self.enc.dtd().root() {
                        return Err(EncodeError::NotValid(format!(
                            "root is <{label}>, expected <{}>",
                            self.enc.dtd().root()
                        )));
                    }
                    return self.open_element(label, out);
                }
                let top = self.elems.last_mut().expect("tokenizer balances events");
                let Some(model) = top.model.as_mut() else {
                    return Err(EncodeError::NotValid(format!(
                        "<{}> is EMPTY but has children",
                        top.label
                    )));
                };
                let before = model.frames();
                let consumed = model.consume(&self.models, Look::Elem(label), style, hash, out)?;
                let after = model.frames();
                debug_assert!(matches!(consumed, Some(Consumed::Element)));
                self.live = self.live + after - before;
                self.peak = self.peak.max(self.live);
                self.open_element(label, out)?;
            }
            XmlEvent::Text(text) => {
                let top = self.elems.last_mut().expect("tokenizer balances events");
                let Some(model) = top.model.as_mut() else {
                    return Err(EncodeError::NotValid(format!(
                        "<{}> is EMPTY but has children",
                        top.label
                    )));
                };
                let before = model.frames();
                let consumed = model.consume(&self.models, Look::Text, style, hash, out)?;
                debug_assert!(matches!(consumed, Some(Consumed::Text)));
                let sym = self
                    .enc
                    .mode()
                    .symbol_for(text)
                    .ok_or_else(|| EncodeError::UnknownText(text.to_string()))?;
                out.push_back(TreeEvent::Open(Symbol::new(&sym)));
                out.push_back(TreeEvent::Close);
                model.child_done(&self.models, out);
                let after = model.frames();
                self.live = self.live + after - before;
                self.peak = self.peak.max(self.live);
            }
            XmlEvent::End(_) => {
                let mut top = self.elems.pop().expect("tokenizer balances events");
                if let Some(model) = top.model.as_mut() {
                    let before = model.frames();
                    let end = model
                        .consume(&self.models, Look::End, style, hash, out)
                        .map_err(|e| annotate_elem(e, &top.label))?;
                    debug_assert!(end.is_none());
                    debug_assert_eq!(model.frames(), 0, "completed derivation holds no frames");
                    self.live -= before;
                }
                self.live -= 1; // the element itself
                out.push_back(TreeEvent::Close);
                if let Some(parent) = self.elems.last_mut() {
                    let model = parent
                        .model
                        .as_mut()
                        .expect("an element child implies a content model");
                    let before = model.frames();
                    model.child_done(&self.models, out);
                    self.live = self.live + model.frames() - before;
                } else {
                    self.done = true;
                }
            }
        }
        Ok(())
    }
}

/// Prefixes an end-of-children diagnostic with the element it occurred in.
fn annotate_elem(e: EncodeError, label: &str) -> EncodeError {
    match e {
        EncodeError::NotValid(m) => EncodeError::NotValid(format!("in <{label}>: {m}")),
        other => other,
    }
}

/// One open node of the incremental DTD decoder.
enum DFrame {
    Elem {
        label: Symbol,
        head_open: bool,
    },
    /// A sibling-group symbol or `#`: structure only, nothing written.
    Structure,
    /// A pcdata constant (text already written); children are rejected.
    Leaf,
}

/// Incremental DTD-encoding → XML writer; feed it the pre-order events
/// of an encoded tree, then [`DtdXmlWriter::finish`]. Symbols are
/// classified against the encoding (elements / pcdata constants / `#` /
/// sibling groups); unknown symbols and text in element position are
/// rejected. Content models are *not* re-validated — that is the batch
/// decoder's job ([`Encoding::decode`]); transducer outputs over the
/// encoding's alphabet decode identically through both.
pub struct DtdXmlWriter {
    enc: Arc<Encoding>,
    hash: Symbol,
    out: String,
    stack: Vec<DFrame>,
    done: bool,
}

impl DtdXmlWriter {
    pub fn new(enc: Arc<Encoding>) -> DtdXmlWriter {
        let hash = enc.hash_symbol();
        DtdXmlWriter {
            enc,
            hash,
            out: String::new(),
            stack: Vec::new(),
            done: false,
        }
    }

    /// Feeds one event of the encoded tree.
    pub fn feed(&mut self, event: TreeEvent) -> Result<(), EncodeError> {
        if self.done {
            return Err(EncodeError::Malformed(
                "events after the encoded document closed".into(),
            ));
        }
        match event {
            TreeEvent::Open(sym) => self.open(sym),
            TreeEvent::Close => self.close(),
        }
    }

    /// Drains the XML text produced so far (the committed output prefix).
    /// Concatenating every drain with [`DtdXmlWriter::finish`]'s
    /// remainder yields exactly the batch output.
    pub fn pending(&mut self) -> String {
        std::mem::take(&mut self.out)
    }

    fn close_head(&mut self) {
        for frame in self.stack.iter_mut().rev() {
            match frame {
                DFrame::Structure => continue,
                DFrame::Elem { head_open, .. } => {
                    if *head_open {
                        self.out.push('>');
                        *head_open = false;
                    }
                    return;
                }
                DFrame::Leaf => return,
            }
        }
    }

    fn open(&mut self, sym: Symbol) -> Result<(), EncodeError> {
        if matches!(self.stack.last(), Some(DFrame::Leaf)) {
            return Err(EncodeError::Malformed(format!(
                "{} node has children",
                sym.name()
            )));
        }
        let name = sym.name();
        if self.enc.dtd().content(name).is_some() {
            if !is_xml_name(name) {
                return Err(EncodeError::Malformed(format!(
                    "element symbol {name} is not an XML name"
                )));
            }
            self.close_head();
            self.out.push('<');
            self.out.push_str(name);
            self.stack.push(DFrame::Elem {
                label: sym,
                head_open: true,
            });
            return Ok(());
        }
        if sym == self.hash {
            self.stack.push(DFrame::Structure);
            return Ok(());
        }
        if let Some(value) = self.enc.mode().value_of(name) {
            self.close_head();
            self.out.push_str(&escape_text(&value));
            self.stack.push(DFrame::Leaf);
            return Ok(());
        }
        if self.enc.group_expr(name).is_some() {
            self.stack.push(DFrame::Structure);
            return Ok(());
        }
        Err(EncodeError::Malformed(format!(
            "unknown symbol {name} in the encoded tree"
        )))
    }

    fn close(&mut self) -> Result<(), EncodeError> {
        let frame = self
            .stack
            .pop()
            .ok_or_else(|| EncodeError::Malformed("unbalanced close event".into()))?;
        if let DFrame::Elem { label, head_open } = frame {
            if head_open {
                self.out.push_str("/>");
            } else {
                self.out.push_str("</");
                self.out.push_str(label.name());
                self.out.push('>');
            }
        }
        if self.stack.is_empty() {
            self.done = true;
        }
        Ok(())
    }

    /// Finishes the document and returns the XML text.
    pub fn finish(self) -> Result<String, EncodeError> {
        if !self.done || !self.stack.is_empty() {
            return Err(EncodeError::Malformed(
                "encoded event stream ended early".into(),
            ));
        }
        Ok(self.out)
    }
}
