//! The acid test of the whole reproduction: random total dtops pushed
//! through canonicalize → characteristic sample → RPNIdtop must come back
//! as exactly the same canonical transducer (Theorems 28 + 38), and
//! behave identically on enumerated inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xtt_core::{characteristic_sample, rpni_dtop};
use xtt_transducer::random::{random_total_dtop, RandomDtopConfig};
use xtt_transducer::{canonical_form, eval, same_canonical};
use xtt_trees::gen::enumerate_trees;
use xtt_trees::RankedAlphabet;

fn alphabets() -> (RankedAlphabet, RankedAlphabet) {
    (
        RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0), ("b", 0)]),
        RankedAlphabet::from_pairs([("h", 2), ("u", 1), ("c", 0), ("d", 0)]),
    )
}

fn run_seed(seed: u64, config: &RandomDtopConfig) {
    let (input, output) = alphabets();
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_total_dtop(&mut rng, &input, &output, config);

    let target = match canonical_form(&m, None) {
        Ok(c) => c,
        Err(e) => panic!("seed {seed}: canonicalization failed: {e}\n{m}"),
    };
    // semantic preservation of canonicalization
    for t in enumerate_trees(&input, 60, 7) {
        assert_eq!(
            eval(&m, &t),
            eval(&target.dtop, &t),
            "seed {seed}: canonical form changed behaviour on {t}"
        );
    }

    let sample = match characteristic_sample(&target) {
        Ok(s) => s,
        Err(e) => panic!(
            "seed {seed}: sample generation failed: {e}\n{}",
            target.dtop
        ),
    };
    let learned = match rpni_dtop(&sample, &target.domain, target.dtop.output()) {
        Ok(l) => l,
        Err(e) => panic!("seed {seed}: learning failed: {e}\n{}", target.dtop),
    };
    let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
    assert!(
        same_canonical(&target, &got),
        "seed {seed}: learned ≠ target\n== target ==\n{}\n== learned ==\n{}",
        target.dtop,
        got.dtop
    );
}

#[test]
fn random_small_machines_roundtrip() {
    let config = RandomDtopConfig {
        n_states: 2,
        max_rhs_depth: 2,
        call_percent: 50,
    };
    for seed in 0..40 {
        run_seed(seed, &config);
    }
}

#[test]
fn random_medium_machines_roundtrip() {
    let config = RandomDtopConfig {
        n_states: 3,
        max_rhs_depth: 3,
        call_percent: 45,
    };
    for seed in 100..125 {
        run_seed(seed, &config);
    }
}

#[test]
fn random_copy_heavy_machines_roundtrip() {
    // high call probability ⇒ lots of copying/permutation
    let config = RandomDtopConfig {
        n_states: 3,
        max_rhs_depth: 2,
        call_percent: 75,
    };
    for seed in 200..220 {
        run_seed(seed, &config);
    }
}

#[test]
fn random_delete_heavy_machines_roundtrip() {
    // low call probability ⇒ most subtrees are deleted
    let config = RandomDtopConfig {
        n_states: 4,
        max_rhs_depth: 2,
        call_percent: 20,
    };
    for seed in 300..320 {
        run_seed(seed, &config);
    }
}
