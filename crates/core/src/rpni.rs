//! The learning algorithm `RPNIdtop` (Figure 1 of the paper).
//!
//! Input: a sample `S` that is characteristic (Definition 31) for some
//! top-down partial function `τ` with finite index, and a DTTA `A` with
//! `L(A) = dom(τ)`. Output: the unique minimal earliest compatible dtop
//! `min(τ)` (Theorem 38).
//!
//! The implementation follows the paper's dtop-with-border-states view
//! (Definition 35) operationally:
//!
//! * *ok-states* are io-paths of `S` that have been promoted to states;
//! * *border-states* are io-paths discovered in the axiom or in rule
//!   right-hand sides but not yet processed;
//! * the least border-state (w.r.t. the order `<` of Section 8) is either
//!   **merged** with a mergeable ok-state (Definition 30: same residual
//!   domain w.r.t. `A` and no conflicting residual pair in `S`) — this
//!   updates `µ` — or **promoted** to a new ok-state, at which point its
//!   rules are read off `out_S(u·f)` (property (T)) with variables aligned
//!   by the unique functional residual (property (O)).

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

use xtt_automata::{language_classes, Dtta};
use xtt_transducer::{Dtop, DtopBuilder, IoPath, QId, Rhs};
use xtt_trees::{FPath, PLabel, PTree, PathOrder, RankedAlphabet, Step, Symbol};

use crate::sample::Sample;

/// Errors of the learner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The sample is empty — `out_S(ε)` is undefined.
    EmptySample,
    /// A sample input is not accepted by the domain automaton.
    InputOutsideDomain(String),
    /// The sample violates a property every characteristic sample has; the
    /// message names the failed inference step.
    InsufficientSample(String),
    /// Assembling the final transducer failed (alphabet/rank conflicts).
    BadSample(String),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::EmptySample => write!(f, "cannot learn from an empty sample"),
            LearnError::InputOutsideDomain(m) => {
                write!(f, "sample input outside the domain automaton: {m}")
            }
            LearnError::InsufficientSample(m) => {
                write!(f, "sample is not characteristic: {m}")
            }
            LearnError::BadSample(m) => write!(f, "malformed sample: {m}"),
        }
    }
}

impl std::error::Error for LearnError {}

/// The result of a successful run: the inferred transducer plus the
/// learner's trace (useful for the worked examples and for debugging).
#[derive(Debug, Clone)]
pub struct Learned {
    /// The inferred dtop, states named `q0, q1, …` in promotion order.
    pub dtop: Dtop,
    /// The io-path that became state `i`.
    pub states: Vec<IoPath>,
    /// Merges performed: `(border io-path, ok-state index it merged with)`.
    pub merges: Vec<(IoPath, usize)>,
}

/// Options for the learner.
#[derive(Debug, Clone)]
pub struct Options {
    /// Upper bound on promoted states; exceeding it aborts with
    /// `InsufficientSample` (a characteristic sample can never need more
    /// states than `min(τ)` has).
    pub max_states: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { max_states: 10_000 }
    }
}

/// Runs `RPNIdtop(S, A)` with the given output alphabet.
///
/// The output alphabet fixes the letter order used by `<` on output paths;
/// it must list every output symbol with its rank (the characteristic
/// sample generator and the learner must agree on this order, as the
/// paper's Definitions 29–31 are order-relative).
pub fn rpni_dtop(
    sample: &Sample,
    domain: &Dtta,
    output: &RankedAlphabet,
) -> Result<Learned, LearnError> {
    rpni_dtop_with(sample, domain, output, &Options::default())
}

struct Learner<'a> {
    sample: &'a Sample,
    domain: &'a Dtta,
    input: &'a RankedAlphabet,
    output: &'a RankedAlphabet,
    /// Language-equivalence classes of the domain automaton's states.
    dclasses: Vec<usize>,
    ok: Vec<IoPath>,
    merges: Vec<(IoPath, usize)>,
    /// For each promoted state, its pending rules (symbol, rhs over
    /// io-path call targets).
    rules: Vec<Vec<(Symbol, RhsIo)>>,
    /// Border io-paths not yet processed.
    border: Vec<IoPath>,
}

/// An rhs whose calls target io-paths (resolved to state ids at the end).
#[derive(Clone, Debug)]
enum RhsIo {
    Out(Symbol, Vec<RhsIo>),
    Call(IoPath, usize),
}

/// `RPNIdtop` with explicit options.
pub fn rpni_dtop_with(
    sample: &Sample,
    domain: &Dtta,
    output: &RankedAlphabet,
    options: &Options,
) -> Result<Learned, LearnError> {
    if sample.is_empty() {
        return Err(LearnError::EmptySample);
    }
    for (s, _) in sample.pairs() {
        if !domain.accepts(s) {
            return Err(LearnError::InputOutsideDomain(s.to_string()));
        }
    }
    let mut learner = Learner {
        sample,
        domain,
        input: domain.alphabet(),
        output,
        dclasses: language_classes(domain),
        ok: Vec::new(),
        merges: Vec::new(),
        rules: Vec::new(),
        border: Vec::new(),
    };

    // Axiom: out_S(ε) with a border io-path per hole (property (A)).
    let out_root = sample.out_root().ok_or(LearnError::EmptySample)?;
    let axiom_io = holes_with_fpaths(&out_root);
    for (v, _) in &axiom_io {
        learner.push_border(IoPath {
            input: FPath::empty(),
            output: v.clone(),
        });
    }

    // Main loop of Figure 1.
    while let Some(p) = learner.pop_least_border() {
        if let Some(ok_idx) = learner.find_merge(&p)? {
            learner.merges.push((p, ok_idx));
            continue;
        }
        if learner.ok.len() >= options.max_states {
            return Err(LearnError::InsufficientSample(format!(
                "exceeded {} states; the sample likely is not characteristic",
                options.max_states
            )));
        }
        learner.promote(p)?;
    }

    learner.assemble(&out_root, &axiom_io)
}

/// All `⊥`-holes of a prefix tree with their labeled paths.
fn holes_with_fpaths(t: &PTree) -> Vec<(FPath, PTree)> {
    let mut out = Vec::new();
    collect_holes(t, &FPath::empty(), &mut out);
    out
}

fn collect_holes(t: &PTree, at: &FPath, out: &mut Vec<(FPath, PTree)>) {
    match t.label() {
        PLabel::Bottom => out.push((at.clone(), t.clone())),
        PLabel::Top => unreachable!("⊤ cannot occur in out_S"),
        PLabel::Sym(sym) => {
            for (i, c) in t.children().iter().enumerate() {
                collect_holes(c, &at.push(Step::new(sym, i as u32)), out);
            }
        }
    }
}

impl<'a> Learner<'a> {
    fn push_border(&mut self, p: IoPath) {
        if self.border.contains(&p) || self.ok.contains(&p) {
            return;
        }
        self.border.push(p);
    }

    /// Removes and returns the `<`-least border io-path.
    fn pop_least_border(&mut self) -> Option<IoPath> {
        if self.border.is_empty() {
            return None;
        }
        let ord = PathOrder::new(self.input, self.output);
        let mut best = 0;
        for i in 1..self.border.len() {
            let cmp = ord
                .cmp_input(&self.border[i].input, &self.border[best].input)
                .then_with(|| ord.cmp_output(&self.border[i].output, &self.border[best].output));
            if cmp == Ordering::Less {
                best = i;
            }
        }
        Some(self.border.swap_remove(best))
    }

    /// Definition 30: `p` and ok-state `i` are mergeable iff their residual
    /// domains w.r.t. `A` coincide and their sample residuals agree
    /// wherever both are defined.
    fn mergeable(&self, p: &IoPath, i: usize) -> Result<bool, LearnError> {
        let q = &self.ok[i];
        let dp = self.domain.residual(&p.input).ok_or_else(|| {
            LearnError::InsufficientSample(format!("io-path {p} leaves the domain"))
        })?;
        let dq = self.domain.residual(&q.input).ok_or_else(|| {
            LearnError::InsufficientSample(format!("io-path {q} leaves the domain"))
        })?;
        if self.dclasses[dp.index()] != self.dclasses[dq.index()] {
            return Ok(false);
        }
        let rp = self
            .sample
            .residual_function(&p.input, &p.output)
            .ok_or_else(|| {
                LearnError::InsufficientSample(format!("border io-path {p} is not functional"))
            })?;
        let rq = self
            .sample
            .residual_function(&q.input, &q.output)
            .ok_or_else(|| {
                LearnError::InsufficientSample(format!("ok io-path {q} is not functional"))
            })?;
        for (input, output) in &rp {
            if let Some(other) = rq.get(input) {
                if other != output {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// First (and, for characteristic samples, only) mergeable ok-state.
    fn find_merge(&self, p: &IoPath) -> Result<Option<usize>, LearnError> {
        for i in 0..self.ok.len() {
            if self.mergeable(p, i)? {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// Turns `p` into an ok-state and reads its rules off the sample.
    fn promote(&mut self, p: IoPath) -> Result<(), LearnError> {
        let d = self.domain.residual(&p.input).ok_or_else(|| {
            LearnError::InsufficientSample(format!("io-path {p} leaves the domain"))
        })?;
        let mut rules: Vec<(Symbol, RhsIo)> = Vec::new();
        for &f in self.input.symbols() {
            // (C2)-conformance: only symbols the domain allows here.
            if self.domain.transition(d, f).is_none() {
                continue;
            }
            let npath = p.input.with_label(f);
            let Some(out) = self.sample.out_at_npath(&npath) else {
                // No sample witnesses u·f — for characteristic samples this
                // means... it must not happen for live transitions.
                return Err(LearnError::InsufficientSample(format!(
                    "no sample input contains {npath} (needed for the rules of {p})"
                )));
            };
            // rhs = v⁻¹(out_S(u·f)) — v must belong to the maximal output.
            let Some(sub) = out.resolve_fpath(&p.output) else {
                return Err(LearnError::InsufficientSample(format!(
                    "out_S({npath}) does not extend along {} (condition (T) violated)",
                    p.output
                )));
            };
            let rank = self.input.rank(f).expect("symbol in alphabet");
            let rhs = self.build_rhs(&p, f, rank, &sub)?;
            rules.push((f, rhs));
        }
        // register the new state, queue its call targets
        let mut targets: Vec<IoPath> = Vec::new();
        for (_, rhs) in &rules {
            collect_call_targets(rhs, &mut targets);
        }
        self.ok.push(p);
        self.rules.push(rules);
        for t in targets {
            self.push_border(t);
        }
        Ok(())
    }

    /// Converts `v⁻¹(out_S(u·f))` into an rhs, aligning each hole with the
    /// unique child index whose residual is functional (property (O)).
    fn build_rhs(
        &self,
        p: &IoPath,
        f: Symbol,
        rank: usize,
        sub: &PTree,
    ) -> Result<RhsIo, LearnError> {
        self.build_rhs_at(p, f, rank, sub, &FPath::empty())
    }

    fn build_rhs_at(
        &self,
        p: &IoPath,
        f: Symbol,
        rank: usize,
        t: &PTree,
        v2: &FPath,
    ) -> Result<RhsIo, LearnError> {
        match t.label() {
            PLabel::Top => unreachable!("⊤ cannot occur in out_S"),
            PLabel::Sym(sym) => {
                let mut kids = Vec::with_capacity(t.children().len());
                for (i, c) in t.children().iter().enumerate() {
                    kids.push(self.build_rhs_at(
                        p,
                        f,
                        rank,
                        c,
                        &v2.push(Step::new(sym, i as u32)),
                    )?);
                }
                Ok(RhsIo::Out(sym, kids))
            }
            PLabel::Bottom => {
                let out_path = p.output.concat(v2);
                let mut candidates: Vec<usize> = Vec::new();
                for i in 0..rank {
                    let in_path = p.input.push(Step::new(f, i as u32));
                    if self.sample.residual_is_functional(&in_path, &out_path) {
                        candidates.push(i);
                    }
                }
                match candidates.as_slice() {
                    [i] => {
                        let target = IoPath {
                            input: p.input.push(Step::new(f, *i as u32)),
                            output: out_path,
                        };
                        Ok(RhsIo::Call(target, *i))
                    }
                    [] => Err(LearnError::InsufficientSample(format!(
                        "no functional alignment for hole {out_path} in rule ({p}, {f})"
                    ))),
                    many => Err(LearnError::InsufficientSample(format!(
                        "ambiguous alignment ({} candidates) for hole {out_path} in rule \
                         ({p}, {f}) — condition (O) violated",
                        many.len()
                    ))),
                }
            }
        }
    }

    /// Builds the final dtop: resolve io-path call targets through µ.
    fn assemble(
        self,
        out_root: &PTree,
        axiom_io: &[(FPath, PTree)],
    ) -> Result<Learned, LearnError> {
        let mut mu: HashMap<&IoPath, usize> = HashMap::new();
        for (i, p) in self.ok.iter().enumerate() {
            mu.insert(p, i);
        }
        for (p, i) in &self.merges {
            mu.insert(p, *i);
        }
        let resolve = |p: &IoPath| -> Result<QId, LearnError> {
            mu.get(p)
                .map(|&i| QId(i as u32))
                .ok_or_else(|| LearnError::InsufficientSample(format!("unresolved io-path {p}")))
        };

        let mut builder = DtopBuilder::new(self.input.clone(), self.output.clone());
        for i in 0..self.ok.len() {
            builder.add_state(format!("q{i}"));
        }
        // axiom: out_S(ε) with holes replaced by resolved state calls
        let mut hole_iter = axiom_io.iter();
        let axiom = ptree_to_axiom(out_root, &mut |_| {
            let (v, _) = hole_iter.next().expect("hole count matches");
            resolve(&IoPath {
                input: FPath::empty(),
                output: v.clone(),
            })
        })?;
        builder.set_axiom(axiom);
        for (i, rules) in self.rules.iter().enumerate() {
            for (f, rhs) in rules {
                let resolved = resolve_rhs(rhs, &resolve)?;
                builder
                    .add_rule(QId(i as u32), *f, resolved)
                    .map_err(|e| LearnError::BadSample(e.to_string()))?;
            }
        }
        let dtop = builder
            .build()
            .map_err(|e| LearnError::BadSample(e.to_string()))?;
        Ok(Learned {
            dtop,
            states: self.ok,
            merges: self.merges,
        })
    }
}

fn collect_call_targets(rhs: &RhsIo, out: &mut Vec<IoPath>) {
    match rhs {
        RhsIo::Call(p, _) => out.push(p.clone()),
        RhsIo::Out(_, kids) => {
            for k in kids {
                collect_call_targets(k, out);
            }
        }
    }
}

fn resolve_rhs(
    rhs: &RhsIo,
    resolve: &impl Fn(&IoPath) -> Result<QId, LearnError>,
) -> Result<Rhs, LearnError> {
    match rhs {
        RhsIo::Call(p, child) => Ok(Rhs::Call {
            state: resolve(p)?,
            child: *child,
        }),
        RhsIo::Out(sym, kids) => {
            let mut out = Vec::with_capacity(kids.len());
            for k in kids {
                out.push(resolve_rhs(k, resolve)?);
            }
            Ok(Rhs::Out(*sym, out))
        }
    }
}

fn ptree_to_axiom(
    t: &PTree,
    next_hole: &mut impl FnMut(&PTree) -> Result<QId, LearnError>,
) -> Result<Rhs, LearnError> {
    match t.label() {
        PLabel::Top => unreachable!("⊤ cannot occur in out_S"),
        PLabel::Bottom => Ok(Rhs::Call {
            state: next_hole(t)?,
            child: 0,
        }),
        PLabel::Sym(sym) => {
            let mut kids = Vec::with_capacity(t.children().len());
            for c in t.children() {
                kids.push(ptree_to_axiom(c, next_hole)?);
            }
            Ok(Rhs::Out(sym, kids))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::{canonical_form, examples, same_canonical};
    use xtt_trees::parse_tree;

    fn flip_sample() -> Sample {
        let pairs = [
            ("root(#,#)", "root(#,#)"),
            ("root(a(#,#),#)", "root(#,a(#,#))"),
            ("root(#,b(#,#))", "root(b(#,#),#)"),
            (
                "root(a(#,a(#,#)),b(#,b(#,#)))",
                "root(b(#,b(#,#)),a(#,a(#,#)))",
            ),
        ];
        Sample::from_pairs(
            pairs
                .iter()
                .map(|(s, t)| (parse_tree(s).unwrap(), parse_tree(t).unwrap())),
        )
        .unwrap()
    }

    #[test]
    fn learns_flip_from_paper_sample() {
        // Example 7, end to end: 4 pairs suffice to infer Mflip.
        let fix = examples::flip();
        let learned = rpni_dtop(&flip_sample(), &fix.domain, fix.dtop.output()).unwrap();
        assert_eq!(learned.dtop.state_count(), 4);
        assert_eq!(learned.dtop.rule_count(), 6);
        // compare canonically against the target
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let got = canonical_form(&learned.dtop, Some(&fix.domain)).unwrap();
        assert!(same_canonical(&target, &got));
    }

    #[test]
    fn flip_merge_trace_matches_example_7() {
        // Example 7: p5 merges with p4 (ours: the a-copier), p6 with p3.
        let fix = examples::flip();
        let learned = rpni_dtop(&flip_sample(), &fix.domain, fix.dtop.output()).unwrap();
        assert_eq!(learned.merges.len(), 2);
        let shown: Vec<(String, String)> = learned
            .merges
            .iter()
            .map(|(p, i)| (p.to_string(), learned.states[*i].to_string()))
            .collect();
        // deeper a-list io-path merges into the a-copier state, b into b
        assert!(shown.contains(&(
            "((root,1)(a,2); (root,2)(a,2))".to_owned(),
            "((root,1); (root,2))".to_owned()
        )));
        assert!(shown.contains(&(
            "((root,2)(b,2); (root,1)(b,2))".to_owned(),
            "((root,2); (root,1))".to_owned()
        )));
    }

    #[test]
    fn promotion_order_follows_example_7() {
        // Example 7 discovers p1=(ε,(root,1)), p2=(ε,(root,2)),
        // then p4=((root,1),(root,2)) before p3=((root,2),(root,1)).
        let fix = examples::flip();
        let learned = rpni_dtop(&flip_sample(), &fix.domain, fix.dtop.output()).unwrap();
        let order: Vec<String> = learned.states.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            order,
            vec![
                "(ε; (root,1))",
                "(ε; (root,2))",
                "((root,1); (root,2))",
                "((root,2); (root,1))",
            ]
        );
    }

    #[test]
    fn empty_sample_rejected() {
        let fix = examples::flip();
        let err = rpni_dtop(&Sample::new(), &fix.domain, fix.dtop.output());
        assert_eq!(err.unwrap_err(), LearnError::EmptySample);
    }

    #[test]
    fn out_of_domain_input_rejected() {
        let fix = examples::flip();
        let mut s = flip_sample();
        s.add(
            parse_tree("root(b(#,#),#)").unwrap(),
            parse_tree("root(#,#)").unwrap(),
        )
        .unwrap();
        let err = rpni_dtop(&s, &fix.domain, fix.dtop.output()).unwrap_err();
        assert!(matches!(err, LearnError::InputOutsideDomain(_)));
    }

    #[test]
    fn undersized_sample_overgeneralizes_gold_style() {
        // Gold-style identification: on a non-characteristic sample the
        // learner may return a wrong guess (here: the constant transducer,
        // because out_S(ε) has no holes) — but it must not crash, and the
        // guess is consistent with the sample it saw.
        let fix = examples::flip();
        let s = Sample::from_pairs([(
            parse_tree("root(#,#)").unwrap(),
            parse_tree("root(#,#)").unwrap(),
        )])
        .unwrap();
        let learned = rpni_dtop(&s, &fix.domain, fix.dtop.output()).unwrap();
        assert_eq!(learned.dtop.state_count(), 0);
        assert_eq!(
            xtt_transducer::eval(&learned.dtop, &parse_tree("root(#,#)").unwrap()).unwrap(),
            parse_tree("root(#,#)").unwrap()
        );
        // ...and it is NOT the target: a larger input exposes the guess.
        let big = examples::flip_input(1, 0);
        assert_ne!(
            xtt_transducer::eval(&learned.dtop, &big),
            xtt_transducer::eval(&fix.dtop, &big)
        );
    }

    #[test]
    fn ambiguous_alignment_is_reported() {
        // With only these two pairs, both children of the input root are
        // functional alignments for the hole at (root,1) of out_S(ε), so
        // condition (O) fails and the learner reports the ambiguity.
        let fix = examples::flip();
        let s = Sample::from_pairs([
            (
                parse_tree("root(#,#)").unwrap(),
                parse_tree("root(#,#)").unwrap(),
            ),
            (
                parse_tree("root(a(#,#),b(#,#))").unwrap(),
                parse_tree("root(b(#,#),a(#,#))").unwrap(),
            ),
        ])
        .unwrap();
        let err = rpni_dtop(&s, &fix.domain, fix.dtop.output()).unwrap_err();
        assert!(matches!(err, LearnError::InsufficientSample(_)), "{err}");
    }

    #[test]
    fn learning_is_monotone_under_supersets() {
        // adding more correct pairs must not change the result
        let fix = examples::flip();
        let mut s = flip_sample();
        for (n, m) in [(2usize, 2usize), (3, 1), (0, 3), (2, 0)] {
            let input = examples::flip_input(n, m);
            let output = xtt_transducer::eval(&fix.dtop, &input).unwrap();
            s.add(input, output).unwrap();
        }
        let learned = rpni_dtop(&s, &fix.domain, fix.dtop.output()).unwrap();
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let got = canonical_form(&learned.dtop, Some(&fix.domain)).unwrap();
        assert!(same_canonical(&target, &got));
    }

    #[test]
    fn constant_transduction_learned_without_states() {
        // Example 1: the constant-b transduction needs no states at all.
        let fix = examples::constant_m1();
        let s = Sample::from_pairs([
            (parse_tree("a").unwrap(), parse_tree("b").unwrap()),
            (parse_tree("f(a,a)").unwrap(), parse_tree("b").unwrap()),
        ])
        .unwrap();
        let learned = rpni_dtop(&s, &fix.domain, fix.dtop.output()).unwrap();
        assert_eq!(learned.dtop.state_count(), 0);
        assert_eq!(learned.dtop.show_rhs(learned.dtop.axiom(), true), "b");
    }
}
