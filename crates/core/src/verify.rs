//! Decision procedures for the characteristic-sample conditions of
//! Definition 31.
//!
//! Conditions (C), (A), (T), (O) are directly checkable against the target
//! `min(τ)`; condition (N) quantifies over semantic non-mergeability and is
//! validated indirectly (the learner recovering `min(τ)` — exercised
//! throughout the test suite — is the behavioural check).

use std::fmt;

use xtt_transducer::{eval, out_at, state_io_paths, Canonical};
use xtt_trees::FPath;

use crate::sample::Sample;

/// Outcome of checking a sample against a target.
#[derive(Debug, Clone, Default)]
pub struct ConditionReport {
    /// Violations of (C): pairs not in `τ`.
    pub c_violations: Vec<String>,
    /// Violation of (A): `out_S(ε) ≠ out_τ(ε)`.
    pub a_violation: Option<String>,
    /// Violations of (T): state-io-path/symbol combinations where
    /// `out_S(u·f) ≠ out_τ(u·f)`.
    pub t_violations: Vec<String>,
    /// Violations of (O): holes without a unique functional alignment.
    pub o_violations: Vec<String>,
}

impl ConditionReport {
    pub fn ok(&self) -> bool {
        self.c_violations.is_empty()
            && self.a_violation.is_none()
            && self.t_violations.is_empty()
            && self.o_violations.is_empty()
    }
}

impl fmt::Display for ConditionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            return write!(f, "all checked conditions hold");
        }
        for v in &self.c_violations {
            writeln!(f, "(C) {v}")?;
        }
        if let Some(v) = &self.a_violation {
            writeln!(f, "(A) {v}")?;
        }
        for v in &self.t_violations {
            writeln!(f, "(T) {v}")?;
        }
        for v in &self.o_violations {
            writeln!(f, "(O) {v}")?;
        }
        Ok(())
    }
}

/// Checks conditions (C), (A), (T), (O) of Definition 31 for `sample`
/// against the target `min(τ)`.
pub fn check_characteristic_conditions(target: &Canonical, sample: &Sample) -> ConditionReport {
    let mut report = ConditionReport::default();

    // (C): S ⊆ τ.
    for (s, t) in sample.pairs() {
        match eval(&target.dtop, s) {
            Some(expected) if expected == *t => {}
            Some(expected) => report
                .c_violations
                .push(format!("{s} maps to {t}, but τ({s}) = {expected}")),
            None => report.c_violations.push(format!("{s} is outside dom(τ)")),
        }
    }

    // (A): out_S(ε) = out_τ(ε).
    let out_tau_root = out_at(target, &FPath::empty(), None);
    match (sample.out_root(), out_tau_root) {
        (Some(out_s), Some(out_tau)) => {
            if out_s != out_tau.ptree {
                report.a_violation = Some(format!(
                    "out_S(ε) = {out_s} but out_τ(ε) = {}",
                    out_tau.ptree
                ));
            }
        }
        (None, _) => report.a_violation = Some("sample is empty".into()),
        (_, None) => report.a_violation = Some("out_τ(ε) undefined".into()),
    }

    // (T) and (O), per state-io-path and enabled symbol.
    let paths = state_io_paths(target);
    for q in target.dtop.states() {
        let u = &paths[q.index()].input;
        let v = &paths[q.index()].output;
        let d = target.state_domain[q.index()];
        for &f in target.domain.alphabet().symbols() {
            if target.domain.transition(d, f).is_none() {
                continue;
            }
            let Some(out_tau) = out_at(target, u, Some(f)) else {
                continue;
            };
            let npath = u.with_label(f);
            match sample.out_at_npath(&npath) {
                None => report.t_violations.push(format!(
                    "out_S({npath}) undefined but out_τ({npath}) is not"
                )),
                Some(out_s) => {
                    if out_s != out_tau.ptree {
                        report.t_violations.push(format!(
                            "out_S({npath}) = {out_s} ≠ out_τ({npath}) = {}",
                            out_tau.ptree
                        ));
                        continue;
                    }
                    // (O): unique functional alignment per hole below v.
                    let rank = target
                        .domain
                        .alphabet()
                        .rank(f)
                        .expect("symbol in alphabet");
                    for hole in &out_tau.holes {
                        let Some(rel) = hole.output.strip_prefix(v) else {
                            continue; // hole outside this state's scope
                        };
                        let _ = rel;
                        let candidates: Vec<usize> = (0..rank)
                            .filter(|&i| {
                                let in_path = u.push(xtt_trees::Step::new(f, i as u32));
                                sample.residual_is_functional(&in_path, &hole.output)
                            })
                            .collect();
                        if candidates.len() != 1 {
                            report.o_violations.push(format!(
                                "hole {} of out_τ({npath}) has {} functional alignments",
                                hole.output,
                                candidates.len()
                            ));
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charsample::characteristic_sample;
    use xtt_transducer::{canonical_form, examples};
    use xtt_trees::parse_tree;

    #[test]
    fn generated_samples_pass_all_conditions() {
        for fix in [
            examples::flip(),
            examples::example6_m1(),
            examples::flip_k(3),
        ] {
            let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
            let sample = characteristic_sample(&target).unwrap();
            let report = check_characteristic_conditions(&target, &sample);
            assert!(report.ok(), "violations:\n{report}");
        }
    }

    #[test]
    fn paper_flip_sample_passes() {
        let fix = examples::flip();
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let pairs = [
            ("root(#,#)", "root(#,#)"),
            ("root(a(#,#),#)", "root(#,a(#,#))"),
            ("root(#,b(#,#))", "root(b(#,#),#)"),
            (
                "root(a(#,a(#,#)),b(#,b(#,#)))",
                "root(b(#,b(#,#)),a(#,a(#,#)))",
            ),
        ];
        let sample = Sample::from_pairs(
            pairs
                .iter()
                .map(|(s, t)| (parse_tree(s).unwrap(), parse_tree(t).unwrap())),
        )
        .unwrap();
        let report = check_characteristic_conditions(&target, &sample);
        assert!(report.ok(), "violations:\n{report}");
    }

    #[test]
    fn bad_pair_caught_by_c() {
        let fix = examples::flip();
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let sample = Sample::from_pairs([(
            parse_tree("root(#,#)").unwrap(),
            parse_tree("root(#,a(#,#))").unwrap(), // wrong output
        )])
        .unwrap();
        let report = check_characteristic_conditions(&target, &sample);
        assert!(!report.c_violations.is_empty());
    }

    #[test]
    fn undersized_sample_fails_t() {
        let fix = examples::flip();
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        // only the trivial pair: no witnesses for a/b rules
        let sample = Sample::from_pairs([(
            parse_tree("root(#,#)").unwrap(),
            parse_tree("root(#,#)").unwrap(),
        )])
        .unwrap();
        let report = check_characteristic_conditions(&target, &sample);
        assert!(!report.ok());
    }
}
