//! # xtt-core
//!
//! The learning algorithm of *"A Learning Algorithm for Top-Down XML
//! Transformations"* (Lemay, Maneth, Niehren; PODS 2010) — the paper's
//! primary contribution:
//!
//! * [`sample::Sample`] — finite functional sub-relations of a target
//!   transduction, with residuals `p⁻¹S` and maximal outputs `out_S`;
//! * [`rpni::rpni_dtop`] — the `RPNIdtop` algorithm of Figure 1: given a
//!   characteristic sample and a DTTA for the domain, identifies the
//!   unique minimal earliest compatible dtop `min(τ)` in polynomial time
//!   (Theorem 38);
//! * [`charsample::characteristic_sample`] — the constructive side of
//!   Proposition 34: builds a characteristic sample of polynomial
//!   cardinality from `min(τ)`;
//! * [`verify`] — decision procedures for the sample conditions (A), (T),
//!   (O) of Definition 31;
//! * [`strings`] — the paper's remark that the same machinery, over
//!   monadic trees, infers minimal subsequential string transducers.

pub mod charsample;
pub mod rpni;
pub mod sample;
pub mod strings;
pub mod verify;

pub use charsample::{
    characteristic_sample, characteristic_sample_with, CharSampleError, CharSampleOptions,
};
pub use rpni::{rpni_dtop, rpni_dtop_with, LearnError, Learned, Options};
pub use sample::{NotFunctional, Sample};
pub use verify::{check_characteristic_conditions, ConditionReport};
