//! Subsequential string transducers as dtops over monadic trees.
//!
//! The paper notes (Related Work) that its result, applied to monadic
//! trees, also allows to infer minimal (subsequential) string transducers
//! in the style of Oncina–García–Vidal (OSTIA). A string `abc` over an
//! alphabet `Σ` is encoded as the monadic tree `a(b(c($)))` with a fresh
//! end marker `$`; string functions become tree transductions, and the
//! generic pipeline (canonical form, characteristic samples, `RPNIdtop`)
//! applies unchanged.

use std::fmt;

use xtt_automata::Dtta;
use xtt_transducer::{canonical_form, eval, Canonical, Dtop, NormError};
use xtt_trees::{RankedAlphabet, Symbol, Tree};

use crate::charsample::{characteristic_sample, CharSampleError};
use crate::rpni::{rpni_dtop, LearnError};
use crate::sample::Sample;

/// The end-of-string marker.
pub const END: &str = "$";

/// A string alphabet together with its monadic tree encoding.
#[derive(Clone, Debug)]
pub struct StringAlphabet {
    letters: Vec<char>,
    ranked: RankedAlphabet,
}

impl StringAlphabet {
    /// Builds an alphabet from the given letters, in order.
    pub fn new(letters: &[char]) -> StringAlphabet {
        let mut ranked = RankedAlphabet::new();
        for &c in letters {
            ranked.add_named(&c.to_string(), 1);
        }
        ranked.add_named(END, 0);
        StringAlphabet {
            letters: letters.to_vec(),
            ranked,
        }
    }

    pub fn letters(&self) -> &[char] {
        &self.letters
    }

    pub fn ranked(&self) -> &RankedAlphabet {
        &self.ranked
    }

    /// Encodes a string as a monadic tree (`"ab"` → `a(b($))`).
    pub fn encode(&self, s: &str) -> Tree {
        let mut t = Tree::leaf_named(END);
        for c in s.chars().rev() {
            assert!(self.letters.contains(&c), "letter {c:?} not in alphabet");
            t = Tree::new(Symbol::new(&c.to_string()), vec![t]);
        }
        t
    }

    /// Decodes a monadic tree back into a string.
    pub fn decode(&self, t: &Tree) -> Option<String> {
        let mut out = String::new();
        let mut cur = t.clone();
        loop {
            if cur.symbol().name() == END {
                return cur.is_leaf().then_some(out);
            }
            if cur.arity() != 1 {
                return None;
            }
            out.push_str(cur.symbol().name());
            cur = cur.child(0).unwrap().clone();
        }
    }

    /// The universal domain: all strings over the alphabet.
    pub fn universal_domain(&self) -> Dtta {
        Dtta::universal(self.ranked.clone())
    }
}

/// A learned string transducer: a dtop over monadic encodings.
#[derive(Clone, Debug)]
pub struct StringTransducer {
    pub input: StringAlphabet,
    pub output: StringAlphabet,
    pub dtop: Dtop,
}

impl StringTransducer {
    /// Applies the transducer to a string.
    pub fn apply(&self, s: &str) -> Option<String> {
        let t = eval(&self.dtop, &self.input.encode(s))?;
        self.output.decode(&t)
    }

    /// Number of states — for subsequential transducers this matches the
    /// state count of the minimal sequential machine.
    pub fn state_count(&self) -> usize {
        self.dtop.state_count()
    }
}

/// Errors of string-transducer learning.
#[derive(Debug)]
pub enum StringLearnError {
    Learn(LearnError),
    NotFunctional,
}

impl fmt::Display for StringLearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StringLearnError::Learn(e) => write!(f, "{e}"),
            StringLearnError::NotFunctional => write!(f, "samples are not functional"),
        }
    }
}

impl std::error::Error for StringLearnError {}

/// Learns a string transducer from example pairs. The sample must be
/// characteristic for the target (e.g. produced by
/// [`string_characteristic_sample`] or a superset of it).
pub fn learn_string_transducer(
    input: &StringAlphabet,
    output: &StringAlphabet,
    examples: &[(&str, &str)],
) -> Result<StringTransducer, StringLearnError> {
    let sample = Sample::from_pairs(
        examples
            .iter()
            .map(|(s, t)| (input.encode(s), output.encode(t))),
    )
    .map_err(|_| StringLearnError::NotFunctional)?;
    let domain = input.universal_domain();
    let learned = rpni_dtop(&sample, &domain, output.ranked()).map_err(StringLearnError::Learn)?;
    Ok(StringTransducer {
        input: input.clone(),
        output: output.clone(),
        dtop: learned.dtop,
    })
}

/// Characteristic sample (as string pairs) for a target string transducer
/// given as a dtop over monadic encodings.
pub fn string_characteristic_sample(
    target: &Canonical,
    input: &StringAlphabet,
    output: &StringAlphabet,
) -> Result<Vec<(String, String)>, CharSampleError> {
    let sample = characteristic_sample(target)?;
    let mut out = Vec::with_capacity(sample.len());
    for (s, t) in sample.pairs() {
        let si = input
            .decode(s)
            .ok_or_else(|| CharSampleError::Internal("non-monadic input".into()))?;
        let ti = output
            .decode(t)
            .ok_or_else(|| CharSampleError::Internal("non-monadic output".into()))?;
        out.push((si, ti));
    }
    Ok(out)
}

/// A sequential-transducer transition: `(state, letter) ↦ (next state,
/// output word)`.
pub type SeqTransition = ((usize, char), (usize, String));

/// Builds the canonical form of a string transducer described by
/// sequential rules: `delta[(state, letter)] = (next_state, output_word)`
/// plus a final-output word per state. State 0 is initial.
///
/// This is the classical subsequential-transducer format; it is compiled
/// into a dtop over monadic encodings.
pub fn sequential_to_dtop(
    input: &StringAlphabet,
    output: &StringAlphabet,
    n_states: usize,
    delta: &[SeqTransition],
    final_out: &[(usize, String)],
) -> Result<Canonical, NormError> {
    let mut b = Dtop::builder(input.ranked().clone(), output.ranked().clone());
    for i in 0..n_states {
        b.add_state(format!("s{i}"));
    }
    b.set_axiom_str("<s0,x0>").unwrap();
    for &((q, letter), (q2, ref word)) in delta {
        // rule: s_q(letter(x1)) -> w1(w2(...(<s_q2, x1>)))
        let mut rhs = xtt_transducer::Rhs::Call {
            state: QIdOf(q2),
            child: 0,
        };
        for ch in word.chars().rev() {
            rhs = xtt_transducer::Rhs::Out(Symbol::new(&ch.to_string()), vec![rhs]);
        }
        b.add_rule(QIdOf(q), Symbol::new(&letter.to_string()), rhs)
            .map_err(|e| NormError::Internal(e.to_string()))?;
    }
    for &(q, ref word) in final_out {
        let mut rhs = xtt_transducer::Rhs::Out(Symbol::new(END), Vec::new());
        for ch in word.chars().rev() {
            rhs = xtt_transducer::Rhs::Out(Symbol::new(&ch.to_string()), vec![rhs]);
        }
        b.add_rule(QIdOf(q), Symbol::new(END), rhs)
            .map_err(|e| NormError::Internal(e.to_string()))?;
    }
    let dtop = b.build().map_err(|e| NormError::Internal(e.to_string()))?;
    canonical_form(&dtop, None)
}

#[allow(non_snake_case)]
fn QIdOf(i: usize) -> xtt_transducer::QId {
    xtt_transducer::QId(i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let alpha = StringAlphabet::new(&['a', 'b']);
        let t = alpha.encode("abba");
        assert_eq!(t.to_string(), "a(b(b(a($))))");
        assert_eq!(alpha.decode(&t).unwrap(), "abba");
        assert_eq!(alpha.decode(&alpha.encode("")).unwrap(), "");
    }

    /// The "replace a by x, b by y, but swap behaviour after the first b"
    /// machine: a 2-state subsequential transducer.
    fn target() -> (StringAlphabet, StringAlphabet, Canonical) {
        let input = StringAlphabet::new(&['a', 'b']);
        let output = StringAlphabet::new(&['x', 'y', 'z']);
        let delta = vec![
            ((0, 'a'), (0, "x".to_owned())),
            ((0, 'b'), (1, "y".to_owned())),
            ((1, 'a'), (1, "z".to_owned())),
            ((1, 'b'), (1, "y".to_owned())),
        ];
        let finals = vec![(0, String::new()), (1, String::new())];
        let canon = sequential_to_dtop(&input, &output, 2, &delta, &finals).unwrap();
        (input, output, canon)
    }

    #[test]
    fn sequential_machine_translates() {
        let (input, output, canon) = target();
        let t = StringTransducer {
            input,
            output,
            dtop: canon.dtop.clone(),
        };
        assert_eq!(t.apply("aab").unwrap(), "xxy");
        assert_eq!(t.apply("aba").unwrap(), "xyz");
        assert_eq!(t.apply("").unwrap(), "");
    }

    #[test]
    fn learn_string_transducer_from_characteristic_sample() {
        let (input, output, canon) = target();
        let pairs = string_characteristic_sample(&canon, &input, &output).unwrap();
        let borrowed: Vec<(&str, &str)> = pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let learned = learn_string_transducer(&input, &output, &borrowed).unwrap();
        assert_eq!(learned.state_count(), canon.dtop.state_count());
        for s in ["", "a", "b", "ab", "ba", "aababa", "bbbb"] {
            let expected = {
                let t = eval(&canon.dtop, &input.encode(s)).unwrap();
                output.decode(&t).unwrap()
            };
            assert_eq!(learned.apply(s).unwrap(), expected, "on {s:?}");
        }
    }

    #[test]
    fn learned_machine_is_minimal() {
        // the 2-state target cannot be represented with 1 state; the
        // learner must find exactly 2 (minimal subsequential machine).
        let (input, output, canon) = target();
        let pairs = string_characteristic_sample(&canon, &input, &output).unwrap();
        let borrowed: Vec<(&str, &str)> = pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let learned = learn_string_transducer(&input, &output, &borrowed).unwrap();
        assert_eq!(learned.state_count(), 2);
    }
}
