//! Characteristic samples (Definition 31, Proposition 34).
//!
//! Given the canonical transducer `min(τ)` (earliest, uniform, minimal,
//! with its trimmed domain automaton), this module constructs a sample `S`
//! satisfying the five conditions of Definition 31, with cardinality
//! polynomial in `|min(τ)|`:
//!
//! * **(C)** every pair is `(s, τ(s))` — by construction, outputs are
//!   produced by evaluating `min(τ)`;
//! * **(A)** `out_S(ε) = out_τ(ε)` — for every hole of the axiom we add the
//!   two root-output witnesses (Lemma 21) of the state producing there;
//! * **(T)** `out_S(u·f) = out_τ(u·f)` for every state-io-path `(u,v)` and
//!   enabled `f` — for every hole of `out_τ(u·f)` (computed symbolically
//!   with provenance by `xtt_transducer::out_at`) we embed the two
//!   witnesses of the responsible state at the responsible input node of a
//!   minimal context containing `u·f`;
//! * **(O)** unique variable alignment — the same two inputs differ at the
//!   hole while agreeing on every *other* child of the `f`-node, which
//!   breaks functionality of every wrong alignment;
//! * **(N)** non-equivalent states stay non-mergeable — for every pair of
//!   distinct states with equal residual domain languages we find a least
//!   distinguishing input by enumerating the residual language in size
//!   order, and embed it under both io-paths' input contexts.

use std::collections::HashMap;
use std::fmt;

use xtt_automata::{enumerate_language, language_classes, minimal_witnesses};
use xtt_transducer::{
    eval, eval_state, out_at, root_output_witnesses, state_io_paths, trans_io_paths, Canonical,
    NormError, QId,
};
use xtt_trees::{FPath, Tree};

use crate::sample::Sample;

/// Tuning knobs for the distinguisher search of condition (N).
#[derive(Debug, Clone)]
pub struct CharSampleOptions {
    /// Maximum number of candidate trees enumerated per state pair.
    pub distinguisher_max_trees: usize,
    /// Maximum size of candidate trees.
    pub distinguisher_max_size: usize,
}

impl Default for CharSampleOptions {
    fn default() -> Self {
        CharSampleOptions {
            distinguisher_max_trees: 20_000,
            distinguisher_max_size: 60,
        }
    }
}

/// Errors of characteristic-sample generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CharSampleError {
    Norm(NormError),
    /// Two states with equal domains could not be told apart within the
    /// search bounds — either raise the bounds or the transducer is not
    /// minimal.
    NoDistinguisher {
        q1: QId,
        q2: QId,
    },
    Internal(String),
}

impl fmt::Display for CharSampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharSampleError::Norm(e) => write!(f, "{e}"),
            CharSampleError::NoDistinguisher { q1, q2 } => write!(
                f,
                "no distinguishing input found for states {q1} and {q2} within bounds"
            ),
            CharSampleError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for CharSampleError {}

impl From<NormError> for CharSampleError {
    fn from(e: NormError) -> Self {
        CharSampleError::Norm(e)
    }
}

/// Builds a characteristic sample for the transduction of `min(τ)`.
pub fn characteristic_sample(c: &Canonical) -> Result<Sample, CharSampleError> {
    characteristic_sample_with(c, &CharSampleOptions::default())
}

/// [`characteristic_sample`] with explicit search bounds.
pub fn characteristic_sample_with(
    c: &Canonical,
    options: &CharSampleOptions,
) -> Result<Sample, CharSampleError> {
    let gen = Generator::new(c, options)?;
    gen.run()
}

struct Generator<'a> {
    c: &'a Canonical,
    options: &'a CharSampleOptions,
    state_paths: Vec<xtt_transducer::IoPath>,
    witnesses: Vec<(Tree, Tree)>,
    minwit: Vec<Option<Tree>>,
    dclasses: Vec<usize>,
}

impl<'a> Generator<'a> {
    fn new(c: &'a Canonical, options: &'a CharSampleOptions) -> Result<Self, CharSampleError> {
        Ok(Generator {
            c,
            options,
            state_paths: state_io_paths(c),
            witnesses: root_output_witnesses(c)?,
            minwit: minimal_witnesses(&c.domain),
            dclasses: language_classes(&c.domain),
        })
    }

    fn run(&self) -> Result<Sample, CharSampleError> {
        let mut sample = Sample::new();
        // Seed: the minimal domain tree (guarantees nonemptiness even for
        // constant transductions, whose axiom has no holes).
        let seed = self.minimal_tree(self.c.domain.initial())?;
        self.add(&mut sample, seed)?;

        self.condition_a(&mut sample)?;
        self.conditions_t_and_o(&mut sample)?;
        self.condition_n(&mut sample)?;
        Ok(sample)
    }

    fn minimal_tree(&self, d: xtt_automata::StateId) -> Result<Tree, CharSampleError> {
        self.minwit[d.index()]
            .clone()
            .ok_or_else(|| CharSampleError::Internal("empty domain state".into()))
    }

    /// Adds `(s, τ(s))`.
    fn add(&self, sample: &mut Sample, input: Tree) -> Result<(), CharSampleError> {
        let output = eval(&self.c.dtop, &input).ok_or_else(|| {
            CharSampleError::Internal(format!("generated input outside domain: {input}"))
        })?;
        sample
            .add(input, output)
            .map_err(|e| CharSampleError::Internal(e.to_string()))
    }

    /// Condition (A): make `out_S(ε) = out_τ(ε)`.
    fn condition_a(&self, sample: &mut Sample) -> Result<(), CharSampleError> {
        let out = out_at(self.c, &FPath::empty(), None)
            .ok_or_else(|| CharSampleError::Internal("out_τ(ε) undefined".into()))?;
        for hole in &out.holes {
            let (w1, w2) = &self.witnesses[hole.state.index()];
            self.add(sample, w1.clone())?;
            self.add(sample, w2.clone())?;
        }
        Ok(())
    }

    /// Conditions (T) and (O): for every state-io-path `(u,v)` and enabled
    /// symbol `f`, cover `out_τ(u·f)` and pin all alignments.
    fn conditions_t_and_o(&self, sample: &mut Sample) -> Result<(), CharSampleError> {
        for q in self.c.dtop.states() {
            let u = &self.state_paths[q.index()].input;
            let d = self.c.state_domain[q.index()];
            for &f in self.c.domain.alphabet().symbols() {
                if self.c.domain.transition(d, f).is_none() {
                    continue;
                }
                // minimal context containing u·f
                let base = self.context_with_symbol(u, f)?;
                self.add(sample, base.clone())?;
                let out = out_at(self.c, u, Some(f)).ok_or_else(|| {
                    CharSampleError::Internal(format!("out_τ({u}·{f}) undefined"))
                })?;
                for hole in &out.holes {
                    let (w1, w2) = &self.witnesses[hole.state.index()];
                    for w in [w1, w2] {
                        let variant = plug(&base, &hole.input, w.clone()).ok_or_else(|| {
                            CharSampleError::Internal(format!(
                                "hole input {} missing in context {base}",
                                hole.input
                            ))
                        })?;
                        self.add(sample, variant)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Condition (N): separate every pair of distinct states with equal
    /// residual domains, under every io-path the learner will compare.
    fn condition_n(&self, sample: &mut Sample) -> Result<(), CharSampleError> {
        let trans = trans_io_paths(self.c, &self.state_paths);
        // candidate "p2" paths: all state-io-paths and all trans-io-paths
        let mut p2s: Vec<(QId, FPath)> = Vec::new();
        for q in self.c.dtop.states() {
            p2s.push((q, self.state_paths[q.index()].input.clone()));
        }
        for t in &trans {
            p2s.push((t.target, t.path.input.clone()));
        }

        let mut dist_cache: HashMap<(QId, QId), Tree> = HashMap::new();
        for &(q2, ref u2) in &p2s {
            for q1 in self.c.dtop.states() {
                if q1 == q2 {
                    continue;
                }
                let d1 = self.c.state_domain[q1.index()];
                let d2 = self.c.state_domain[q2.index()];
                if self.dclasses[d1.index()] != self.dclasses[d2.index()] {
                    continue; // the domain check separates them already
                }
                let key = if q1 < q2 { (q1, q2) } else { (q2, q1) };
                let dist = match dist_cache.get(&key) {
                    Some(d) => d.clone(),
                    None => {
                        let d = self.distinguisher(key.0, key.1)?;
                        dist_cache.insert(key, d.clone());
                        d
                    }
                };
                // embed under p1's and p2's input contexts
                let s1 =
                    self.context_with_fill(&self.state_paths[q1.index()].input, dist.clone())?;
                self.add(sample, s1)?;
                let s2 = self.context_with_fill(u2, dist)?;
                self.add(sample, s2)?;
            }
        }
        Ok(())
    }

    /// Least tree of the common residual domain on which the two states'
    /// translations differ.
    fn distinguisher(&self, q1: QId, q2: QId) -> Result<Tree, CharSampleError> {
        let d = self.c.state_domain[q1.index()];
        let candidates = enumerate_language(
            &self.c.domain,
            d,
            self.options.distinguisher_max_trees,
            self.options.distinguisher_max_size,
        );
        for s in candidates {
            let t1 = eval_state(&self.c.dtop, q1, &s);
            let t2 = eval_state(&self.c.dtop, q2, &s);
            if t1.is_some() && t2.is_some() && t1 != t2 {
                return Ok(s);
            }
        }
        Err(CharSampleError::NoDistinguisher { q1, q2 })
    }

    /// Minimal input containing the labeled path `u`, with `fill` at the
    /// addressed node and minimal witnesses off the path.
    fn context_with_fill(&self, u: &FPath, fill: Tree) -> Result<Tree, CharSampleError> {
        self.context(u.steps(), self.c.domain.initial(), &mut |_d| {
            Ok(fill.clone())
        })
    }

    /// Minimal input containing the npath `u·f`: the node at `u` is labeled
    /// `f` with minimal-witness children.
    fn context_with_symbol(
        &self,
        u: &FPath,
        f: xtt_trees::Symbol,
    ) -> Result<Tree, CharSampleError> {
        self.context(u.steps(), self.c.domain.initial(), &mut |d| {
            let children = self.c.domain.transition(d, f).ok_or_else(|| {
                CharSampleError::Internal(format!("symbol {f} not allowed at context end"))
            })?;
            let kids: Result<Vec<Tree>, CharSampleError> = children
                .to_vec()
                .iter()
                .map(|dc| self.minimal_tree(*dc))
                .collect();
            Ok(Tree::new(f, kids?))
        })
    }

    fn context(
        &self,
        steps: &[xtt_trees::Step],
        d: xtt_automata::StateId,
        fill: &mut dyn FnMut(xtt_automata::StateId) -> Result<Tree, CharSampleError>,
    ) -> Result<Tree, CharSampleError> {
        let Some((step, rest)) = steps.split_first() else {
            return fill(d);
        };
        let dchildren = self
            .c
            .domain
            .transition(d, step.symbol)
            .ok_or_else(|| {
                CharSampleError::Internal(format!("path step {step} leaves the domain"))
            })?
            .to_vec();
        let mut children = Vec::with_capacity(dchildren.len());
        for (i, dc) in dchildren.iter().enumerate() {
            if i == step.child as usize {
                children.push(self.context(rest, *dc, fill)?);
            } else {
                children.push(self.minimal_tree(*dc)?);
            }
        }
        Ok(Tree::new(step.symbol, children))
    }
}

/// Replaces the subtree at the node addressed by labeled path `w`.
fn plug(base: &Tree, w: &FPath, replacement: Tree) -> Option<Tree> {
    if !w.belongs_to(base) {
        return None;
    }
    base.replace_at(&w.node_path(), replacement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpni::rpni_dtop;
    use xtt_transducer::{canonical_form, examples, same_canonical};

    fn roundtrip(fix: &examples::Fixture) -> (Canonical, Sample) {
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let sample = characteristic_sample(&target).unwrap();
        (target, sample)
    }

    #[test]
    fn flip_sample_is_learnable() {
        let fix = examples::flip();
        let (target, sample) = roundtrip(&fix);
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
        assert!(same_canonical(&target, &got), "learned:\n{}", learned.dtop);
    }

    #[test]
    fn flip_sample_is_small() {
        // Proposition 34: polynomially many pairs. For τflip the paper
        // gets 4; our generic generator is allowed a few more, but it must
        // stay small.
        let fix = examples::flip();
        let (_, sample) = roundtrip(&fix);
        assert!(
            sample.len() <= 40,
            "sample unexpectedly large: {} pairs",
            sample.len()
        );
    }

    #[test]
    fn library_sample_is_learnable() {
        let fix = examples::library();
        let target = canonical_form(&fix.dtop, None).unwrap();
        let sample = characteristic_sample(&target).unwrap();
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
        assert!(same_canonical(&target, &got));
        assert_eq!(learned.dtop.state_count(), 15);
    }

    #[test]
    fn constant_transduction_sample() {
        let fix = examples::constant_m1();
        let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let sample = characteristic_sample(&target).unwrap();
        assert!(!sample.is_empty());
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        assert_eq!(learned.dtop.state_count(), 0);
    }

    #[test]
    fn example6_needs_inspection_and_learns() {
        // f(c,a)→a, f(c,b)→b: no dtop without inspection realizes this
        // (Section 6); with the domain automaton the learner gets it.
        let fix = examples::example6_m1();
        let (target, sample) = roundtrip(&fix);
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
        assert!(same_canonical(&target, &got));
        assert_eq!(learned.dtop.state_count(), 2);
    }

    #[test]
    fn supersets_remain_characteristic() {
        let fix = examples::flip();
        let (target, mut sample) = roundtrip(&fix);
        for (n, m) in [(4usize, 0usize), (1, 4), (3, 3)] {
            let s = examples::flip_input(n, m);
            let t = xtt_transducer::eval(&fix.dtop, &s).unwrap();
            sample.add(s, t).unwrap();
        }
        let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
        let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
        assert!(same_canonical(&target, &got));
    }

    #[test]
    fn flip_k_families_learnable() {
        for k in 1..=4 {
            let fix = examples::flip_k(k);
            let target = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
            let sample = characteristic_sample(&target).unwrap();
            let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
            let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
            assert!(same_canonical(&target, &got), "flip_{k}");
            assert_eq!(learned.dtop.state_count(), 2 * k, "flip_{k}");
        }
    }

    #[test]
    fn relabel_chains_learnable() {
        for n in 1..=5 {
            let fix = examples::relabel_chain(n);
            let target = canonical_form(&fix.dtop, None).unwrap();
            let sample = characteristic_sample(&target).unwrap();
            let learned = rpni_dtop(&sample, &target.domain, target.dtop.output()).unwrap();
            let got = canonical_form(&learned.dtop, Some(&target.domain)).unwrap();
            assert!(same_canonical(&target, &got), "chain_{n}");
            assert_eq!(learned.dtop.state_count(), n, "chain_{n}");
        }
    }
}
