//! Samples: finite sub-relations of a target transduction, with residuals
//! and maximal outputs (Definitions 5, 10, and Section 8).
//!
//! The learner sees the target `τ` only through a [`Sample`] `S ⊆ τ`. All
//! the notions the algorithm needs are computed directly on the sample:
//!
//! * `out_S(u)` / `out_S(u·f)` — largest common prefix of the outputs of
//!   all pairs whose input contains the path;
//! * residuals `p⁻¹S` for a pair of paths `p = (u, v)`;
//! * functionality of residuals — the gate for io-paths of `S`.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use xtt_trees::{FPath, NPath, PTree, Tree};

/// A finite, functional set of input/output tree pairs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Sample {
    pairs: Vec<(Tree, Tree)>,
}

/// Error raised when a sample would contain two different outputs for the
/// same input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotFunctional {
    pub input: Tree,
}

impl fmt::Display for NotFunctional {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sample is not functional: two outputs for input {}",
            self.input
        )
    }
}

impl std::error::Error for NotFunctional {}

impl Sample {
    pub fn new() -> Sample {
        Sample::default()
    }

    /// Builds a sample from pairs; duplicate pairs are deduplicated, and
    /// conflicting outputs for one input are an error.
    pub fn from_pairs<I: IntoIterator<Item = (Tree, Tree)>>(
        pairs: I,
    ) -> Result<Sample, NotFunctional> {
        let mut s = Sample::new();
        for (input, output) in pairs {
            s.add(input, output)?;
        }
        Ok(s)
    }

    /// Adds a pair; a duplicate input with an equal output is a no-op.
    pub fn add(&mut self, input: Tree, output: Tree) -> Result<(), NotFunctional> {
        for (s, t) in &self.pairs {
            if *s == input {
                return if *t == output {
                    Ok(())
                } else {
                    Err(NotFunctional { input })
                };
            }
        }
        self.pairs.push((input, output));
        Ok(())
    }

    /// Merges another sample into this one.
    pub fn extend(&mut self, other: &Sample) -> Result<(), NotFunctional> {
        for (s, t) in &other.pairs {
            self.add(s.clone(), t.clone())?;
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub fn pairs(&self) -> &[(Tree, Tree)] {
        &self.pairs
    }

    /// Total number of nodes over all inputs and outputs — the size
    /// measure `|S|` used in the complexity statements (Theorem 38).
    pub fn total_size(&self) -> u64 {
        self.pairs.iter().map(|(s, t)| s.size() + t.size()).sum()
    }

    /// `out_S(ε)`: largest common prefix of all outputs. `None` for an
    /// empty sample (undefined in the paper).
    pub fn out_root(&self) -> Option<PTree> {
        if self.pairs.is_empty() {
            return None;
        }
        Some(PTree::lcp_many(
            self.pairs.iter().map(|(_, t)| PTree::from_tree(t)),
        ))
    }

    /// `out_S(u)` for a labeled input path `u`.
    pub fn out_at_path(&self, u: &FPath) -> Option<PTree> {
        let outputs: Vec<PTree> = self
            .pairs
            .iter()
            .filter(|(s, _)| u.belongs_to(s))
            .map(|(_, t)| PTree::from_tree(t))
            .collect();
        if outputs.is_empty() {
            return None;
        }
        Some(PTree::lcp_many(outputs))
    }

    /// `out_S(U)` for an npath `U = u·f`.
    pub fn out_at_npath(&self, u: &NPath) -> Option<PTree> {
        let outputs: Vec<PTree> = self
            .pairs
            .iter()
            .filter(|(s, _)| u.belongs_to(s))
            .map(|(_, t)| PTree::from_tree(t))
            .collect();
        if outputs.is_empty() {
            return None;
        }
        Some(PTree::lcp_many(outputs))
    }

    /// The residual `p⁻¹S` for `p = (u, v)` (Definition 5): all pairs
    /// `(u⁻¹s, v⁻¹t)` with `u ⊨ s` and `v ⊨ t`.
    pub fn residual(&self, u: &FPath, v: &FPath) -> Vec<(Tree, Tree)> {
        let mut out = Vec::new();
        for (s, t) in &self.pairs {
            let (Some(si), Some(ti)) = (u.resolve(s), v.resolve(t)) else {
                continue;
            };
            out.push((si, ti));
        }
        out
    }

    /// True if `p⁻¹S` is a partial function (no input maps to two outputs).
    /// Trees are shared `Rc`s, so storing them in the scratch map is cheap.
    pub fn residual_is_functional(&self, u: &FPath, v: &FPath) -> bool {
        let mut seen: HashMap<Tree, Tree> = HashMap::new();
        for (s, t) in &self.pairs {
            let (Some(si), Some(ti)) = (u.resolve(s), v.resolve(t)) else {
                continue;
            };
            match seen.get(&si) {
                Some(prev) if *prev != ti => return false,
                Some(_) => {}
                None => {
                    seen.insert(si, ti);
                }
            }
        }
        true
    }

    /// The residual as a map, or `None` if not functional.
    pub fn residual_function(&self, u: &FPath, v: &FPath) -> Option<HashMap<Tree, Tree>> {
        let mut map: HashMap<Tree, Tree> = HashMap::new();
        for (si, ti) in self.residual(u, v) {
            match map.get(&si) {
                Some(prev) if *prev != ti => return None,
                Some(_) => {}
                None => {
                    map.insert(si, ti);
                }
            }
        }
        Some(map)
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, t) in &self.pairs {
            writeln!(f, "{s} -> {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_trees::{parse_tree, Symbol};

    fn flip_sample() -> Sample {
        // the (corrected) characteristic sample of τflip
        let pairs = [
            ("root(#,#)", "root(#,#)"),
            ("root(a(#,#),#)", "root(#,a(#,#))"),
            ("root(#,b(#,#))", "root(b(#,#),#)"),
            (
                "root(a(#,a(#,#)),b(#,b(#,#)))",
                "root(b(#,b(#,#)),a(#,a(#,#)))",
            ),
        ];
        Sample::from_pairs(
            pairs
                .iter()
                .map(|(s, t)| (parse_tree(s).unwrap(), parse_tree(t).unwrap())),
        )
        .unwrap()
    }

    #[test]
    fn functionality_is_enforced() {
        let mut s = Sample::new();
        s.add(parse_tree("a").unwrap(), parse_tree("x").unwrap())
            .unwrap();
        s.add(parse_tree("a").unwrap(), parse_tree("x").unwrap())
            .unwrap(); // dup ok
        assert_eq!(s.len(), 1);
        let err = s.add(parse_tree("a").unwrap(), parse_tree("y").unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn out_root_of_flip_sample() {
        let s = flip_sample();
        assert_eq!(s.out_root().unwrap().to_string(), "root(⊥,⊥)");
        assert!(Sample::new().out_root().is_none());
    }

    #[test]
    fn out_at_npath_matches_paper() {
        let s = flip_sample();
        // out_S(ε·root): same as out_S(ε) here
        let u = FPath::empty().with_label(Symbol::new("root"));
        assert_eq!(s.out_at_npath(&u).unwrap().to_string(), "root(⊥,⊥)");
        // out_S((root,2)·b): inputs 3 and 4 → outputs root(b(...),...):
        // common prefix of root(b(#,#),#) and root(b(#,b(#,#)),a(#,a(#,#)))
        let u2 = FPath::parse_pairs(&[("root", 2)]).with_label(Symbol::new("b"));
        assert_eq!(s.out_at_npath(&u2).unwrap().to_string(), "root(b(#,⊥),⊥)");
    }

    #[test]
    fn residual_functionality_drives_alignment() {
        // Example 7: ((root,1),(root,1))⁻¹S contains (#,#) and (#,b(#,#)),
        // hence not functional; ((root,2),(root,1)) is functional.
        let s = flip_sample();
        let wrong = (
            FPath::parse_pairs(&[("root", 1)]),
            FPath::parse_pairs(&[("root", 1)]),
        );
        assert!(!s.residual_is_functional(&wrong.0, &wrong.1));
        let right = (
            FPath::parse_pairs(&[("root", 2)]),
            FPath::parse_pairs(&[("root", 1)]),
        );
        assert!(s.residual_is_functional(&right.0, &right.1));
        let map = s.residual_function(&right.0, &right.1).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(
            map[&parse_tree("b(#,#)").unwrap()],
            parse_tree("b(#,#)").unwrap()
        );
    }

    #[test]
    fn residual_requires_both_paths() {
        let s = flip_sample();
        // u belongs to every input, but v = (root,2)(a,1) only belongs to
        // the outputs of pairs 2 and 4 (the ones with an `a` at (root,2)).
        let u = FPath::parse_pairs(&[("root", 1)]);
        let v = FPath::parse_pairs(&[("root", 2), ("a", 1)]);
        let r = s.residual(&u, &v);
        assert_eq!(r.len(), 2);
        // ...and v = (root,1)(a,1) belongs to no output at all.
        let v2 = FPath::parse_pairs(&[("root", 1), ("a", 1)]);
        assert!(s.residual(&u, &v2).is_empty());
    }

    #[test]
    fn total_size_counts_all_nodes() {
        let s = flip_sample();
        assert_eq!(
            s.total_size(),
            s.pairs()
                .iter()
                .map(|(a, b)| a.size() + b.size())
                .sum::<u64>()
        );
    }
}
