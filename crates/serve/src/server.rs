//! The long-lived server: an epoll event loop in front of a bounded
//! worker pool around a shared [`Engine`], routing the handful of
//! endpoints of the transformation service.
//!
//! ```text
//! PUT    /transducers/{name}[?learn=1]   upload term-syntax rules, or learn
//!                                        from `input => output` sample lines
//! GET    /transducers                    list registered transducers
//! GET    /transducers/{name}             one transducer's summary
//! DELETE /transducers/{name}             unregister
//! POST   /transform/{name}?mode=&format=&validate=
//!                                        newline-delimited batch transform;
//!                                        chunked response, one line per doc,
//!                                        failures positional (`!error: …`;
//!                                        with validation, out-of-domain
//!                                        documents get `!error: type error
//!                                        at <path>: …` naming the first
//!                                        violating node)
//! POST   /typecheck/{name}               output typechecking: body is a DTTA
//!                                        schema (term syntax); answers
//!                                        ok/counterexample JSON
//! PUT    /encodings/{name}               upload a DTD; registers a ranked
//!                                        encoding usable via ?encoding=
//!                                        (422 on a malformed or ambiguous
//!                                        DTD); ?pcdata=v1,v2 sets a finite
//!                                        text universe, ?style=paper|
//!                                        path-closed the R* shape
//! GET    /encodings[/{name}]             list / inspect encodings (the
//!                                        built-in fcns is always there)
//! DELETE /encodings/{name}               unregister
//! PUT    /pipelines/{name}               register a pipeline: body is a
//!                                        comma/newline list of registered
//!                                        transducer names (τ₁ first);
//!                                        ?schema={encoding} specializes to
//!                                        that DTD encoding's domain,
//!                                        ?strategy=auto|composed|chained
//!                                        overrides the cost model (422 on
//!                                        undefined stages or an empty
//!                                        composition)
//! GET    /pipelines[/{name}]             list / inspect pipelines (plan
//!                                        report: strategy, probe timings,
//!                                        jump-table shrink)
//! DELETE /pipelines/{name}               unregister
//! POST   /transform/{name}               also dispatches to pipelines
//!                                        (any ?mode=, incl. stream; the
//!                                        plan's guard always validates;
//!                                        ?strategy= forces composed or
//!                                        chained per request)
//! GET    /slow                           recent slow-request lines (JSON
//!                                        ring, newest last)
//! GET    /healthz                        liveness (+ started_at/uptime)
//! GET    /stats                          counters (engine cache, validation,
//!                                        typecheck, queue, event loop,
//!                                        latency)
//! GET    /metrics                        the same counters in Prometheus
//!                                        text exposition format
//! POST   /shutdown                       graceful shutdown (drain, then exit)
//! ```
//!
//! Concurrency model: **one event-loop thread owns every socket** (see
//! `event_loop`) — it accepts, reads, and parses requests incrementally,
//! and writes responses from a bounded per-connection [`Outbuf`]. A
//! parsed request is handed to the bounded [`WorkQueue`]; `N` worker
//! threads pop requests, run the CPU work, and push the finished
//! disposition back through the event loop's wakeup pipe. A parked
//! keep-alive connection therefore holds *no thread* — only an epoll
//! registration and a buffer — so idle connections scale to the fd
//! limit, not the thread count. A full queue is answered `503`
//! immediately; a streamed response whose client stops draining yields
//! its worker at a document boundary and resumes when the buffer
//! empties. Shutdown (SIGTERM/SIGINT in the binary, `POST /shutdown`
//! anywhere) stops the listener, parses out what is already buffered,
//! drains the queue, finishes in-flight requests, and joins the workers
//! before [`Server::run`] returns.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xtt_engine::{DocFormat, Engine, EngineOptions, EvalMode};
use xtt_netio::Waker;
use xtt_obs::{EvalObserver, Histogram, Trace, TraceSampler};
use xtt_pipeline::{StageDef, Strategy, StrategyChoice};

use crate::encodings::EncodingRegistry;
use crate::event_loop;
use crate::http::{write_response, write_response_conn, ChunkedWriter, Request};
use crate::outbuf::{ConnWriter, Outbuf};
use crate::pipelines::{PipelineEntry, PipelineRegistry};
use crate::pool::WorkQueue;
use crate::registry::{self, escape_json, Entry, Registry, Source};
use crate::stats::ServerStats;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads answering requests; 0 = one per available CPU.
    pub workers: usize,
    /// Backpressure bound: requests queued ahead of the workers.
    pub queue_capacity: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Per-connection inactivity timeout: reading a request, or draining
    /// a response the client has stopped accepting.
    pub io_timeout: Duration,
    /// Write deadline for streamed (`mode=stream`) responses: a client
    /// whose output buffer makes no progress for this long has its
    /// response aborted (and the abort counted in
    /// `streaming.write_timeouts`), so a slow consumer cannot pin a
    /// worker past one deadline.
    pub stream_write_deadline: Duration,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_timeout: Duration,
    /// Requests served per connection before the server closes it
    /// (`1` = one request per connection, the pre-keep-alive behavior).
    pub keep_alive_limit: usize,
    /// Per-connection output buffer bound. A streamed response that
    /// backs up past half of this yields its worker at the next document
    /// boundary and resumes once the event loop has drained the buffer
    /// to a quarter.
    pub stream_buffer: usize,
    /// Trace one in N transform requests through the evaluation
    /// pipeline (tokenize/encode/guard/eval/emit stage stamps, surfaced
    /// as `Server-Timing` + `X-Xtt-Trace-Id` response headers and in the
    /// slow-request log). `0` disables sampling entirely — the engine
    /// then sees a `None` observer and pays nothing.
    pub trace_sample: u64,
    /// Requests slower than this get a structured `slow-request` line on
    /// stderr (with the stage breakdown when the request was sampled).
    /// Zero disables the log.
    pub slow_request: Duration,
    /// The wrapped engine (cache capacity, default mode/format, batch
    /// workers *inside* one transform request).
    pub engine: EngineOptions,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 0,
            queue_capacity: 128,
            max_body: 64 * 1024 * 1024,
            io_timeout: Duration::from_secs(30),
            stream_write_deadline: Duration::from_secs(10),
            keep_alive_timeout: Duration::from_secs(5),
            keep_alive_limit: 1000,
            stream_buffer: 256 * 1024,
            trace_sample: 0,
            slow_request: Duration::from_secs(1),
            engine: EngineOptions {
                // A copying transducer turns a 100-byte document into an
                // exponential output; a server must bound what it will
                // materialize (cheap DAG pre-flight, per-document error).
                max_output_nodes: Some(10_000_000),
                ..EngineOptions::default()
            },
        }
    }
}

/// One unit of worker work, handed off by the event loop.
pub(crate) enum Job {
    /// A fully parsed request on connection `token`.
    Request {
        token: u64,
        request: Request,
        /// This connection's request ordinal (1-based) — the keep-alive
        /// limit input.
        served: usize,
        out: Arc<Outbuf>,
        /// When the event loop pushed the job (queue-wait histogram).
        enqueued: Instant,
    },
    /// A stream job that yielded to a slow client, resuming now that the
    /// buffer has drained.
    Resume {
        token: u64,
        job: StreamJob,
        out: Arc<Outbuf>,
    },
}

/// A worker's verdict on one job, returned through the done-list.
pub(crate) struct Done {
    pub token: u64,
    pub disposition: Disposition,
}

pub(crate) enum Disposition {
    /// The response is fully buffered; drain it, then keep or close.
    Finish { keep: bool },
    /// The response is unrecoverable (write deadline, I/O error): close.
    Abort,
    /// A streamed response paused at a document boundary; park the
    /// connection until the buffer drains, then resume the job.
    Yield { job: StreamJob },
}

/// What a transform request executes: one registered transducer, or a
/// registered pipeline under a concrete strategy (the plan's pick, or the
/// request's `?strategy=` override).
pub(crate) enum StreamTarget {
    Transducer(Arc<Entry>),
    Pipeline {
        entry: Arc<PipelineEntry>,
        strategy: Strategy,
        /// Pre-registered `xtt_pipeline_stage_events{stage=…}` handles,
        /// one per stage, so the per-document callback never touches the
        /// registry mutex.
        hists: Vec<Arc<Histogram>>,
    },
}

impl StreamTarget {
    fn name(&self) -> &str {
        match self {
            StreamTarget::Transducer(e) => &e.name,
            StreamTarget::Pipeline { entry, .. } => &entry.name,
        }
    }
}

/// The resumable state of one `mode=stream` transform response.
pub(crate) struct StreamJob {
    target: StreamTarget,
    docs: Vec<String>,
    /// Next document index to evaluate.
    next: usize,
    format: DocFormat,
    validate: bool,
    failed: u64,
    type_errors: u64,
    keep: bool,
    head_written: bool,
    started: Instant,
    /// Sampled pipeline trace; stages accumulate across yields.
    trace: Option<Trace>,
}

/// What routing one request produced.
pub(crate) enum RouteStep {
    Done { keep: bool },
    Yield(StreamJob),
}

pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) registry: Registry,
    pub(crate) encodings: EncodingRegistry,
    pub(crate) pipelines: PipelineRegistry,
    pub(crate) stats: ServerStats,
    pub(crate) queue: WorkQueue<Job>,
    /// Finished jobs queued for the event loop, paired with a waker kick.
    pub(crate) done: Mutex<Vec<Done>>,
    pub(crate) waker: Waker,
    pub(crate) sampler: TraceSampler,
    pub(crate) opts: ServeOptions,
}

impl Shared {
    /// Flips the shutdown flag *and* kicks the event loop so the drain
    /// starts now, not at the next tick (idempotent).
    pub(crate) fn begin_shutdown(&self) {
        self.queue.shutdown();
        let _ = self.waker.wake();
    }

    pub(crate) fn take_done(&self) -> Vec<Done> {
        std::mem::take(&mut *self.done.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub(crate) fn push_done(&self, done: Done) {
        self.done
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(done);
        let _ = self.waker.wake();
    }
}

/// A cloneable handle for observing and stopping a running server.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Triggers graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shared.queue.is_shutting_down()
    }

    /// The `/stats` JSON snapshot.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// The engine shared with the server (e.g. to pre-warm transducers).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The transducer registry (e.g. to preload examples at boot).
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }
}

/// The bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (`port 0` picks an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let waker = Waker::new()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine: Engine::shared(opts.engine.clone()),
                registry: Registry::new(),
                encodings: EncodingRegistry::new(),
                // Plan-cache cardinality tracks the engine's compile LRU.
                pipelines: PipelineRegistry::new(opts.engine.cache_capacity),
                stats: ServerStats::new(),
                queue: WorkQueue::new(opts.queue_capacity),
                done: Mutex::new(Vec::new()),
                waker,
                sampler: TraceSampler::new(opts.trace_sample),
                opts,
            }),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the event loop until shutdown, then drains and joins the
    /// workers. Blocking; returns once the last in-flight request is
    /// answered and the last response byte is on the wire.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        let worker_count = if shared.opts.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            shared.opts.workers
        };
        let workers: Vec<_> = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xtt-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        // The caller's thread *is* the event loop; it returns once every
        // connection has been answered and closed.
        let result = event_loop::run(&shared, listener);

        // Belt and braces for the error path (a healthy exit has already
        // drained): release the workers and wait them out.
        shared.begin_shutdown();
        while !shared.queue.drained() {
            std::thread::sleep(Duration::from_millis(10));
        }
        for w in workers {
            let _ = w.join();
        }
        result
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((job, _guard)) = shared.queue.pop() {
        shared.stats.queue_depth.set(shared.queue.depth() as u64);
        let (token, disposition) = match job {
            Job::Request {
                token,
                request,
                served,
                out,
                enqueued,
            } => {
                shared
                    .stats
                    .queue_wait
                    .record(enqueued.elapsed().as_micros() as u64);
                let keep = request.keep_alive()
                    && served < shared.opts.keep_alive_limit.max(1)
                    && !shared.queue.is_shutting_down();
                let mut w = ConnWriter::new(&out, &shared.waker, shared.opts.io_timeout);
                let result =
                    catch_unwind(AssertUnwindSafe(|| route(shared, &request, &mut w, keep)));
                let disposition = match result {
                    Ok(Ok(RouteStep::Done { keep })) => Disposition::Finish { keep },
                    Ok(Ok(RouteStep::Yield(job))) => Disposition::Yield { job },
                    Ok(Err(_)) => Disposition::Abort,
                    Err(_) => {
                        shared.stats.handler_panics.inc();
                        let mut buf = Vec::new();
                        let _ = write_response(
                            &mut buf,
                            500,
                            "text/plain",
                            &[],
                            b"internal error: handler panicked\n",
                        );
                        out.force_push(&buf);
                        Disposition::Finish { keep: false }
                    }
                };
                (token, disposition)
            }
            Job::Resume { token, job, out } => {
                let mut w = ConnWriter::new(&out, &shared.waker, shared.opts.stream_write_deadline);
                let result = catch_unwind(AssertUnwindSafe(|| run_stream_job(shared, job, &mut w)));
                let disposition = match result {
                    Ok(Ok(RouteStep::Done { keep })) => Disposition::Finish { keep },
                    Ok(Ok(RouteStep::Yield(job))) => Disposition::Yield { job },
                    Ok(Err(_)) => Disposition::Abort,
                    Err(_) => {
                        shared.stats.handler_panics.inc();
                        Disposition::Abort
                    }
                };
                (token, disposition)
            }
        };
        // A yielded job is parked work that WILL come back: hold the
        // queue open (the drain must not complete under it) before the
        // in-flight guard drops or the event loop sees the disposition.
        if matches!(disposition, Disposition::Yield { .. }) {
            shared.queue.hold();
        }
        shared.push_done(Done { token, disposition });
    }
}

/// Routes one request into the connection's output buffer. `keep` is the
/// connection disposition every response must carry; the returned
/// [`RouteStep`] tells the event loop whether the connection may be kept
/// (shutdown forces a close) or the response yielded mid-stream.
fn route(
    shared: &Shared,
    req: &Request,
    w: &mut ConnWriter<'_>,
    keep: bool,
) -> io::Result<RouteStep> {
    let started = Instant::now();
    let segments: Vec<&str> = req
        .path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    // Shutdown always closes; everything else follows the caller.
    let keep = keep && !matches!(segments.as_slice(), ["shutdown"]);
    let respond = |w: &mut ConnWriter<'_>, status: u16, ct: &str, body: &[u8]| {
        write_response_conn(w, status, ct, &[], body, keep)
    };
    let r = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let body = format!(
                "{{\"ok\":true,\"started_at\":{},\"uptime_seconds\":{}}}\n",
                shared.stats.started_unix,
                shared.stats.uptime_seconds(),
            );
            let r = respond(w, 200, "application/json", body.as_bytes());
            shared.stats.health.record(started, 200);
            r
        }
        ("GET", ["stats"]) => {
            let body = shared.stats_json();
            let r = respond(w, 200, "application/json", body.as_bytes());
            shared.stats.stats.record(started, 200);
            r
        }
        ("GET", ["metrics"]) => {
            let body = shared.metrics_text();
            let r = respond(w, 200, "text/plain; version=0.0.4", body.as_bytes());
            shared.stats.stats.record(started, 200);
            r
        }
        ("GET", ["transducers"]) => {
            let body = shared.registry.list_json();
            let r = respond(w, 200, "application/json", body.as_bytes());
            shared.stats.transducers.record(started, 200);
            r
        }
        ("GET", ["transducers", name]) => {
            let (status, body) = match shared.registry.get(name) {
                Some(entry) => (200, entry.json()),
                None => (404, error_json("unknown transducer")),
            };
            let r = respond(w, status, "application/json", body.as_bytes());
            shared.stats.transducers.record(started, status);
            r
        }
        ("PUT", ["transducers", name]) => {
            let (status, body) = put_transducer(shared, req, name);
            let r = respond(w, status, "application/json", body.as_bytes());
            shared.stats.transducers.record(started, status);
            r
        }
        ("DELETE", ["transducers", name]) => {
            let status = if shared.registry.remove(name) {
                204
            } else {
                404
            };
            let r = respond(w, status, "text/plain", b"");
            shared.stats.transducers.record(started, status);
            r
        }
        ("GET", ["encodings"]) => {
            let body = shared.encodings.list_json();
            let r = respond(w, 200, "application/json", body.as_bytes());
            shared.stats.encodings.record(started, 200);
            r
        }
        ("GET", ["encodings", name]) => {
            let (status, body) = match shared.encodings.get(name) {
                Some(entry) => (200, entry.json()),
                None if *name == "fcns" => (200, "{\"name\":\"fcns\",\"builtin\":true}".to_owned()),
                None => (404, error_json("unknown encoding")),
            };
            let r = respond(w, status, "application/json", body.as_bytes());
            shared.stats.encodings.record(started, status);
            r
        }
        ("PUT", ["encodings", name]) => {
            let (status, body) = put_encoding(shared, req, name);
            let r = respond(w, status, "application/json", body.as_bytes());
            shared.stats.encodings.record(started, status);
            r
        }
        ("DELETE", ["encodings", name]) => {
            let status = if shared.encodings.remove(name) {
                204
            } else {
                404
            };
            let r = respond(w, status, "text/plain", b"");
            shared.stats.encodings.record(started, status);
            r
        }
        ("GET", ["pipelines"]) => {
            let body = shared.pipelines.list_json();
            let r = respond(w, 200, "application/json", body.as_bytes());
            shared.stats.pipelines.record(started, 200);
            r
        }
        ("GET", ["pipelines", name]) => {
            let (status, body) = match shared.pipelines.get(name) {
                Some(entry) => (200, entry.json()),
                None => (404, error_json("unknown pipeline")),
            };
            let r = respond(w, status, "application/json", body.as_bytes());
            shared.stats.pipelines.record(started, status);
            r
        }
        ("PUT", ["pipelines", name]) => {
            let (status, body) = put_pipeline(shared, req, name);
            let r = respond(w, status, "application/json", body.as_bytes());
            shared.stats.pipelines.record(started, status);
            r
        }
        ("DELETE", ["pipelines", name]) => {
            let status = if shared.pipelines.remove(name) {
                204
            } else {
                404
            };
            let r = respond(w, status, "text/plain", b"");
            shared.stats.pipelines.record(started, status);
            r
        }
        ("GET", ["slow"]) => {
            let body = shared.stats.slow_json();
            let r = respond(w, 200, "application/json", body.as_bytes());
            shared.stats.stats.record(started, 200);
            r
        }
        ("POST", ["transform", name]) => return transform(shared, req, name, w, started, keep),
        ("POST", ["typecheck", name]) => {
            let (status, body) = typecheck(shared, req, name);
            let r = respond(w, status, "application/json", body.as_bytes());
            shared.stats.typecheck.record(started, status);
            r
        }
        ("POST", ["shutdown"]) => {
            let r = respond(w, 200, "text/plain", b"draining\n");
            shared.stats.other.record(started, 200);
            shared.begin_shutdown();
            r
        }
        (_, ["healthz" | "stats" | "metrics" | "slow" | "shutdown"])
        | (_, ["transducers" | "transform" | "typecheck" | "encodings" | "pipelines", ..]) => {
            let r = respond(w, 405, "text/plain", b"method not allowed\n");
            shared.stats.other.record(started, 405);
            r
        }
        _ => {
            let r = respond(w, 404, "text/plain", b"no such endpoint\n");
            shared.stats.other.record(started, 404);
            r
        }
    };
    r.map(|()| RouteStep::Done { keep })
}

/// `PUT /encodings/{name}`: body is a DTD; `?pcdata=v1,v2` sets a finite
/// text universe (default: the paper's abstract pcdata); `?style=paper|
/// path-closed` picks the `R*` shape. A malformed or non-1-unambiguous
/// DTD answers `422` and registers nothing.
fn put_encoding(shared: &Shared, req: &Request, name: &str) -> (u16, String) {
    if !Registry::valid_name(name) {
        return (
            400,
            error_json("encoding names are [A-Za-z0-9_.-], at most 64 bytes"),
        );
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return (400, error_json(&e.to_string())),
    };
    let pcdata = req.query_param("pcdata").map(|v| {
        v.split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect::<Vec<_>>()
    });
    let style = match req.query_param("style") {
        None | Some("paper") => xtt_xml::EncodingStyle::Paper,
        Some("path-closed" | "pathclosed") => xtt_xml::EncodingStyle::PathClosed,
        Some(other) => {
            return (
                400,
                error_json(&format!("bad style '{other}' (paper or path-closed)")),
            )
        }
    };
    match shared.encodings.upload(name, body, pcdata, style) {
        Ok(entry) => (201, entry.json()),
        Err(e) => (422, error_json(&e.to_string())),
    }
}

/// `PUT /pipelines/{name}`: body is the stage list — registered
/// transducer names separated by commas or newlines, in application order
/// (τ₁ first). `?schema={encoding}` specializes the stages to an uploaded
/// DTD encoding's domain automaton; `?strategy=` pins the execution
/// strategy instead of letting the cost probe decide. Undefined stages,
/// an empty stage list, and a composition with an empty domain all answer
/// `422` and register nothing.
fn put_pipeline(shared: &Shared, req: &Request, name: &str) -> (u16, String) {
    if !Registry::valid_name(name) {
        return (
            400,
            error_json("pipeline names are [A-Za-z0-9_.-], at most 64 bytes"),
        );
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return (400, error_json(&e.to_string())),
    };
    let stage_names: Vec<&str> = body
        .split(['\n', ','])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if stage_names.is_empty() {
        return (
            422,
            error_json("pipeline body must list at least one registered transducer"),
        );
    }
    let mut stages = Vec::with_capacity(stage_names.len());
    let mut missing = Vec::new();
    for stage_name in &stage_names {
        match shared.registry.get(stage_name) {
            Some(entry) => stages.push(StageDef {
                name: (*stage_name).to_owned(),
                dtop: Arc::new(entry.dtop.clone()),
            }),
            None => missing.push((*stage_name).to_owned()),
        }
    }
    if !missing.is_empty() {
        return (
            422,
            error_json(&format!("undefined stages: {}", missing.join(", "))),
        );
    }
    let schema = match req.query_param("schema") {
        None => None,
        Some("fcns") => {
            return (
                422,
                error_json("the built-in fcns encoding carries no schema; upload a DTD encoding"),
            )
        }
        Some(enc_name) => match shared.encodings.get(enc_name) {
            Some(entry) => Some((enc_name.to_owned(), entry.encoding.domain())),
            None => {
                return (
                    422,
                    error_json(&format!("unknown schema encoding '{enc_name}'")),
                )
            }
        },
    };
    let choice = match req.query_param("strategy") {
        None => StrategyChoice::Auto,
        Some(v) => match StrategyChoice::parse(v) {
            Some(c) => c,
            None => {
                return (
                    400,
                    error_json(&format!("bad strategy '{v}' (auto, composed, chained)")),
                )
            }
        },
    };
    match shared.pipelines.register(name, stages, schema, choice) {
        Ok(entry) => (201, entry.json()),
        Err(e) => (422, error_json(&format!("cannot plan pipeline: {e}"))),
    }
}

fn put_transducer(shared: &Shared, req: &Request, name: &str) -> (u16, String) {
    if !Registry::valid_name(name) {
        return (
            400,
            error_json("transducer names are [A-Za-z0-9_.-], at most 64 bytes"),
        );
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return (400, error_json(&e.to_string())),
    };
    let learn = match req.query_param("learn") {
        None | Some("0") | Some("false") => false,
        Some("1") | Some("true") => true,
        Some(other) => {
            return (
                400,
                error_json(&format!("bad learn value '{other}' (use 1 or true)")),
            )
        }
    };
    let (dtop, source) = match if learn {
        registry::learn_dtop(body).map(|d| (d, Source::Learned))
    } else {
        registry::parse_rules(body).map(|d| (d, Source::Uploaded))
    } {
        Ok(parsed) => parsed,
        Err(e) => return (422, error_json(&e.to_string())),
    };
    // Compile *before* registering: a transducer the engine cannot run is
    // rejected here instead of poisoning every later transform — and a
    // successful compile pre-warms the fingerprint LRU, so the first
    // transform after a hot swap never pays the compile.
    if let Err(e) = shared.engine.compiled(&dtop) {
        return (
            422,
            error_json(&format!("transducer does not compile: {e}")),
        );
    }
    // Pre-build the domain guard as well (the subset construction can be
    // expensive, so pay it at upload, not on the first validated
    // request). When the server validates by default, an unguardable
    // transducer would poison every transform — reject it here; with
    // validation off it is registered anyway and only an explicit
    // `?validate=1` request will surface the guard error per batch.
    if let Err(e) = shared.engine.guard(&dtop) {
        if shared.opts.engine.validate {
            return (
                422,
                error_json(&format!("transducer cannot be guarded: {e}")),
            );
        }
    }
    let entry = shared.registry.register(name, dtop, source);
    (201, entry.json())
}

fn transform(
    shared: &Shared,
    req: &Request,
    name: &str,
    w: &mut ConnWriter<'_>,
    started: Instant,
    keep: bool,
) -> io::Result<RouteStep> {
    // Transducers shadow pipelines on name collisions (pipelines are the
    // newer namespace; give them distinct names).
    enum Found {
        Transducer(Arc<Entry>),
        Pipeline(Arc<PipelineEntry>),
    }
    let found = match shared.registry.get(name) {
        Some(entry) => Found::Transducer(entry),
        None => match shared.pipelines.get(name) {
            Some(entry) => Found::Pipeline(entry),
            None => {
                let r = write_response_conn(
                    w,
                    404,
                    "application/json",
                    &[],
                    error_json("unknown transducer or pipeline").as_bytes(),
                    keep,
                );
                shared.stats.transform.record(started, 404);
                return r.map(|()| RouteStep::Done { keep });
            }
        },
    };
    let mode = match optional(req.query_param("mode"), EvalMode::parse) {
        Ok(m) => m.unwrap_or(shared.opts.engine.mode),
        Err(v) => return bad_param(shared, w, started, "mode", &v, keep),
    };
    let format = match optional(req.query_param("format"), DocFormat::parse) {
        Ok(f) => f.unwrap_or(shared.opts.engine.format.clone()),
        Err(v) => return bad_param(shared, w, started, "format", &v, keep),
    };
    // `?encoding=fcns|{name}` overrides the format: genuine unranked XML
    // through a ranked encoding (named ones come from PUT /encodings).
    // `?output_encoding={name}` decodes outputs with a different DTD
    // (schema-changing transformations like the paper's xmlflip).
    let format = match req.query_param("encoding") {
        None => {
            if let Some(out) = req.query_param("output_encoding") {
                return bad_param(
                    shared,
                    w,
                    started,
                    "output_encoding",
                    &format!("{out} (requires ?encoding=)"),
                    keep,
                );
            }
            format
        }
        Some(enc_name) => {
            let out_name = req.query_param("output_encoding").unwrap_or(enc_name);
            match shared.encodings.codec_pair(enc_name, out_name) {
                Some(codec) => DocFormat::Encoded(codec),
                None => {
                    return bad_param(
                        shared,
                        w,
                        started,
                        "encoding",
                        &format!("{enc_name} -> {out_name}"),
                        keep,
                    )
                }
            }
        }
    };
    let validate = match optional(req.query_param("validate"), parse_bool) {
        Ok(v) => v.unwrap_or(shared.opts.engine.validate),
        Err(v) => return bad_param(shared, w, started, "validate", &v, keep),
    };
    // `?strategy=` pins a pipeline's execution strategy for this request
    // (auto = the plan's measured pick). Ignored for plain transducers.
    let strategy_choice = match optional(req.query_param("strategy"), StrategyChoice::parse) {
        Ok(c) => c.unwrap_or(StrategyChoice::Auto),
        Err(v) => return bad_param(shared, w, started, "strategy", &v, keep),
    };
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => {
            let r = write_response_conn(
                w,
                400,
                "application/json",
                &[],
                error_json(&e.to_string()).as_bytes(),
                keep,
            );
            shared.stats.transform.record(started, 400);
            return r.map(|()| RouteStep::Done { keep });
        }
    };
    // One document per line, positions preserved exactly; only the final
    // newline's empty remainder is dropped.
    let mut docs: Vec<String> = body.split('\n').map(|l| l.trim().to_owned()).collect();
    if docs.last().is_some_and(String::is_empty) {
        docs.pop();
    }
    // One in `trace_sample` transform requests carries a pipeline trace
    // through the engine; everyone else passes a `None` observer, which
    // the evaluation paths skip entirely.
    let mut trace = shared.sampler.sample().map(Trace::new);
    if trace.is_some() {
        shared.stats.traces_sampled.inc();
    }
    let target = match found {
        Found::Transducer(entry) => {
            shared
                .stats
                .record_transform_target("transducer", &entry.name);
            StreamTarget::Transducer(entry)
        }
        Found::Pipeline(entry) => {
            shared
                .stats
                .record_transform_target("pipeline", &entry.name);
            shared.stats.pipeline_transforms.inc();
            let strategy = match strategy_choice {
                StrategyChoice::Auto => entry.plan.strategy,
                StrategyChoice::Composed => Strategy::Composed,
                StrategyChoice::Chained => Strategy::Chained,
            };
            let hists = (0..entry.plan.stages_for(strategy).len())
                .map(|i| shared.stats.stage_events(i))
                .collect();
            StreamTarget::Pipeline {
                entry,
                strategy,
                hists,
            }
        }
    };
    if mode == EvalMode::Streaming {
        let job = StreamJob {
            target,
            docs,
            next: 0,
            format,
            validate,
            failed: 0,
            type_errors: 0,
            keep,
            head_written: false,
            started,
            trace,
        };
        return run_stream_job(shared, job, w);
    }
    let results = match &target {
        StreamTarget::Transducer(entry) => match trace.as_mut() {
            Some(t) => shared.engine.transform_batch_observed(
                &entry.dtop,
                &docs,
                mode,
                format,
                validate,
                Some(t),
            ),
            None => shared.engine.transform_batch_with_validation(
                &entry.dtop,
                &docs,
                mode,
                format,
                validate,
            ),
        },
        // The plan's guard (dom(composition) ∩ schema) always validates a
        // pipeline request: it is what makes the two strategies reject
        // identically, so it is not optional the way `?validate=` is.
        StreamTarget::Pipeline {
            entry,
            strategy,
            hists,
        } => {
            let cb = |i: usize, n: u64| hists[i].record(n);
            shared.engine.transform_batch_chain(
                entry.plan.stages_for(*strategy),
                &docs,
                mode,
                format,
                Some(entry.plan.guard()),
                Some(&cb),
            )
        }
    };
    let failed = results.iter().filter(|r| r.is_err()).count();
    let type_errors = results
        .iter()
        .filter(|r| matches!(r, Err(xtt_engine::EngineError::Type(_))))
        .count();
    shared.stats.documents.add(results.len() as u64);
    shared.stats.document_errors.add(failed as u64);
    shared.stats.documents_type_errors.add(type_errors as u64);
    let status = if failed == 0 { 200 } else { 207 };
    let mut headers = vec![
        ("X-Xtt-Docs", results.len().to_string()),
        ("X-Xtt-Failed", failed.to_string()),
    ];
    if let Some(t) = &trace {
        // The batch is fully evaluated before the head goes out, so the
        // stage breakdown rides the response itself.
        headers.push(("X-Xtt-Trace-Id", t.id_hex()));
        headers.push(("Server-Timing", t.server_timing()));
    }
    let mut writer = ChunkedWriter::start_conn(&mut *w, status, "text/plain", &headers, keep)?;
    for result in &results {
        let line = match result {
            Ok(text) => format!("{text}\n"),
            Err(e) => format!("!error: {e}\n"),
        };
        writer.chunk(line.as_bytes())?;
    }
    let r = writer.finish();
    log_if_slow(
        shared,
        target.name(),
        status,
        results.len() as u64,
        started,
        trace.as_ref(),
    );
    shared.stats.transform.record(started, status);
    r.map(|()| RouteStep::Done { keep })
}

/// Emits the structured slow-request line for transform requests that
/// crossed [`ServeOptions::slow_request`] — to stderr and into the
/// bounded ring behind `GET /slow`; sampled requests carry their
/// per-stage breakdown, unsampled ones log `trace=-`.
fn log_if_slow(
    shared: &Shared,
    target: &str,
    status: u16,
    docs: u64,
    started: Instant,
    trace: Option<&Trace>,
) {
    let threshold = shared.opts.slow_request;
    if threshold.is_zero() {
        return;
    }
    let elapsed = started.elapsed();
    if elapsed < threshold {
        return;
    }
    shared.stats.slow_requests.inc();
    let id = trace.map_or_else(|| "-".to_owned(), Trace::id_hex);
    let stages = trace.map_or_else(String::new, |t| format!(" {}", t.breakdown_micros()));
    let line = format!(
        "xtt-serve slow-request endpoint=transform target={target} status={status} docs={docs} total_us={} trace={id}{stages}",
        elapsed.as_micros(),
    );
    eprintln!("{line}");
    shared.stats.push_slow(line);
}

/// Runs (or resumes) a `mode=stream` transform until it finishes, fails,
/// or yields at a document boundary because the client's output buffer
/// is backed up. Endpoint latency is recorded once, at the true end.
fn run_stream_job(
    shared: &Shared,
    mut job: StreamJob,
    w: &mut ConnWriter<'_>,
) -> io::Result<RouteStep> {
    w.set_deadline(shared.opts.stream_write_deadline);
    match stream_job_step(shared, &mut job, w) {
        Ok(true) => {
            log_if_slow(
                shared,
                job.target.name(),
                200,
                job.docs.len() as u64,
                job.started,
                job.trace.as_ref(),
            );
            shared.stats.transform.record(job.started, 200);
            Ok(RouteStep::Done { keep: job.keep })
        }
        Ok(false) => Ok(RouteStep::Yield(job)),
        Err(e) => {
            // The response died mid-stream (write deadline, I/O error):
            // a server-side abort, counted with the 5xx class.
            shared.stats.transform.record(job.started, 500);
            Err(e)
        }
    }
}

/// `mode=stream`: each document runs through the engine's streaming
/// emission — committed output prefixes land in the connection buffer
/// (and from there on the wire) as HTTP chunks *while the document is
/// still being evaluated*, instead of after the whole batch completes.
/// The status line is committed before any document runs, so it is
/// always `200`; failures still appear positionally as `!error:` lines
/// (preceded by a newline when a partial output prefix had already been
/// flushed — inherent to streaming). A client that stops reading trips
/// [`ServeOptions::stream_write_deadline`] and the response is aborted.
///
/// Returns `Ok(true)` when the batch is complete (terminating chunk
/// written), `Ok(false)` when it yielded for a slow client.
fn stream_job_step(
    shared: &Shared,
    job: &mut StreamJob,
    w: &mut ConnWriter<'_>,
) -> io::Result<bool> {
    if !job.head_written {
        let mut headers = vec![
            ("X-Xtt-Docs", job.docs.len().to_string()),
            ("X-Xtt-Streamed", "1".to_owned()),
        ];
        // The head goes out before any document runs, so a streamed
        // response can carry the trace id but not the (not yet
        // measured) stage breakdown — that lands in the slow log.
        if let Some(t) = &job.trace {
            headers.push(("X-Xtt-Trace-Id", t.id_hex()));
        }
        // Head only: dropping the writer (instead of `finish`ing it)
        // leaves the chunked body open, so the job can resume across
        // yields with `ChunkedWriter::resume`.
        let _ = ChunkedWriter::start_conn(&mut *w, 200, "text/plain", &headers, job.keep)?;
        job.head_written = true;
    }
    while job.next < job.docs.len() {
        let doc = &job.docs[job.next];
        let mut writer = ChunkedWriter::resume(&mut *w);
        let mut sink = CountingWriter {
            inner: &mut writer,
            buf: Vec::new(),
            bytes: 0,
        };
        let result = match &job.target {
            StreamTarget::Transducer(entry) => {
                let obs = job.trace.as_mut().map(|t| t as &mut dyn EvalObserver);
                shared.engine.transform_streaming_observed(
                    &entry.dtop,
                    doc,
                    job.format.clone(),
                    job.validate,
                    &mut sink,
                    obs,
                )
            }
            StreamTarget::Pipeline {
                entry,
                strategy,
                hists,
            } => {
                let cb = |i: usize, n: u64| hists[i].record(n);
                shared.engine.transform_streaming_chain(
                    entry.plan.stages_for(*strategy),
                    doc,
                    job.format.clone(),
                    Some(entry.plan.guard()),
                    &mut sink,
                    Some(&cb),
                )
            }
        };
        match result {
            Ok(out) => {
                sink.flush()?;
                shared.stats.bytes_flushed_early.add(out.bytes_written);
                writer.chunk(b"\n")?;
            }
            Err(xtt_engine::EngineError::Write { kind, message }) => {
                // The failing writer *is* the client connection: nothing
                // more can be said on it, abort the response.
                if matches!(kind, io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) {
                    shared.stats.write_timeouts.inc();
                }
                return Err(io::Error::new(kind, message));
            }
            Err(e) => {
                job.failed += 1;
                if matches!(e, xtt_engine::EngineError::Type(_)) {
                    job.type_errors += 1;
                }
                // The failed document's partial prefix stays on the
                // wire (same bytes as unbuffered emission).
                sink.flush()?;
                let flushed = sink.bytes;
                shared.stats.bytes_flushed_early.add(flushed);
                let sep = if flushed > 0 { "\n" } else { "" };
                writer.chunk(format!("{sep}!error: {e}\n").as_bytes())?;
            }
        }
        job.next += 1;
        // Doc-boundary yield: a backed-up client keeps its connection
        // parked in the event loop instead of this worker thread.
        if job.next < job.docs.len() && w.backlog() > w.buffer_capacity() / 2 {
            shared.stats.slow_client_yields.inc();
            return Ok(false);
        }
    }
    ChunkedWriter::resume(&mut *w).finish()?;
    shared.stats.docs_streamed.add(job.docs.len() as u64);
    shared.stats.documents.add(job.docs.len() as u64);
    shared.stats.document_errors.add(job.failed);
    shared.stats.documents_type_errors.add(job.type_errors);
    Ok(true)
}

/// Streamed responses coalesce at this size: the evaluator writes
/// fine-grained pieces (single tags, separators), and framing each as
/// its own HTTP chunk would multiply the wire bytes several-fold.
const STREAM_CHUNK: usize = 4096;

/// Coalesces the evaluator's fine-grained writes into [`STREAM_CHUNK`]ed
/// HTTP chunks (an explicit `flush` drains the remainder at document
/// end) and counts the bytes each document produced, so the stats and
/// the `!error:` line separator know whether a partial prefix is on the
/// wire.
struct CountingWriter<'a, 'b> {
    inner: &'a mut ChunkedWriter<'b>,
    buf: Vec<u8>,
    bytes: u64,
}

impl io::Write for CountingWriter<'_, '_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        self.bytes += data.len() as u64;
        if self.buf.len() >= STREAM_CHUNK {
            self.flush()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.inner.chunk(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }
}

/// `POST /typecheck/{name}`: body is an output schema (a DTTA in term
/// syntax, see `xtt_automata::parse_dtta`); decides
/// `dom(τ) ⊆ τ⁻¹(L(schema))` and answers with a verdict — on failure,
/// with a concrete counterexample input and its schema-violating output.
fn typecheck(shared: &Shared, req: &Request, name: &str) -> (u16, String) {
    let Some(entry) = shared.registry.get(name) else {
        return (404, error_json("unknown transducer"));
    };
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return (400, error_json(&e.to_string())),
    };
    let schema = match xtt_automata::parse_dtta(body) {
        Ok(s) => s,
        Err(e) => return (422, error_json(&format!("bad schema: {e}"))),
    };
    shared.stats.typecheck_runs.inc();
    match xtt_typecheck::output_typecheck(&entry.dtop, None, &schema) {
        xtt_typecheck::TypecheckVerdict::WellTyped => (
            200,
            format!("{{\"name\":\"{}\",\"ok\":true}}\n", escape_json(name)),
        ),
        xtt_typecheck::TypecheckVerdict::Counterexample { input, output } => {
            shared.stats.typecheck_ill_typed.inc();
            (
                200,
                format!(
                    "{{\"name\":\"{}\",\"ok\":false,\"counterexample\":\"{}\",\"counterexample_output\":\"{}\"}}\n",
                    escape_json(name),
                    escape_json(&input.to_string()),
                    escape_json(&output.to_string()),
                ),
            )
        }
    }
}

/// Parses the `?validate=` / `?learn=`-style boolean query values.
fn parse_bool(value: &str) -> Option<bool> {
    match value {
        "1" | "true" => Some(true),
        "0" | "false" => Some(false),
        _ => None,
    }
}

fn optional<T>(
    value: Option<&str>,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<T>, String> {
    match value {
        None => Ok(None),
        Some(v) => parse(v).map(Some).ok_or_else(|| v.to_owned()),
    }
}

fn bad_param(
    shared: &Shared,
    w: &mut ConnWriter<'_>,
    started: Instant,
    param: &str,
    value: &str,
    keep: bool,
) -> io::Result<RouteStep> {
    let r = write_response_conn(
        w,
        400,
        "application/json",
        &[],
        error_json(&format!("bad {param}: {value}")).as_bytes(),
        keep,
    );
    shared.stats.transform.record(started, 400);
    r.map(|()| RouteStep::Done { keep })
}

impl Shared {
    fn stats_json(&self) -> String {
        self.stats.json(
            self.engine.cache_stats(),
            self.engine.validation_stats(),
            self.engine.skipped_subtrees(),
            self.registry.len(),
            self.encodings.len(),
            self.pipelines.len(),
            self.pipelines.plan_cache_stats(),
            self.queue.capacity(),
        )
    }

    /// The Prometheus text exposition: sync the externally owned values
    /// into their gauges, then render the registry — the same atomics
    /// `/stats` reads.
    fn metrics_text(&self) -> String {
        self.stats.sync_external(
            self.engine.cache_stats(),
            self.engine.validation_stats(),
            self.engine.skipped_subtrees(),
            self.registry.len(),
            self.encodings.len(),
            self.pipelines.len(),
            self.pipelines.plan_cache_stats(),
            self.queue.capacity(),
        );
        self.stats.metrics.render_prometheus()
    }
}

fn error_json(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", escape_json(message))
}
