//! `xtt-serve` — the transformation service as a process.
//!
//! ```console
//! $ xtt-serve --addr 127.0.0.1:0 --preload flip
//! xtt-serve listening on http://127.0.0.1:40123
//! ```
//!
//! `--addr …:0` picks an ephemeral port; the actual address is printed on
//! stdout (and flushed) so scripts can scrape it. SIGTERM/SIGINT or
//! `POST /shutdown` drain gracefully; the process exits 0 once the last
//! in-flight request is answered.

use std::io::Write;

use xtt_engine::{DocFormat, EvalMode};
use xtt_serve::{signal, ServeOptions, Server};
use xtt_transducer::examples;

const USAGE: &str = "\
xtt-serve: HTTP serving front end for learned tree transducers

USAGE: xtt-serve [OPTIONS]

OPTIONS:
  --addr <ip:port>        bind address (port 0 = ephemeral) [default: 127.0.0.1:7878]
  --workers <N>           request worker threads (0 = auto)  [default: 0]
  --queue <N>             backpressure queue capacity        [default: 128]
  --cache <N>             compiled-transducer LRU capacity   [default: 8]
  --max-output <N>        per-document output-tree node bound
                          (0 = unbounded)                    [default: 10000000]
  --stream-deadline <secs>  write deadline for streamed (mode=stream)
                          responses: a client not draining its socket
                          for this long aborts the connection
                          (counted in /stats)                [default: 10]
  --stream-buffer <bytes> per-connection output buffer; a streamed
                          response backing up past half of it yields
                          its worker until the client catches up
                                                             [default: 262144]
  --mode <tree|stream|dag|walk>  default evaluator           [default: tree]
  --format <term|xml>     default document syntax            [default: term]
  --validate              guarded evaluation by default: out-of-domain
                          documents answer with typed violation paths
                          (per-request override: ?validate=0|1)
  --trace-sample <N>      trace 1 in N transform requests through the
                          pipeline (Server-Timing + X-Xtt-Trace-Id
                          response headers, stage breakdown in the slow
                          log; 0 disables)                   [default: 0]
  --slow-ms <ms>          slow-request log threshold: requests slower
                          than this log a structured line on stderr and
                          into the GET /slow ring (0 disables)
                                                             [default: 1000]
  --slow-us <us>          same threshold in microseconds, for smoke
                          tests that want every request captured
  --preload <names>       comma-separated built-ins to register at boot
                          (flip, library, copy)
  --help                  print this help
";

struct Args {
    addr: String,
    opts: ServeOptions,
    preload: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        opts: ServeOptions::default(),
        preload: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_owned())?
            }
            "--queue" => {
                args.opts.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "bad --queue value".to_owned())?
            }
            "--cache" => {
                args.opts.engine.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|_| "bad --cache value".to_owned())?
            }
            "--max-output" => {
                let n: u64 = value("--max-output")?
                    .parse()
                    .map_err(|_| "bad --max-output value".to_owned())?;
                args.opts.engine.max_output_nodes = (n > 0).then_some(n);
            }
            "--stream-deadline" => {
                let secs: u64 = value("--stream-deadline")?
                    .parse()
                    .map_err(|_| "bad --stream-deadline value".to_owned())?;
                args.opts.stream_write_deadline = std::time::Duration::from_secs(secs.max(1));
            }
            "--stream-buffer" => {
                let bytes: usize = value("--stream-buffer")?
                    .parse()
                    .map_err(|_| "bad --stream-buffer value".to_owned())?;
                args.opts.stream_buffer = bytes.max(4096);
            }
            "--mode" => {
                let name = value("--mode")?;
                args.opts.engine.mode =
                    EvalMode::parse(&name).ok_or_else(|| format!("unknown mode '{name}'"))?;
            }
            "--format" => {
                let name = value("--format")?;
                args.opts.engine.format =
                    DocFormat::parse(&name).ok_or_else(|| format!("unknown format '{name}'"))?;
            }
            "--validate" => args.opts.engine.validate = true,
            "--trace-sample" => {
                args.opts.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|_| "bad --trace-sample value".to_owned())?
            }
            "--slow-ms" => {
                let ms: u64 = value("--slow-ms")?
                    .parse()
                    .map_err(|_| "bad --slow-ms value".to_owned())?;
                args.opts.slow_request = std::time::Duration::from_millis(ms);
            }
            "--slow-us" => {
                let us: u64 = value("--slow-us")?
                    .parse()
                    .map_err(|_| "bad --slow-us value".to_owned())?;
                args.opts.slow_request = std::time::Duration::from_micros(us);
            }
            "--preload" => {
                args.preload = value("--preload")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

fn preload(server: &Server, names: &[String]) -> Result<(), String> {
    let handle = server.handle();
    for name in names {
        let dtop = match name.as_str() {
            "flip" => examples::flip().dtop,
            "library" => examples::library().dtop,
            "copy" => examples::monadic_to_binary().dtop,
            other => return Err(format!("unknown preload '{other}'")),
        };
        let entry = handle
            .registry()
            .upload(name, &dtop.to_string())
            .map_err(|e| format!("preload {name}: {e}"))?;
        let _ = handle.engine().compiled(&entry.dtop);
        eprintln!(
            "preloaded {name} ({} states, {} rules)",
            entry.dtop.state_count(),
            entry.dtop.rule_count()
        );
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(&args.addr, args.opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    if let Err(e) = preload(&server, &args.preload) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let addr = server.local_addr().expect("bound listener has an address");
    println!("xtt-serve listening on http://{addr}");
    std::io::stdout().flush().expect("flush stdout");
    signal::install();
    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("xtt-serve: drained, bye");
}
