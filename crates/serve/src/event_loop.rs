//! The readiness loop that owns every socket.
//!
//! One thread (the caller of `Server::run`) runs this loop: it accepts
//! connections, reads and incrementally parses requests, hands parsed
//! requests to the worker queue, and drains each connection's bounded
//! output buffer with nonblocking writes. Workers never touch a socket;
//! they fill the buffer and report a [`Disposition`] through the
//! done-list plus the wakeup pipe.
//!
//! Per-connection state machine:
//!
//! ```text
//!           read/parse            queue.push             Done{Finish}
//! Reading ─────────────▶ Reading ────────────▶ Processing ──────────▶ Draining
//!    ▲                   (partial)                  │                     │
//!    │                                  Done{Yield} │      buffer low     │ buffer
//!    │                                              ▼   ┌──────────────┐  │ empty,
//!    │                                           Parked ┴▶ Processing ─┘  │ keep
//!    └─────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! `Parked` is the slow-client state: a streamed response yielded at a
//! document boundary, the connection holds buffered output and **no
//! thread**; once the client drains the buffer below a quarter, the job
//! is re-queued. Idle keep-alive connections sit in `Reading` with an
//! empty buffer — also threadless, which is what lets hundreds of idle
//! connections coexist with a handful of workers.
//!
//! Timeouts are swept on a coarse tick: the keep-alive timeout reaps
//! idle connections, the I/O timeout reaps stalled reads and drains, and
//! the stream write deadline reaps parked connections whose client
//! stopped reading.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xtt_netio::{read_ready, Event, Interest, Poller, ReadOutcome};

use crate::http::{try_parse_request, write_response_conn, HttpError, Request};
use crate::outbuf::{Drained, Outbuf};
use crate::pool::PushError;
use crate::server::{Disposition, Done, Job, Shared, StreamJob};
use crate::signal;

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// Read granularity; also the slack allowed past `max_body` before the
/// parser's too-large verdict must have fired.
const READ_CHUNK: usize = 64 * 1024;
/// Timeout sweep granularity (and the latency floor for signal checks).
const TICK: Duration = Duration::from_millis(25);
/// How long a lingering close waits for the peer's EOF before giving up.
const LINGER_TIMEOUT: Duration = Duration::from_secs(1);

enum ConnState {
    /// Waiting for (more of) a request; idle keep-alive lives here.
    Reading,
    /// A worker owns the request; the loop only drains output.
    Parked(Option<StreamJob>),
    /// A stream job yielded; waiting for the buffer to drain, no thread.
    Processing,
    /// Response fully buffered; flush it, then keep or close.
    Draining { keep: bool },
    /// Error response delivered for a request the peer may still be
    /// sending: write side shut, discarding reads until the peer's EOF —
    /// an outright close would RST the response out of its hands.
    Lingering,
}

struct Conn {
    stream: TcpStream,
    gen: u32,
    /// Bytes read but not yet consumed by a parsed request (pipelining
    /// clients buffer the next request here).
    readbuf: Vec<u8>,
    /// Head-scan cursor into `readbuf` (see `try_parse_request`).
    scan_from: usize,
    out: Arc<Outbuf>,
    /// Requests dispatched on this connection.
    served: usize,
    last_activity: Instant,
    state: ConnState,
    interest: Interest,
    /// The peer half-closed its write side (it may still be reading).
    peer_closed: bool,
    /// The response in flight answers a request the peer may not have
    /// finished sending (parse error, body cap): linger after the drain.
    linger: bool,
}

struct Loop<'a> {
    shared: &'a Shared,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
    draining: bool,
}

/// What the sweep decided for one connection (computed under the borrow,
/// applied after).
enum Sweep {
    Keep,
    Close { idle: bool },
    DrainTick,
    WriteTimeout,
}

fn token_for(gen: u32, idx: usize) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

pub(crate) fn run(shared: &Shared, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    poller.register(shared.waker.fd(), TOKEN_WAKER, Interest::READABLE)?;
    let mut lp = Loop {
        shared,
        poller,
        conns: Vec::new(),
        free: Vec::new(),
        next_gen: 1,
        draining: false,
    };
    let mut listener = Some(listener);
    let mut events: Vec<Event> = Vec::new();
    loop {
        lp.poller.wait(&mut events, Some(TICK))?;
        if !events.is_empty() {
            shared.stats.epoll_wakeups.inc();
        }
        if signal::triggered() {
            shared.begin_shutdown();
        }
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => lp.accept_all(listener.as_ref()),
                TOKEN_WAKER => shared.waker.drain(),
                token => lp.conn_event(token, ev),
            }
        }
        lp.process_done();
        if !lp.draining && shared.queue.is_shutting_down() {
            // Drain mode: stop listening (drop closes the fd), shed idle
            // keep-alive connections, finish everything in flight.
            lp.draining = true;
            if let Some(l) = listener.take() {
                let _ = lp.poller.deregister(l.as_raw_fd());
            }
            lp.close_idle_for_drain();
        }
        lp.sweep();
        if lp.draining && lp.conns.iter().all(Option::is_none) {
            return Ok(());
        }
    }
}

impl Loop<'_> {
    fn accept_all(&mut self, listener: Option<&TcpListener>) {
        let Some(listener) = listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.stats.accepted.inc();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let gen = self.next_gen;
                    self.next_gen = self.next_gen.wrapping_add(1).max(1);
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token_for(gen, idx), Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(Conn {
                        stream,
                        gen,
                        readbuf: Vec::new(),
                        scan_from: 0,
                        out: Arc::new(Outbuf::new(self.shared.opts.stream_buffer)),
                        served: 0,
                        last_activity: Instant::now(),
                        state: ConnState::Reading,
                        interest: Interest::READABLE,
                        peer_closed: false,
                        linger: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Looks up a live connection by token (stale generations — a closed
    /// slot since reused — are dropped silently).
    fn live(&mut self, token: u64) -> Option<usize> {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        match self.conns.get(idx).and_then(Option::as_ref) {
            Some(conn) if conn.gen == gen => Some(idx),
            _ => None,
        }
    }

    fn conn_event(&mut self, token: u64, ev: &Event) {
        let Some(idx) = self.live(token) else { return };
        let (readable, fatal) = {
            let conn = self.conns[idx].as_mut().expect("live");
            if ev.read_closed {
                conn.peer_closed = true;
            }
            (ev.readable, ev.error || ev.hangup)
        };
        if fatal {
            // Both directions are gone; any buffered response is
            // undeliverable, and a worker mid-response sees BrokenPipe.
            self.close(idx);
            return;
        }
        if readable {
            self.do_read(idx);
        }
        if ev.writable {
            self.drain_conn(idx);
        }
    }

    /// Reads everything available into the connection's buffer, then
    /// tries to dispatch a request from it.
    fn do_read(&mut self, idx: usize) {
        let max_buf = self
            .shared
            .opts
            .max_body
            .saturating_mul(2)
            .saturating_add(READ_CHUNK);
        let mut eof = false;
        let discard;
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            discard = match conn.state {
                ConnState::Reading => false,
                ConnState::Lingering => true,
                _ => return,
            };
            let mut chunk = vec![0u8; READ_CHUNK];
            loop {
                match read_ready(&mut conn.stream, &mut chunk) {
                    Ok(ReadOutcome::Read(n)) => {
                        conn.last_activity = Instant::now();
                        if discard {
                            continue; // lingering: the bytes are refuse
                        }
                        conn.readbuf.extend_from_slice(&chunk[..n]);
                        if conn.readbuf.len() > max_buf {
                            // The parser's TooLarge verdict fires below;
                            // stop hoarding bytes past it.
                            break;
                        }
                    }
                    Ok(ReadOutcome::WouldBlock) => break,
                    Ok(ReadOutcome::Closed) => {
                        conn.peer_closed = true;
                        eof = true;
                        break;
                    }
                    Err(_) => {
                        drop(chunk);
                        // Hard read error: the connection is unusable.
                        self.close(idx);
                        return;
                    }
                }
            }
        }
        if discard {
            if eof {
                self.close(idx); // the peer's FIN ends the linger
            }
            return;
        }
        self.try_dispatch(idx);
        if eof {
            self.finish_eof(idx);
        }
    }

    /// A connection whose peer hit EOF and that is still `Reading` will
    /// never complete a request: close it (answering `400` if a partial
    /// request is stuck). No-op while the peer is alive.
    fn finish_eof(&mut self, idx: usize) {
        let verdict = self
            .conns
            .get(idx)
            .and_then(Option::as_ref)
            .and_then(|conn| match conn.state {
                ConnState::Reading if conn.peer_closed => Some(conn.readbuf.is_empty()),
                _ => None,
            });
        match verdict {
            Some(true) => self.close(idx), // clean keep-alive end
            Some(false) => {
                self.respond_direct(idx, 400, &[], "connection closed mid-request\n", false)
            }
            None => {}
        }
    }

    /// Parses one request out of the read buffer and hands it to the
    /// worker queue (or answers the parse/backpressure error directly).
    fn try_dispatch(&mut self, idx: usize) {
        enum Parsed {
            Request {
                request: Request,
                served: usize,
                token: u64,
                out: Arc<Outbuf>,
            },
            Bad {
                status: u16,
                message: String,
            },
        }
        let parsed = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if !matches!(conn.state, ConnState::Reading) || conn.readbuf.is_empty() {
                return;
            }
            match try_parse_request(
                &conn.readbuf,
                self.shared.opts.max_body,
                &mut conn.scan_from,
            ) {
                Ok(None) => return, // need more bytes
                Ok(Some((request, consumed))) => {
                    conn.readbuf.drain(..consumed);
                    conn.scan_from = 0;
                    conn.served += 1;
                    conn.last_activity = Instant::now();
                    Parsed::Request {
                        request,
                        served: conn.served,
                        token: token_for(conn.gen, idx),
                        out: Arc::clone(&conn.out),
                    }
                }
                Err(e) => {
                    let (status, message) = match &e {
                        HttpError::Malformed(m) => (400, format!("{m}\n")),
                        HttpError::TooLarge("request head") => (431, format!("{e}\n")),
                        HttpError::TooLarge(_) => (413, format!("{e}\n")),
                        HttpError::Unsupported(_) => (501, format!("{e}\n")),
                        // The incremental parser never produces these.
                        HttpError::Io(_) | HttpError::Closed => (400, "bad request\n".to_owned()),
                    };
                    Parsed::Bad { status, message }
                }
            }
        };
        match parsed {
            Parsed::Request {
                request,
                served,
                token,
                out,
            } => {
                self.shared.stats.requests.inc();
                if served > 1 {
                    self.shared.stats.reused_requests.inc();
                }
                match self.shared.queue.push(Job::Request {
                    token,
                    request,
                    served,
                    out,
                    enqueued: Instant::now(),
                }) {
                    Ok(()) => {
                        self.shared
                            .stats
                            .queue_depth
                            .set(self.shared.queue.depth() as u64);
                        self.shared.stats.worker_handoffs.inc();
                        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                            conn.state = ConnState::Processing;
                        }
                        self.update_interest(idx);
                    }
                    Err((_, why)) => {
                        // Backpressure: answer 503 and close — never
                        // buffer beyond the bounded queue.
                        let message = match why {
                            PushError::Full => "queue full, retry later\n",
                            PushError::ShuttingDown => "shutting down\n",
                        };
                        self.shared.stats.rejected.inc();
                        self.respond_direct(
                            idx,
                            503,
                            &[("Retry-After", "1".to_owned())],
                            message,
                            false,
                        );
                    }
                }
            }
            Parsed::Bad { status, message } => {
                self.respond_direct(idx, status, &[], &message, false);
            }
        }
    }

    /// Renders a small response straight into the output buffer from the
    /// event-loop thread (parse errors, backpressure) and starts the
    /// drain.
    fn respond_direct(
        &mut self,
        idx: usize,
        status: u16,
        extra: &[(&str, String)],
        body: &str,
        keep: bool,
    ) {
        let mut buf = Vec::new();
        let _ = write_response_conn(&mut buf, status, "text/plain", extra, body.as_bytes(), keep);
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            conn.out.force_push(&buf);
            conn.state = ConnState::Draining { keep };
            // Direct responses answer requests the peer may still be
            // mid-send on; closing under those bytes would RST the
            // response away, so linger for the peer's EOF instead.
            conn.linger = !keep && !conn.peer_closed;
            conn.last_activity = Instant::now();
        }
        self.drain_conn(idx);
    }

    /// Pushes buffered output to the socket, then advances the state
    /// machine (finish a drain, resume a parked job, rearm interest).
    fn drain_conn(&mut self, idx: usize) {
        let result = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let backlog = conn.out.len();
            // High-water mark of any connection's output backlog — how
            // close streamed responses come to the buffer bound.
            self.shared
                .stats
                .outbuf_highwater
                .record_max(backlog as u64);
            if backlog == 0 {
                Ok(Drained::Empty)
            } else {
                conn.out.drain_to(&mut conn.stream)
            }
        };
        match result {
            Err(_) => self.close(idx),
            Ok(_) => self.after_drain(idx),
        }
    }

    fn after_drain(&mut self, idx: usize) {
        enum Next {
            Rearm,
            Close,
            Redispatch,
            Resume {
                // Boxed: a StreamJob is ~200 bytes and the other
                // variants are empty.
                job: Box<StreamJob>,
                token: u64,
                out: Arc<Outbuf>,
            },
        }
        let next = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            match &mut conn.state {
                ConnState::Draining { keep } => {
                    if conn.out.len() > 0 {
                        Next::Rearm
                    } else if *keep && !self.draining {
                        conn.state = ConnState::Reading;
                        conn.last_activity = Instant::now();
                        Next::Redispatch
                    } else if conn.linger {
                        conn.state = ConnState::Lingering;
                        conn.last_activity = Instant::now();
                        conn.readbuf.clear();
                        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                        Next::Rearm
                    } else {
                        Next::Close
                    }
                }
                ConnState::Parked(slot) => {
                    // Resume once the client has drained to a quarter:
                    // hysteresis against thrashing at the yield boundary.
                    if conn.out.len() <= self.shared.opts.stream_buffer / 4 {
                        match slot.take() {
                            Some(job) => {
                                conn.state = ConnState::Processing;
                                Next::Resume {
                                    job: Box::new(job),
                                    token: token_for(conn.gen, idx),
                                    out: Arc::clone(&conn.out),
                                }
                            }
                            None => Next::Rearm,
                        }
                    } else {
                        Next::Rearm
                    }
                }
                _ => Next::Rearm,
            }
        };
        match next {
            Next::Rearm => self.update_interest(idx),
            Next::Close => self.close(idx),
            Next::Redispatch => {
                self.update_interest(idx);
                // Level-triggered epoll will not re-announce bytes we
                // already buffered: a pipelined request must be parsed
                // out now, not on the next readiness event.
                self.try_dispatch(idx);
                self.finish_eof(idx);
            }
            Next::Resume { job, token, out } => {
                // Order matters: enqueue first, then release the hold —
                // the drain condition must never observe the gap.
                self.shared.queue.push_unbounded(Job::Resume {
                    token,
                    job: *job,
                    out,
                });
                self.shared.queue.unhold();
                self.shared.stats.worker_handoffs.inc();
                self.shared
                    .stats
                    .queue_depth
                    .set(self.shared.queue.depth() as u64);
                self.update_interest(idx);
            }
        }
    }

    /// Registers exactly the readiness this connection can act on: reads
    /// only while `Reading`, writes only while output is buffered.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let mut want = match conn.state {
            ConnState::Reading | ConnState::Lingering => Interest::READABLE,
            _ => Interest::NONE,
        };
        if conn.out.len() > 0 {
            want = want.with(Interest::WRITABLE);
        }
        if want != conn.interest {
            let token = token_for(conn.gen, idx);
            let _ = self.poller.modify(conn.stream.as_raw_fd(), token, want);
            conn.interest = want;
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(slot) = self.conns.get_mut(idx) else {
            return;
        };
        let Some(conn) = slot.take() else { return };
        // Any worker blocked on this buffer sees BrokenPipe immediately.
        conn.out.abort();
        if matches!(conn.state, ConnState::Parked(Some(_))) {
            // The parked job will never be resumed; release the drain.
            self.shared.queue.unhold();
        }
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.free.push(idx);
        // Dropping `conn` closes the socket.
    }

    /// Applies worker verdicts delivered through the done-list.
    fn process_done(&mut self) {
        for Done { token, disposition } in self.shared.take_done() {
            let Some(idx) = self.live(token) else {
                if let Disposition::Yield { .. } = disposition {
                    // The connection died while the job was in flight;
                    // the job dies with it, but the hold must not leak.
                    self.shared.queue.unhold();
                }
                continue;
            };
            match disposition {
                Disposition::Finish { keep } => {
                    let conn = self.conns[idx].as_mut().expect("live");
                    conn.state = ConnState::Draining { keep };
                    conn.last_activity = Instant::now();
                    self.drain_conn(idx);
                }
                Disposition::Abort => self.close(idx),
                Disposition::Yield { job } => {
                    let conn = self.conns[idx].as_mut().expect("live");
                    conn.state = ConnState::Parked(Some(job));
                    conn.last_activity = Instant::now();
                    // May resume immediately if the client already drained.
                    self.drain_conn(idx);
                }
            }
        }
    }

    /// At drain start, idle keep-alive connections (no request in
    /// progress, nothing buffered) are closed outright — they would
    /// otherwise pin the drain for a full keep-alive timeout.
    fn close_idle_for_drain(&mut self) {
        for idx in 0..self.conns.len() {
            let idle = matches!(
                self.conns[idx].as_ref(),
                Some(conn) if matches!(conn.state, ConnState::Reading) && conn.readbuf.is_empty()
            );
            if idle {
                self.close(idx);
            }
        }
    }

    /// Coarse timeout sweep, once per tick.
    fn sweep(&mut self) {
        let now = Instant::now();
        let opts = &self.shared.opts;
        let (keep_alive_timeout, io_timeout, stream_deadline) = (
            opts.keep_alive_timeout,
            opts.io_timeout,
            opts.stream_write_deadline,
        );
        for idx in 0..self.conns.len() {
            let action = {
                let Some(conn) = self.conns[idx].as_ref() else {
                    continue;
                };
                let idle = now.duration_since(conn.last_activity);
                match conn.state {
                    ConnState::Reading => {
                        if conn.served > 0 && conn.readbuf.is_empty() && idle > keep_alive_timeout {
                            Sweep::Close { idle: true }
                        } else if (conn.served == 0 || !conn.readbuf.is_empty())
                            && idle > io_timeout
                        {
                            Sweep::Close { idle: false }
                        } else {
                            Sweep::Keep
                        }
                    }
                    ConnState::Draining { .. } => match conn.out.stalled_for() {
                        Some(stall) if stall > io_timeout => Sweep::Close { idle: false },
                        _ => Sweep::DrainTick,
                    },
                    ConnState::Parked(_) => match conn.out.stalled_for() {
                        Some(stall) if stall > stream_deadline => Sweep::WriteTimeout,
                        _ => Sweep::DrainTick,
                    },
                    ConnState::Processing => {
                        if conn.out.len() > 0 {
                            Sweep::DrainTick
                        } else {
                            Sweep::Keep
                        }
                    }
                    ConnState::Lingering => {
                        // A peer that never sends its FIN is abandoned.
                        if idle > LINGER_TIMEOUT {
                            Sweep::Close { idle: false }
                        } else {
                            Sweep::Keep
                        }
                    }
                }
            };
            match action {
                Sweep::Keep => {}
                Sweep::Close { idle } => {
                    if idle {
                        self.shared.stats.closed_idle.inc();
                    }
                    self.close(idx);
                }
                Sweep::WriteTimeout => {
                    self.shared.stats.write_timeouts.inc();
                    self.close(idx);
                }
                Sweep::DrainTick => self.drain_conn(idx),
            }
        }
        self.update_gauges();
    }

    fn update_gauges(&self) {
        let mut open = 0usize;
        let mut parked = 0usize;
        for conn in self.conns.iter().flatten() {
            open += 1;
            if matches!(conn.state, ConnState::Reading)
                && conn.readbuf.is_empty()
                && conn.served > 0
            {
                parked += 1;
            }
        }
        self.shared.stats.connections_open.set(open as u64);
        self.shared.stats.parked_idle.set(parked as u64);
        // Mirror the poller's cumulative epoll_wait account: the gap
        // between wall time and wait time is the loop's busy time.
        self.shared
            .stats
            .epoll_wait_nanos
            .set(self.poller.total_wait_nanos());
        self.shared.stats.epoll_waits.set(self.poller.wait_count());
    }
}
