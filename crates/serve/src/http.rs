//! A hand-rolled HTTP/1.1 layer: exactly what the server needs, nothing
//! more. Requests carry bodies via `Content-Length` or
//! `Transfer-Encoding: chunked` (decoded with the same size cap, so
//! clients can stream uploads); responses are written either with
//! `Content-Length` or chunked (the transform endpoint streams one chunk
//! per document — in `mode=stream`, one chunk per flushed output
//! prefix). Connections are **keep-alive** by default (HTTP/1.1
//! semantics): the server answers multiple requests per connection until
//! the client says `Connection: close`, the idle timeout passes, or the
//! per-connection request limit is reached — every response carries an
//! explicit `Connection:` header, so the accounting stays exact.
//!
//! The workspace policy is to implement substrates rather than pull
//! dependencies — the environment is fully offline, so hyper/tokio are
//! not an option anyway.

use std::fmt;
use std::io::{self, Read, Write};

/// Cap on the request line + headers.
const MAX_HEAD: usize = 16 * 1024;

/// Errors while reading a request or response.
#[derive(Debug)]
pub enum HttpError {
    Io(io::Error),
    /// The peer closed the connection cleanly before sending any bytes
    /// of the next request — the normal end of a keep-alive connection.
    Closed,
    /// Syntactically broken request (maps to `400`).
    Malformed(String),
    /// Head or body over the configured limit (maps to `431`/`413`).
    TooLarge(&'static str),
    /// A feature this server deliberately does not speak (maps to `501`).
    Unsupported(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(w) => write!(f, "{w} too large"),
            HttpError::Unsupported(w) => write!(f, "unsupported: {w}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// True for HTTP/1.1 (keep-alive by default), false for HTTP/1.0.
    pub http11: bool,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded `key=value` pairs, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not valid UTF-8".into()))
    }

    /// HTTP/1.1 keep-alive semantics: persistent unless the client says
    /// `Connection: close`; HTTP/1.0 only with an explicit keep-alive.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Reads one request from the stream (`Content-Length` bodies only).
pub fn read_request(stream: &mut dyn Read, max_body: usize) -> Result<Request, HttpError> {
    read_request_carry(stream, max_body, &mut Vec::new())
}

/// [`read_request`] for keep-alive connections: `carry` holds bytes read
/// past the previous request (pipelining clients send the next request
/// before the response arrives) and receives any bytes read past this
/// one's body. Implemented as a blocking read loop around
/// [`try_parse_request`] — the event loop uses the incremental parser
/// directly, this wrapper serves tests and any blocking caller.
pub fn read_request_carry(
    stream: &mut dyn Read,
    max_body: usize,
    carry: &mut Vec<u8>,
) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    let mut scan_from = 0;
    loop {
        if let Some((request, consumed)) = try_parse_request(&buf, max_body, &mut scan_from)? {
            buf.drain(..consumed);
            *carry = buf;
            return Ok(request);
        }
        let mut chunk = [0u8; 65536];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // Clean close between requests (keep-alive end).
                return Err(HttpError::Closed);
            }
            return Err(if find_subsequence(&buf, b"\r\n\r\n").is_none() {
                HttpError::Malformed("connection closed before the end of the headers".into())
            } else {
                HttpError::Malformed("connection closed mid-body".into())
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Attempts to parse one complete request out of `buf` without blocking.
///
/// Returns `Ok(None)` while the bytes so far are a valid *prefix* of a
/// request (more must arrive), `Ok(Some((request, consumed)))` once one
/// is complete — `consumed` is how many bytes of `buf` it spanned; the
/// remainder belongs to the next pipelined request — and `Err` as soon
/// as the prefix can never become a valid request (oversized head,
/// `Content-Length` beyond `max_body`, syntax errors).
///
/// `scan_from` is the caller's cursor into `buf` for the head-terminator
/// search: the parser resumes the `\r\n\r\n` scan there instead of from
/// byte zero, so feeding a large body in small reads stays linear.
/// Start it at `0` for a fresh buffer and keep passing the same variable
/// while the buffer grows; reset it to `0` whenever consumed bytes are
/// drained from the front.
pub fn try_parse_request(
    buf: &[u8],
    max_body: usize,
    scan_from: &mut usize,
) -> Result<Option<(Request, usize)>, HttpError> {
    // The resumed scan backs up 3 bytes so a terminator straddling the
    // previous end of buffer is still seen.
    let window = scan_from.saturating_sub(3).min(buf.len());
    let pos = match find_subsequence(&buf[window..], b"\r\n\r\n") {
        Some(p) => window + p,
        None => {
            *scan_from = buf.len();
            if buf.len() > MAX_HEAD {
                return Err(HttpError::TooLarge("request head"));
            }
            return Ok(None);
        }
    };
    // Pin the cursor to the terminator: repeat calls while the body
    // trickles in re-find it immediately instead of rescanning the head.
    *scan_from = pos;
    if pos > MAX_HEAD {
        return Err(HttpError::TooLarge("request head"));
    }
    let body_start = pos + 4;

    let head = std::str::from_utf8(&buf[..pos])
        .map_err(|_| HttpError::Malformed("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Unsupported("HTTP version"));
    }
    let http11 = version != "HTTP/1.0";

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line: {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let (body, consumed) = match header("transfer-encoding") {
        Some(te) if te.eq_ignore_ascii_case("chunked") => {
            // A streamed upload: decode the chunked framing, capping the
            // *decoded* size at the same bound as Content-Length bodies.
            // Bytes past the terminator belong to the next pipelined
            // request on the connection.
            match decode_chunked_slice(&buf[body_start..], Some(max_body))? {
                None => return Ok(None),
                Some((body, used)) => (body, body_start + used),
            }
        }
        Some(_) => {
            return Err(HttpError::Unsupported(
                "transfer encodings other than chunked",
            ))
        }
        None => {
            let content_length: usize = match header("content-length") {
                None => 0,
                Some(v) => v
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad Content-Length: {v}")))?,
            };
            if content_length > max_body {
                return Err(HttpError::TooLarge("body"));
            }
            if buf.len() - body_start < content_length {
                return Ok(None);
            }
            (
                buf[body_start..body_start + content_length].to_vec(),
                body_start + content_length,
            )
        }
    };

    let (path, query) = match target.split_once('?') {
        None => (percent_decode(target), Vec::new()),
        Some((p, q)) => (percent_decode(p), parse_query(q)),
    };
    Ok(Some((
        Request {
            method,
            http11,
            path,
            query,
            headers,
            body,
        },
        consumed,
    )))
}

/// Decodes a chunked body from a byte slice: `Ok(None)` while the
/// framing is incomplete, `Ok(Some((body, consumed)))` once the
/// terminator (and trailer section) is in. The cap applies to the
/// *decoded* size, same as the streaming decoder.
fn decode_chunked_slice(
    buf: &[u8],
    cap: Option<usize>,
) -> Result<Option<(Vec<u8>, usize)>, HttpError> {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        let line_end = match find_subsequence(&buf[i..], b"\r\n") {
            Some(p) => i + p,
            None => return Ok(None),
        };
        let line = String::from_utf8_lossy(&buf[i..line_end]);
        let size_str = line.split(';').next().unwrap_or_default().trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size: {size_str}")))?;
        if size > MAX_CHUNK {
            return Err(HttpError::Malformed(format!(
                "chunk size {size} exceeds the {MAX_CHUNK}-byte cap"
            )));
        }
        i = line_end + 2;
        if size == 0 {
            // Trailer section: zero or more header lines, then CRLF.
            loop {
                let trailer_end = match find_subsequence(&buf[i..], b"\r\n") {
                    Some(p) => i + p,
                    None => return Ok(None),
                };
                let empty = trailer_end == i;
                i = trailer_end + 2;
                if empty {
                    return Ok(Some((out, i)));
                }
            }
        }
        if cap.is_some_and(|max| out.len() + size > max) {
            return Err(HttpError::TooLarge("body"));
        }
        if buf.len() < i + size + 2 {
            return Ok(None);
        }
        out.extend_from_slice(&buf[i..i + size]);
        i += size + 2; // chunk data + CRLF
    }
}

/// Reads up to and including the `\r\n\r\n` head terminator; returns the
/// head bytes (terminator stripped) and any body bytes read past it.
fn read_head_carry(
    stream: &mut dyn Read,
    carried: Vec<u8>,
) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf = carried;
    loop {
        if let Some(pos) = find_subsequence(&buf, b"\r\n\r\n") {
            let rest = buf.split_off(pos + 4);
            buf.truncate(pos);
            return Ok((buf, rest));
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::TooLarge("request head"));
        }
        let mut chunk = [0u8; 2048];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // Clean close between requests (keep-alive end).
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed(
                "connection closed before the end of the headers".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Minimal percent-decoding (`%XX`; `+`-as-space is *not* applied —
/// transducer names and modes never contain spaces).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut decoded = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                decoded.push(hi * 16 + lo);
                i += 3;
                continue;
            }
        }
        decoded.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&decoded).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// The reason phrase for the handful of status codes the server uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        207 => "Multi-Status",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn connection_header(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Writes a complete `Content-Length` response, closing the connection.
pub fn write_response(
    stream: &mut dyn Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write_response_conn(stream, status, content_type, extra_headers, body, false)
}

/// Writes a complete `Content-Length` response with an explicit
/// `Connection:` disposition.
pub fn write_response_conn(
    stream: &mut dyn Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nConnection: {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        connection_header(keep_alive),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress (one [`ChunkedWriter::chunk`]
/// call per document on the transform endpoint).
pub struct ChunkedWriter<'a> {
    stream: &'a mut dyn Write,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and switches the body to chunked framing.
    pub fn start(
        stream: &'a mut dyn Write,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
    ) -> io::Result<ChunkedWriter<'a>> {
        ChunkedWriter::start_conn(stream, status, content_type, extra_headers, false)
    }

    /// [`ChunkedWriter::start`] with an explicit `Connection:`
    /// disposition (chunked framing delimits the body, so keep-alive
    /// works for streamed responses too).
    pub fn start_conn(
        stream: &'a mut dyn Write,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
        keep_alive: bool,
    ) -> io::Result<ChunkedWriter<'a>> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\nConnection: {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n",
            reason(status),
            connection_header(keep_alive)
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Continues a chunked body whose head was already written — a
    /// stream job resumed on another worker after yielding mid-response
    /// picks up the framing where it left off.
    pub fn resume(stream: &'a mut dyn Write) -> ChunkedWriter<'a> {
        ChunkedWriter { stream }
    }

    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the body
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")
    }

    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Streamed responses (`mode=stream`) hand the writer straight to the
/// engine as an output byte sink: every `write` becomes one chunk on the
/// wire and `flush` pushes it to the socket, so committed output
/// prefixes reach the client while the document is still being read.
impl Write for ChunkedWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.chunk(data)?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

/// A response as read back by the client: status, headers, decoded body.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads a full response (Content-Length, chunked, or read-to-EOF).
pub fn read_response(stream: &mut dyn Read) -> Result<Response, HttpError> {
    let mut carry = Vec::new();
    read_response_carry(stream, &mut carry)
}

/// [`read_response`] for pipelined connections: bytes read past the end
/// of this response (the start of the next one, when the server answers
/// back-to-back) are preserved in `carry` and consumed first on the next
/// call — the response-side analogue of [`read_request_carry`].
pub fn read_response_carry(
    stream: &mut dyn Read,
    carry: &mut Vec<u8>,
) -> Result<Response, HttpError> {
    let (head, leftover) = read_head_carry(stream, std::mem::take(carry))?;
    let head = String::from_utf8(head)
        .map_err(|_| HttpError::Malformed("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line: {status_line}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let mut rest = leftover;
    let body = if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        let body = decode_chunked(stream, &mut rest)?;
        *carry = rest;
        body
    } else if let Some(len) = find("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
        while rest.len() < len {
            let mut buf = [0u8; 8192];
            let n = stream.read(&mut buf)?;
            if n == 0 {
                return Err(HttpError::Malformed("connection closed mid-body".into()));
            }
            rest.extend_from_slice(&buf[..n]);
        }
        let mut body = rest;
        *carry = body.split_off(len);
        body
    } else {
        // Read to EOF.
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf)?;
        rest.extend_from_slice(&buf);
        rest
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Largest chunk a client will buffer; a bigger size line is treated as
/// a corrupt peer rather than an allocation request.
const MAX_CHUNK: usize = 1 << 30;

/// Decodes a chunked body; `rest` holds bytes already read past the head.
fn decode_chunked(stream: &mut dyn Read, rest: &mut Vec<u8>) -> Result<Vec<u8>, HttpError> {
    decode_chunked_capped(stream, rest, None)
}

/// [`decode_chunked`] with an optional cap on the *decoded* size (the
/// request path caps at `max_body`; the client side only guards against
/// absurd single-chunk size lines). Trailer fields after the last chunk
/// are consumed and discarded; bytes past the terminator stay in `rest`.
fn decode_chunked_capped(
    stream: &mut dyn Read,
    rest: &mut Vec<u8>,
    cap: Option<usize>,
) -> Result<Vec<u8>, HttpError> {
    let mut out = Vec::new();
    loop {
        let line = read_line(stream, rest)?;
        let size_str = line.split(';').next().unwrap_or_default().trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size: {size_str}")))?;
        if size > MAX_CHUNK {
            return Err(HttpError::Malformed(format!(
                "chunk size {size} exceeds the {MAX_CHUNK}-byte cap"
            )));
        }
        if size == 0 {
            // Trailer section: zero or more header lines, then CRLF.
            loop {
                if read_line(stream, rest)?.is_empty() {
                    return Ok(out);
                }
            }
        }
        if cap.is_some_and(|max| out.len() + size > max) {
            return Err(HttpError::TooLarge("body"));
        }
        while rest.len() < size + 2 {
            let mut buf = [0u8; 8192];
            let n = stream.read(&mut buf)?;
            if n == 0 {
                return Err(HttpError::Malformed("connection closed mid-chunk".into()));
            }
            rest.extend_from_slice(&buf[..n]);
        }
        out.extend_from_slice(&rest[..size]);
        rest.drain(..size + 2); // chunk data + CRLF
    }
}

/// Reads one CRLF-terminated line out of `rest`, refilling from the stream.
fn read_line(stream: &mut dyn Read, rest: &mut Vec<u8>) -> Result<String, HttpError> {
    loop {
        if let Some(pos) = find_subsequence(rest, b"\r\n") {
            let line = String::from_utf8_lossy(&rest[..pos]).into_owned();
            rest.drain(..pos + 2);
            return Ok(line);
        }
        let mut buf = [0u8; 1024];
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-line".into()));
        }
        rest.extend_from_slice(&buf[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_put_with_body() {
        let raw =
            b"PUT /transducers/flip?learn=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(req.method, "PUT");
        assert_eq!(req.path, "/transducers/flip");
        assert_eq!(req.query_param("learn"), Some("1"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let raw = b"GET /transducers/my%2dname?mode=tree&x=a%20b HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(req.path, "/transducers/my-name");
        assert_eq!(req.query_param("x"), Some("a b"));
    }

    #[test]
    fn pipelined_requests_carry_over() {
        // Two requests in one buffer: the bytes past the first body are
        // not a protocol error — they seed the next read.
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\n";
        let mut carry = Vec::new();
        let mut stream = &raw[..];
        let first = read_request_carry(&mut stream, 1024, &mut carry).unwrap();
        assert_eq!(
            (first.path.as_str(), first.body.as_slice()),
            ("/a", &b"hi"[..])
        );
        assert!(!carry.is_empty(), "second request must be carried over");
        let second = read_request_carry(&mut stream, 1024, &mut carry).unwrap();
        assert_eq!(second.path, "/b");
        assert!(carry.is_empty());
        assert!(matches!(
            read_request_carry(&mut stream, 1024, &mut carry),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn decodes_chunked_request_bodies() {
        // Two chunks, a trailer field, and a pipelined request behind the
        // terminator: the body is reassembled and the next request is
        // carried over exactly like a Content-Length one.
        let raw = b"POST /t HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\n6\r\n world\r\n0\r\nX-Trailer: 1\r\n\r\n\
                    GET /b HTTP/1.1\r\n\r\n";
        let mut carry = Vec::new();
        let mut stream = &raw[..];
        let req = read_request_carry(&mut stream, 1024, &mut carry).unwrap();
        assert_eq!(req.body, b"hello world");
        let second = read_request_carry(&mut stream, 1024, &mut carry).unwrap();
        assert_eq!(second.path, "/b");
    }

    #[test]
    fn rejects_oversized_bodies_chunked_or_not() {
        let raw = b"POST /t HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], 1024),
            Err(HttpError::TooLarge(_))
        ));
        // The cap applies to the *decoded* chunked size too.
        let mut raw = b"POST /t HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        for _ in 0..3 {
            raw.extend_from_slice(b"200\r\n");
            raw.extend_from_slice(&[b'x'; 0x200]);
            raw.extend_from_slice(b"\r\n");
        }
        raw.extend_from_slice(b"0\r\n\r\n");
        assert!(matches!(
            read_request(&mut &raw[..], 1024),
            Err(HttpError::TooLarge(_))
        ));
        // Exotic transfer encodings are still refused outright.
        let raw = b"POST /t HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], 1024),
            Err(HttpError::Unsupported(_))
        ));
    }

    #[test]
    fn try_parse_reports_incomplete_prefixes_then_the_request() {
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /b HTTP/1.1\r\n\r\n";
        let mut scan = 0;
        // Feed the bytes in growing prefixes: every proper prefix of the
        // first request parses to None, the full span to Some.
        let full = b"POST /a HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody".len();
        for cut in 0..full {
            assert!(
                try_parse_request(&raw[..cut], 1024, &mut scan)
                    .unwrap()
                    .is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (req, consumed) = try_parse_request(raw, 1024, &mut scan).unwrap().unwrap();
        assert_eq!(
            (req.path.as_str(), req.body.as_slice()),
            ("/a", &b"body"[..])
        );
        assert_eq!(consumed, full);
        // The remainder is the next pipelined request.
        let mut scan = 0;
        let (second, consumed2) = try_parse_request(&raw[consumed..], 1024, &mut scan)
            .unwrap()
            .unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn try_parse_handles_incremental_chunked_bodies() {
        let raw = b"POST /t HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let mut scan = 0;
        for cut in 0..raw.len() {
            assert!(
                try_parse_request(&raw[..cut], 1024, &mut scan)
                    .unwrap()
                    .is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (req, consumed) = try_parse_request(raw, 1024, &mut scan).unwrap().unwrap();
        assert_eq!(req.body, b"hello world");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn try_parse_rejects_hopeless_prefixes_early() {
        // An oversized Content-Length is refused at the head, before any
        // body bytes arrive.
        let raw = b"POST /t HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        let mut scan = 0;
        assert!(matches!(
            try_parse_request(raw, 1024, &mut scan),
            Err(HttpError::TooLarge("body"))
        ));
        // A head that can never terminate under the cap is refused too.
        let huge = vec![b'x'; MAX_HEAD + 2];
        let mut scan = 0;
        assert!(matches!(
            try_parse_request(&huge, 1024, &mut scan),
            Err(HttpError::TooLarge("request head"))
        ));
    }

    #[test]
    fn content_length_response_roundtrips() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            200,
            "text/plain",
            &[("X-Extra", "1".into())],
            b"hi",
        )
        .unwrap();
        let resp = read_response(&mut &wire[..]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-extra"), Some("1"));
        assert_eq!(resp.body, b"hi");
    }

    #[test]
    fn chunked_response_roundtrips() {
        let mut wire = Vec::new();
        {
            let mut w = ChunkedWriter::start(&mut wire, 207, "text/plain", &[]).unwrap();
            w.chunk(b"line one\n").unwrap();
            w.chunk(b"").unwrap(); // ignored, must not terminate
            w.chunk(b"line two\n").unwrap();
            w.finish().unwrap();
        }
        let resp = read_response(&mut &wire[..]).unwrap();
        assert_eq!(resp.status, 207);
        assert_eq!(resp.body_str(), "line one\nline two\n");
    }

    /// Back-to-back responses on one connection (pipelining): bytes read
    /// past the first response must carry into the next parse.
    #[test]
    fn pipelined_responses_carry_over() {
        let mut wire = Vec::new();
        write_response_conn(&mut wire, 200, "text/plain", &[], b"first", true).unwrap();
        {
            let mut w = ChunkedWriter::start(&mut wire, 200, "text/plain", &[]).unwrap();
            w.chunk(b"second").unwrap();
            w.finish().unwrap();
        }
        write_response_conn(&mut wire, 200, "text/plain", &[], b"third", false).unwrap();

        let mut stream = &wire[..];
        let mut carry = Vec::new();
        for expect in ["first", "second", "third"] {
            let resp = read_response_carry(&mut stream, &mut carry).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body_str(), expect);
        }
        assert!(carry.is_empty());
    }
}
