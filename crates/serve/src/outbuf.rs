//! The bounded per-connection output buffer between a worker thread and
//! the event loop.
//!
//! A worker produces response bytes into an [`Outbuf`] through a
//! [`ConnWriter`]; the event loop drains the buffer to the socket with
//! nonblocking writes whenever the connection reports writability. The
//! buffer is the *only* coupling between the two sides:
//!
//! * A full buffer blocks the worker on a condvar — but never past the
//!   **idle-progress deadline**: if the consumer makes no drain progress
//!   for that long while the worker needs space, the push fails with
//!   `TimedOut` (a stalled client can cost a worker at most one deadline,
//!   not a blocked `write(2)` forever).
//! * A closed connection [`Outbuf::abort`]s the buffer, which fails any
//!   blocked or future push with `BrokenPipe` immediately — a worker can
//!   never deadlock on a connection that no longer exists.
//! * The empty→nonempty transition wakes the event loop (through the
//!   [`Waker`] pipe), which arms write interest; while bytes remain, the
//!   level-triggered `EPOLLOUT` keeps the drain going.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use xtt_netio::{write_ready, Waker, WriteOutcome};

struct OutState {
    buf: VecDeque<u8>,
    aborted: bool,
    /// Last time the consumer drained bytes to the socket (or the buffer
    /// was created) — the reference point for the idle-progress deadline.
    last_progress: Instant,
}

/// The shared buffer; one per connection, held by the connection entry
/// in the event loop and by the job on the worker side.
pub(crate) struct Outbuf {
    state: Mutex<OutState>,
    space: Condvar,
    capacity: usize,
}

/// What [`Outbuf::drain_to`] left behind.
pub(crate) enum Drained {
    /// The buffer is empty; write interest can be disarmed.
    Empty,
    /// Bytes remain (the socket stopped accepting); keep write interest.
    Pending,
}

impl Outbuf {
    pub fn new(capacity: usize) -> Outbuf {
        Outbuf {
            state: Mutex::new(OutState {
                buf: VecDeque::new(),
                aborted: false,
                last_progress: Instant::now(),
            }),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, OutState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Fails every blocked and future push with `BrokenPipe` and drops
    /// the buffered bytes. Called whenever the connection goes away, so
    /// an orphaned response can never pin a worker.
    pub fn abort(&self) {
        let mut st = self.lock();
        st.aborted = true;
        st.buf.clear();
        drop(st);
        self.space.notify_all();
    }

    /// How long the buffer has been nonempty without any drain progress
    /// (`None` when empty). The event loop uses this to time out parked
    /// and draining connections whose client stopped reading.
    pub fn stalled_for(&self) -> Option<Duration> {
        let st = self.lock();
        if st.buf.is_empty() || st.aborted {
            None
        } else {
            Some(st.last_progress.elapsed())
        }
    }

    /// Event-loop-side append for small direct responses (parse errors,
    /// `503` backpressure): ignores the capacity bound — the event loop
    /// must never block — and is a no-op on an aborted buffer.
    pub fn force_push(&self, data: &[u8]) {
        let mut st = self.lock();
        if !st.aborted {
            st.buf.extend(data);
        }
    }

    /// Worker-side append: blocks while the buffer is full, bounded by
    /// the idle-progress `deadline` — measured from the later of the last
    /// consumer progress and the start of this wait, so a long compute
    /// gap before the push never counts against the client. Wakes the
    /// event loop on the empty→nonempty transition.
    pub fn push(&self, mut data: &[u8], deadline: Duration, waker: &Waker) -> io::Result<()> {
        let mut st = self.lock();
        loop {
            if st.aborted {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "connection is gone",
                ));
            }
            let space = self.capacity.saturating_sub(st.buf.len());
            if space > 0 {
                let n = space.min(data.len());
                let was_empty = st.buf.is_empty();
                st.buf.extend(&data[..n]);
                data = &data[n..];
                if was_empty {
                    // Wake *inside* the push: when the payload exceeds the
                    // capacity the next iteration blocks, and the consumer
                    // must already know there is something to drain.
                    let _ = waker.wake();
                }
                if data.is_empty() {
                    return Ok(());
                }
                continue;
            }
            let wait_started = Instant::now();
            loop {
                let stalled_since = st.last_progress.max(wait_started);
                let elapsed = stalled_since.elapsed();
                if elapsed >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "client stalled: no write progress within the deadline",
                    ));
                }
                let (guard, _) = self
                    .space
                    .wait_timeout(st, deadline - elapsed)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if st.aborted || st.buf.len() < self.capacity {
                    break;
                }
            }
        }
    }

    /// Event-loop-side drain: nonblocking writes to the socket until the
    /// buffer empties or the socket stops accepting. Progress updates the
    /// stall clock and wakes blocked workers; a hard write error aborts
    /// the buffer and surfaces to the caller (close the connection).
    pub fn drain_to(&self, stream: &mut TcpStream) -> io::Result<Drained> {
        let mut st = self.lock();
        let mut progressed = false;
        while !st.buf.is_empty() {
            let wrote = {
                let (front, _) = st.buf.as_slices();
                write_ready(stream, front)
            };
            match wrote {
                Ok(WriteOutcome::Wrote(n)) => {
                    st.buf.drain(..n);
                    progressed = true;
                }
                Ok(WriteOutcome::WouldBlock) => break,
                Err(e) => {
                    st.aborted = true;
                    st.buf.clear();
                    drop(st);
                    self.space.notify_all();
                    return Err(e);
                }
            }
        }
        let outcome = if st.buf.is_empty() {
            Drained::Empty
        } else {
            Drained::Pending
        };
        if progressed {
            st.last_progress = Instant::now();
            drop(st);
            self.space.notify_all();
        }
        Ok(outcome)
    }
}

/// The worker's view of a connection: an `io::Write` over the [`Outbuf`],
/// carrying the idle-progress deadline for this response. Handlers and
/// the engine's streaming sink write here exactly as they used to write
/// to the `TcpStream`.
pub(crate) struct ConnWriter<'a> {
    out: &'a Outbuf,
    waker: &'a Waker,
    deadline: Duration,
}

impl<'a> ConnWriter<'a> {
    pub fn new(out: &'a Outbuf, waker: &'a Waker, deadline: Duration) -> ConnWriter<'a> {
        ConnWriter {
            out,
            waker,
            deadline,
        }
    }

    /// Switches the deadline (streamed responses use the tighter
    /// `stream_write_deadline` instead of the general `io_timeout`).
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline;
    }

    /// Bytes currently buffered and not yet on the wire — the stream
    /// jobs' doc-boundary yield decision reads this.
    pub fn backlog(&self) -> usize {
        self.out.len()
    }

    pub fn buffer_capacity(&self) -> usize {
        self.out.capacity()
    }
}

impl Write for ConnWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.out.push(data, self.deadline, self.waker)?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Bytes are visible to the event loop the moment they land in the
        // buffer; there is nothing further to force.
        Ok(())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_blocks_until_drain_then_completes() {
        let out = Arc::new(Outbuf::new(8));
        let waker = Arc::new(Waker::new().unwrap());
        let (o, w) = (Arc::clone(&out), Arc::clone(&waker));
        let producer =
            std::thread::spawn(move || o.push(b"0123456789abcdef", Duration::from_secs(5), &w));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(out.len(), 8, "capacity bounds the buffer");
        // Simulate consumer progress by draining through a socket pair.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        while out.len() > 0 || !producer.is_finished() {
            out.drain_to(&mut a).unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        producer.join().unwrap().unwrap();
    }

    #[test]
    fn stalled_consumer_times_out_and_abort_breaks_the_pipe() {
        let out = Outbuf::new(4);
        let waker = Waker::new().unwrap();
        let err = out
            .push(b"too big to fit", Duration::from_millis(50), &waker)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);

        out.abort();
        let err = out
            .push(b"x", Duration::from_millis(50), &waker)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}
