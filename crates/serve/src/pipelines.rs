//! The named-pipeline registry behind `PUT /pipelines/{name}`.
//!
//! A pipeline is a sequence of *registered transducers* τₙ ∘ … ∘ τ₁ plus
//! an optional input schema (the domain automaton of an uploaded DTD
//! encoding, `?schema={encoding}`). Registration snapshots the current
//! stage definitions and plans them once (`xtt_pipeline::plan`): schema
//! specialization, static composition + normalization, compilation of
//! both execution strategies, and the cost probe that picks between them.
//! Plans are memoized in a [`PlanCache`] keyed by the pipeline
//! fingerprint, sized like the engine's compile LRU, so re-registering an
//! unchanged pipeline is free while any stage hot-swap re-plans.
//!
//! Entries are immutable `Arc`s behind an `RwLock`, hot-swappable like
//! the transducer registry: in-flight transforms keep the old plan.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use xtt_automata::Dtta;
use xtt_engine::CacheStats;
use xtt_pipeline::{Plan, PlanCache, PlanError, StageDef, StrategyChoice};

use crate::registry::escape_json;

/// One registered pipeline: its definition plus the executable plan.
pub struct PipelineEntry {
    pub name: String,
    /// The `?schema=` encoding name the input schema came from, if any.
    pub schema: Option<String>,
    pub choice: StrategyChoice,
    pub plan: Arc<Plan>,
}

impl PipelineEntry {
    /// The JSON summary used by the list, upload, and inspect responses.
    pub fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"schema\":{},\"choice\":\"{}\",\"plan\":{}}}",
            escape_json(&self.name),
            self.schema
                .as_deref()
                .map_or_else(|| "null".to_owned(), |s| format!("\"{}\"", escape_json(s))),
            self.choice.as_str(),
            self.plan.report.json(),
        )
    }
}

/// Thread-safe name → pipeline map plus the shared plan cache.
pub struct PipelineRegistry {
    entries: RwLock<HashMap<String, Arc<PipelineEntry>>>,
    cache: PlanCache,
}

impl PipelineRegistry {
    /// `capacity` bounds the plan cache (the server passes the engine's
    /// compile-LRU capacity, so pipeline cardinality tracks it).
    pub fn new(capacity: usize) -> PipelineRegistry {
        PipelineRegistry {
            entries: RwLock::new(HashMap::new()),
            cache: PlanCache::new(capacity),
        }
    }

    /// Plans and registers (or hot-swaps) a pipeline. The stage dtops are
    /// snapshots: deleting or replacing a stage transducer later does not
    /// disturb an already-registered pipeline.
    pub fn register(
        &self,
        name: &str,
        stages: Vec<StageDef>,
        schema: Option<(String, Dtta)>,
        choice: StrategyChoice,
    ) -> Result<Arc<PipelineEntry>, PlanError> {
        let plan = self
            .cache
            .get_or_plan(&stages, schema.as_ref().map(|(_, d)| d), choice)?;
        let entry = Arc::new(PipelineEntry {
            name: name.to_owned(),
            schema: schema.map(|(n, _)| n),
            choice,
            plan,
        });
        self.write().insert(name.to_owned(), Arc::clone(&entry));
        Ok(entry)
    }

    pub fn get(&self, name: &str) -> Option<Arc<PipelineEntry>> {
        self.read().get(name).cloned()
    }

    pub fn remove(&self, name: &str) -> bool {
        self.write().remove(name).is_some()
    }

    pub fn len(&self) -> usize {
        self.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Plan-cache hit/miss/entry counts for `/stats` and `/metrics`.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// JSON array of all entries, sorted by name.
    pub fn list_json(&self) -> String {
        let map = self.read();
        let mut entries: Vec<_> = map.values().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let items: Vec<String> = entries.iter().map(|e| e.json()).collect();
        format!("[{}]", items.join(","))
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<PipelineEntry>>> {
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<PipelineEntry>>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::{examples, identity};

    fn stage(name: &str, dtop: xtt_transducer::Dtop) -> StageDef {
        StageDef {
            name: name.to_owned(),
            dtop: Arc::new(dtop),
        }
    }

    #[test]
    fn register_resolve_and_remove() {
        let reg = PipelineRegistry::new(4);
        let fix = examples::flip();
        let stages = vec![
            stage("flip", fix.dtop.clone()),
            stage("id", identity(fix.dtop.output())),
        ];
        let entry = reg
            .register("pp", stages.clone(), None, StrategyChoice::Auto)
            .unwrap();
        assert_eq!(entry.plan.report.stages, vec!["flip", "id"]);
        assert!(reg.get("pp").is_some());
        assert!(reg.list_json().contains("\"pp\""));
        // Identical re-registration hits the plan cache.
        reg.register("pp2", stages, None, StrategyChoice::Auto)
            .unwrap();
        assert_eq!(reg.plan_cache_stats().hits, 1);
        assert!(reg.remove("pp"));
        assert!(reg.get("pp").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn empty_composition_is_a_plan_error() {
        let reg = PipelineRegistry::new(4);
        // Stage 2 only accepts inputs rooted at `a`; flip only ever emits
        // `root` at the root, so the composed domain is empty.
        let fix = examples::flip();
        let alpha = fix.dtop.output().clone();
        let a = *alpha
            .symbols()
            .iter()
            .find(|s| s.name() == "a")
            .expect("symbol a");
        let mut b = xtt_transducer::Dtop::builder(alpha.clone(), alpha);
        let q = b.add_state("q");
        b.set_axiom(xtt_transducer::Rhs::Call { state: q, child: 0 });
        let leaf = *fix
            .dtop
            .output()
            .symbols()
            .iter()
            .find(|s| s.name() == "#")
            .expect("symbol #");
        b.add_rule(q, a, xtt_transducer::Rhs::Out(leaf, vec![]))
            .unwrap();
        let only_a = b.build().unwrap();
        let stages = vec![stage("flip", fix.dtop), stage("only_a", only_a)];
        match reg.register("ff", stages, None, StrategyChoice::Auto) {
            Err(PlanError::EmptyComposition) => {}
            Err(e) => panic!("expected EmptyComposition, got: {e}"),
            Ok(_) => panic!("expected EmptyComposition, got a plan"),
        }
    }
}
