//! `ServeClient` — a minimal blocking HTTP client for driving a running
//! `xtt-serve` over a real socket. This is first-class test support: the
//! integration tests, the examples, and the CI smoke script all use it
//! instead of shelling out to curl.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::http::{read_response, Response};

/// One client bound to a server address; each call is one connection.
#[derive(Clone, Debug)]
pub struct ServeClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl ServeClient {
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        Ok(ServeClient {
            addr,
            timeout: Duration::from_secs(30),
        })
    }

    pub fn with_timeout(mut self, timeout: Duration) -> ServeClient {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to (for tests that need a
    /// raw socket next to the client).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request with a `Transfer-Encoding: chunked` body — a
    /// streamed upload. `chunks` become one wire chunk each.
    pub fn request_chunked(
        &self,
        method: &str,
        target: &str,
        chunks: &[&str],
    ) -> io::Result<Response> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            self.addr,
        );
        stream.write_all(head.as_bytes())?;
        for chunk in chunks.iter().filter(|c| !c.is_empty()) {
            stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
            stream.write_all(chunk.as_bytes())?;
            stream.write_all(b"\r\n")?;
        }
        stream.write_all(b"0\r\n\r\n")?;
        stream.flush()?;
        read_response(&mut stream).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one request; `target` includes the query string.
    pub fn request(&self, method: &str, target: &str, body: &str) -> io::Result<Response> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        read_response(&mut stream).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// `GET /healthz` → true iff the server answers 200.
    pub fn healthz(&self) -> bool {
        self.request("GET", "/healthz", "")
            .map(|r| r.status == 200)
            .unwrap_or(false)
    }

    /// Uploads term-syntax rules under `name`.
    pub fn put_transducer(&self, name: &str, rules: &str) -> io::Result<Response> {
        self.request("PUT", &format!("/transducers/{name}"), rules)
    }

    /// Learns a transducer from `input => output` sample lines.
    pub fn learn_transducer(&self, name: &str, sample: &str) -> io::Result<Response> {
        self.request("PUT", &format!("/transducers/{name}?learn=1"), sample)
    }

    /// Transforms a batch (one document per line); `query` is e.g.
    /// `"?mode=stream&format=xml"` or `""`. Returns the response and the
    /// per-document result lines, positionally.
    pub fn transform(
        &self,
        name: &str,
        query: &str,
        docs: &[&str],
    ) -> io::Result<(Response, Vec<String>)> {
        let mut body = docs.join("\n");
        body.push('\n');
        let response = self.request("POST", &format!("/transform/{name}{query}"), &body)?;
        let lines = response
            .body_str()
            .lines()
            .map(str::to_owned)
            .collect::<Vec<_>>();
        Ok((response, lines))
    }

    /// `POST /typecheck/{name}` — output typechecking against a DTTA
    /// schema in term syntax; answers ok/counterexample JSON.
    pub fn typecheck(&self, name: &str, schema: &str) -> io::Result<Response> {
        self.request("POST", &format!("/typecheck/{name}"), schema)
    }

    /// `GET /stats` (raw JSON).
    pub fn stats(&self) -> io::Result<Response> {
        self.request("GET", "/stats", "")
    }

    /// `POST /shutdown` — asks the server to drain and exit.
    pub fn shutdown(&self) -> io::Result<Response> {
        self.request("POST", "/shutdown", "")
    }

    /// Polls `/healthz` until the server answers or the deadline passes.
    pub fn wait_ready(&self, deadline: Duration) -> bool {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < deadline {
            if self.healthz() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    }

    /// Opens a persistent (keep-alive) session: one connection, many
    /// requests.
    pub fn session(&self) -> io::Result<ServeSession> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(ServeSession {
            addr: self.addr,
            stream,
        })
    }
}

/// A keep-alive client session: requests share one TCP connection until
/// the server (or [`ServeSession::close`]) ends it. Used by the
/// integration tests to pin connection-reuse behavior.
pub struct ServeSession {
    addr: SocketAddr,
    stream: TcpStream,
}

impl ServeSession {
    /// Sends one request on the shared connection.
    pub fn request(&mut self, method: &str, target: &str, body: &str) -> io::Result<Response> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.stream).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends a request with an explicit `Connection: close`, asking the
    /// server to end the session after answering.
    pub fn request_close(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
    ) -> io::Result<Response> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.stream).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
