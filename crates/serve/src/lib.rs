//! # xtt-serve
//!
//! The serving front end for learned top-down tree transducers: a
//! dependency-free HTTP/1.1 server on `std::net` wrapping a shared
//! [`Engine`](xtt_engine::Engine), so learned DTOPs are reachable over a
//! wire protocol instead of a linked crate — the transformation-service
//! shape of the XSLT workloads surveyed by Janssen et al., backed by the
//! PODS 2010 learner.
//!
//! What it does (see [`server`] for the endpoint table):
//!
//! * **upload or learn** transducers (`PUT /transducers/{name}`, term
//!   syntax or `input => output` samples run through `RPNIdtop`), with
//!   atomic hot swap keyed into the engine's fingerprint LRU;
//! * **transform batches** (`POST /transform/{name}`) in term or XML
//!   syntax — or genuine unranked XML through a ranked encoding
//!   (`?encoding=fcns` or a DTD uploaded via `PUT /encodings/{name}`) —
//!   any evaluator (`?mode=tree|stream|dag|walk`), with strictly
//!   per-document positional errors and chunked responses;
//! * **observe** (`/healthz`, `/stats`: cache hits, queue depth,
//!   per-endpoint latency) and **shut down gracefully** (SIGTERM/SIGINT
//!   or `POST /shutdown`: stop accepting, drain, finish in-flight, exit).
//!
//! Concurrency: an **epoll event loop** (one thread owning every socket,
//! on the raw-syscall [`xtt_netio`] readiness layer) in front of a
//! bounded worker queue, with **keep-alive** connections (idle timeout +
//! per-connection request limit; reuse is visible in `/stats` under
//! `connections`, the loop itself under `event_loop`). Idle and parked
//! connections hold no thread — only an epoll registration and a bounded
//! output buffer — so hundreds of idle clients coexist with a handful of
//! workers; a full queue answers `503` immediately (backpressure, never
//! unbounded buffering). The HTTP layer is hand-rolled ([`http`]) — the
//! build environment is offline and the workspace policy is to implement
//! substrates rather than pull deps.
//!
//! [`ServeClient`] is the matching minimal client, used by the
//! integration tests, the examples, and the CI smoke script.

pub mod client;
pub mod encodings;
mod event_loop;
pub mod http;
mod outbuf;
pub mod pipelines;
pub mod pool;
pub mod registry;
pub mod server;
pub mod signal;
pub mod stats;

pub use client::{ServeClient, ServeSession};
pub use encodings::{EncodingEntry, EncodingRegistry};
pub use pipelines::{PipelineEntry, PipelineRegistry};
pub use pool::{PushError, WorkQueue};
pub use registry::{Entry, Registry, RegistryError, Source};
pub use server::{ServeHandle, ServeOptions, Server};
