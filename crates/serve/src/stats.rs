//! Lock-free observability counters behind `/stats`.
//!
//! Everything is a relaxed atomic: the counters are monotone and the
//! endpoint only needs an eventually-consistent snapshot, so the hot
//! path pays one `fetch_add` per event and never takes a lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-endpoint latency/count counters.
#[derive(Default)]
pub struct EndpointStats {
    pub count: AtomicU64,
    pub errors: AtomicU64,
    pub total_micros: AtomicU64,
    pub max_micros: AtomicU64,
}

impl EndpointStats {
    /// Records one request; `error` means a non-2xx response.
    pub fn record(&self, started: Instant, error: bool) {
        let micros = started.elapsed().as_micros() as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\":{},\"errors\":{},\"total_us\":{},\"max_us\":{}}}",
            self.count.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.total_micros.load(Ordering::Relaxed),
            self.max_micros.load(Ordering::Relaxed),
        )
    }
}

/// All server counters; one instance shared by the acceptor and workers.
#[derive(Default)]
pub struct ServerStats {
    /// Connections turned away with `503` because the queue was full.
    pub rejected: AtomicU64,
    /// Connections accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests served (all endpoints, all connections).
    pub requests: AtomicU64,
    /// Requests served on a *reused* (kept-alive) connection — the
    /// second and later requests of each connection.
    pub reused_requests: AtomicU64,
    /// Kept-alive connections closed by the idle timeout.
    pub closed_idle: AtomicU64,
    /// Current queue depth (mirrors the queue, for the snapshot).
    pub queue_depth: AtomicUsize,
    /// Requests whose handler panicked (answered `500`).
    pub handler_panics: AtomicU64,
    /// Documents seen / failed on the transform endpoint.
    pub documents: AtomicU64,
    pub document_errors: AtomicU64,
    /// Documents rejected by the domain guard before evaluation
    /// (validate mode / `?validate=1`).
    pub documents_type_errors: AtomicU64,
    /// Output-typecheck runs on `POST /typecheck/{name}` and how many
    /// found the transducer ill-typed (counterexample returned).
    pub typecheck_runs: AtomicU64,
    pub typecheck_ill_typed: AtomicU64,
    /// Documents answered through `mode=stream` incremental emission.
    pub docs_streamed: AtomicU64,
    /// Output bytes flushed to clients *during* evaluation (before the
    /// document — let alone the batch — was finished), i.e. bytes the
    /// tree-at-root-close path would still have been buffering.
    pub bytes_flushed_early: AtomicU64,
    /// Streamed responses aborted because a slow client missed the
    /// write deadline.
    pub write_timeouts: AtomicU64,
    /// Connections currently registered with the event loop (gauge).
    pub connections_open: AtomicUsize,
    /// Kept-alive connections currently idle between requests (gauge) —
    /// these hold no thread, only an epoll registration.
    pub parked_idle: AtomicUsize,
    /// `epoll_wait` returns that delivered at least one event.
    pub epoll_wakeups: AtomicU64,
    /// Jobs handed from the event loop to the worker pool (fresh
    /// requests and resumed stream jobs).
    pub worker_handoffs: AtomicU64,
    /// Times a streamed response yielded its worker at a document
    /// boundary because the client's output buffer was backed up.
    pub slow_client_yields: AtomicU64,
    pub transform: EndpointStats,
    pub transducers: EndpointStats,
    pub encodings: EndpointStats,
    pub typecheck: EndpointStats,
    pub health: EndpointStats,
    pub stats: EndpointStats,
    pub other: EndpointStats,
}

impl ServerStats {
    /// Renders the `/stats` snapshot, splicing in the engine cache and
    /// validation counters and the live transducer count.
    pub fn json(
        &self,
        cache: xtt_engine::CacheStats,
        validation: xtt_engine::ValidationStats,
        skipped_subtrees: u64,
        transducers: usize,
        encodings: usize,
        capacity: usize,
    ) -> String {
        format!(
            "{{\"engine\":{{\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{},\"skipped_subtrees\":{}}},\
             \"queue\":{{\"depth\":{},\"capacity\":{},\"accepted\":{},\"rejected\":{}}},\
             \"connections\":{{\"accepted\":{},\"requests\":{},\"reused_requests\":{},\"closed_idle\":{}}},\
             \"documents\":{{\"total\":{},\"errors\":{},\"type_errors\":{}}},\
             \"validation\":{{\"docs_validated\":{},\"docs_rejected_pre_eval\":{},\"guards_compiled\":{}}},\
             \"typecheck\":{{\"runs\":{},\"ill_typed\":{}}},\
             \"streaming\":{{\"docs_streamed\":{},\"bytes_flushed_early\":{},\"write_timeouts\":{}}},\
             \"event_loop\":{{\"connections_open\":{},\"parked_idle\":{},\"epoll_wakeups\":{},\"worker_handoffs\":{},\"slow_client_yields\":{}}},\
             \"handler_panics\":{},\
             \"transducers\":{},\
             \"encodings\":{},\
             \"endpoints\":{{\"transform\":{},\"transducers\":{},\"encodings\":{},\"typecheck\":{},\"healthz\":{},\"stats\":{},\"other\":{}}}}}",
            cache.hits,
            cache.misses,
            cache.entries,
            skipped_subtrees,
            self.queue_depth.load(Ordering::Relaxed),
            capacity,
            self.accepted.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.accepted.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.reused_requests.load(Ordering::Relaxed),
            self.closed_idle.load(Ordering::Relaxed),
            self.documents.load(Ordering::Relaxed),
            self.document_errors.load(Ordering::Relaxed),
            self.documents_type_errors.load(Ordering::Relaxed),
            validation.docs_validated,
            validation.docs_rejected_pre_eval,
            validation.guards_compiled,
            self.typecheck_runs.load(Ordering::Relaxed),
            self.typecheck_ill_typed.load(Ordering::Relaxed),
            self.docs_streamed.load(Ordering::Relaxed),
            self.bytes_flushed_early.load(Ordering::Relaxed),
            self.write_timeouts.load(Ordering::Relaxed),
            self.connections_open.load(Ordering::Relaxed),
            self.parked_idle.load(Ordering::Relaxed),
            self.epoll_wakeups.load(Ordering::Relaxed),
            self.worker_handoffs.load(Ordering::Relaxed),
            self.slow_client_yields.load(Ordering::Relaxed),
            self.handler_panics.load(Ordering::Relaxed),
            transducers,
            encodings,
            self.transform.json(),
            self.transducers.json(),
            self.encodings.json(),
            self.typecheck.json(),
            self.health.json(),
            self.stats.json(),
            self.other.json(),
        )
    }
}
