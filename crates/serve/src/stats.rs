//! Lock-free observability counters behind `/stats` and `/metrics`.
//!
//! Every counter, gauge, and histogram lives in one [`xtt_obs::Registry`];
//! the structs here hold `Arc` handles to those registered atomics. The
//! hot path pays one relaxed `fetch_add` per event and never takes a
//! lock, and because the JSON `/stats` view and the Prometheus
//! `/metrics` exposition read the very same atomics, the two endpoints
//! can never disagree about a shared counter.

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use xtt_obs::{Counter, Gauge, Histogram, Registry as MetricsRegistry};

/// How many recent slow-request lines `GET /slow` retains.
const SLOW_RING_CAP: usize = 64;

/// Distinct `name` label values admitted on the per-target transform
/// counters before new names collapse into `__other` — a hard bound on
/// exposition cardinality no matter how many transducers and pipelines
/// churn through the registries.
const TARGET_LABEL_CAP: usize = 64;

/// Per-endpoint request/latency handles, labeled `{endpoint="…"}` in the
/// exposition.
pub struct EndpointStats {
    pub count: Arc<Counter>,
    /// 4xx responses: the client asked for something unserveable.
    pub client_errors: Arc<Counter>,
    /// 5xx responses (and aborted streams): the server failed.
    pub server_errors: Arc<Counter>,
    /// Request latency in microseconds (log₂ buckets).
    pub latency: Arc<Histogram>,
}

impl EndpointStats {
    fn new(reg: &MetricsRegistry, endpoint: &str) -> EndpointStats {
        let labels = [("endpoint", endpoint)];
        EndpointStats {
            count: reg.counter(
                "xtt_endpoint_requests_total",
                "Requests handled, by endpoint.",
                &labels,
            ),
            client_errors: reg.counter(
                "xtt_endpoint_errors_total",
                "Error responses, by endpoint and class (client=4xx, server=5xx/abort).",
                &[("endpoint", endpoint), ("class", "client")],
            ),
            server_errors: reg.counter(
                "xtt_endpoint_errors_total",
                "Error responses, by endpoint and class (client=4xx, server=5xx/abort).",
                &[("endpoint", endpoint), ("class", "server")],
            ),
            latency: reg.histogram(
                "xtt_endpoint_latency_micros",
                "Request latency in microseconds, by endpoint.",
                &labels,
            ),
        }
    }

    /// Records one request with the status it was answered with.
    pub fn record(&self, started: Instant, status: u16) {
        let micros = started.elapsed().as_micros() as u64;
        self.count.inc();
        if (400..500).contains(&status) {
            self.client_errors.inc();
        } else if status >= 500 {
            self.server_errors.inc();
        }
        self.latency.record(micros);
    }

    fn json(&self) -> String {
        let snap = self.latency.snapshot();
        format!(
            "{{\"count\":{},\"client_errors\":{},\"server_errors\":{},\"total_us\":{},\"max_us\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
            self.count.get(),
            self.client_errors.get(),
            self.server_errors.get(),
            snap.sum(),
            snap.max(),
            snap.p50(),
            snap.p99(),
            snap.p999(),
        )
    }
}

/// All server metrics; one instance shared by the acceptor and workers.
/// Owns the [`MetricsRegistry`] every handle was registered in.
pub struct ServerStats {
    pub metrics: Arc<MetricsRegistry>,
    /// When the server came up (uptime baseline / `started_at`).
    pub started: Instant,
    pub started_unix: u64,
    /// Connections turned away with `503` because the queue was full.
    pub rejected: Arc<Counter>,
    /// Connections accepted into the event loop.
    pub accepted: Arc<Counter>,
    /// Requests served (all endpoints, all connections).
    pub requests: Arc<Counter>,
    /// Requests served on a *reused* (kept-alive) connection — the
    /// second and later requests of each connection.
    pub reused_requests: Arc<Counter>,
    /// Kept-alive connections closed by the idle timeout.
    pub closed_idle: Arc<Counter>,
    /// Current queue depth (mirrors the queue, for the snapshot).
    pub queue_depth: Arc<Gauge>,
    /// Time jobs spent waiting in the queue before a worker popped them,
    /// in microseconds.
    pub queue_wait: Arc<Histogram>,
    /// Requests whose handler panicked (answered `500`).
    pub handler_panics: Arc<Counter>,
    /// Documents seen / failed on the transform endpoint.
    pub documents: Arc<Counter>,
    pub document_errors: Arc<Counter>,
    /// Documents rejected by the domain guard before evaluation
    /// (validate mode / `?validate=1`).
    pub documents_type_errors: Arc<Counter>,
    /// Output-typecheck runs on `POST /typecheck/{name}` and how many
    /// found the transducer ill-typed (counterexample returned).
    pub typecheck_runs: Arc<Counter>,
    pub typecheck_ill_typed: Arc<Counter>,
    /// Documents answered through `mode=stream` incremental emission.
    pub docs_streamed: Arc<Counter>,
    /// Output bytes flushed to clients *during* evaluation (before the
    /// document — let alone the batch — was finished).
    pub bytes_flushed_early: Arc<Counter>,
    /// Streamed responses aborted because a slow client missed the
    /// write deadline.
    pub write_timeouts: Arc<Counter>,
    /// Connections currently registered with the event loop (gauge).
    pub connections_open: Arc<Gauge>,
    /// Kept-alive connections currently idle between requests (gauge) —
    /// these hold no thread, only an epoll registration.
    pub parked_idle: Arc<Gauge>,
    /// `epoll_wait` returns that delivered at least one event.
    pub epoll_wakeups: Arc<Counter>,
    /// Cumulative nanoseconds the event loop spent blocked in
    /// `epoll_wait` (copied from the poller each sweep tick).
    pub epoll_wait_nanos: Arc<Gauge>,
    /// `epoll_wait` calls completed (copied alongside).
    pub epoll_waits: Arc<Gauge>,
    /// Largest per-connection output backlog ever observed, in bytes.
    pub outbuf_highwater: Arc<Gauge>,
    /// Jobs handed from the event loop to the worker pool (fresh
    /// requests and resumed stream jobs).
    pub worker_handoffs: Arc<Counter>,
    /// Times a streamed response yielded its worker at a document
    /// boundary because the client's output buffer was backed up.
    pub slow_client_yields: Arc<Counter>,
    /// Transform requests that carried a sampled pipeline trace.
    pub traces_sampled: Arc<Counter>,
    /// Requests that crossed the slow-request threshold (logged).
    pub slow_requests: Arc<Counter>,
    /// Ring of the most recent slow-request lines, served at `GET /slow`.
    slow_ring: Mutex<VecDeque<String>>,
    /// `name` label values already admitted on the per-target counters
    /// (bounded by [`TARGET_LABEL_CAP`]).
    target_names: Mutex<HashSet<String>>,
    /// Transform requests dispatched to a registered pipeline.
    pub pipeline_transforms: Arc<Counter>,
    pub transform: EndpointStats,
    pub transducers: EndpointStats,
    pub encodings: EndpointStats,
    pub pipelines: EndpointStats,
    pub typecheck: EndpointStats,
    pub health: EndpointStats,
    pub stats: EndpointStats,
    pub other: EndpointStats,
    // Values owned elsewhere (engine, registries, queue), mirrored into
    // gauges at render time so the exposition carries them too.
    ext_cache_hits: Arc<Gauge>,
    ext_cache_misses: Arc<Gauge>,
    ext_cache_entries: Arc<Gauge>,
    ext_skipped_subtrees: Arc<Gauge>,
    ext_docs_validated: Arc<Gauge>,
    ext_docs_rejected_pre_eval: Arc<Gauge>,
    ext_guards_compiled: Arc<Gauge>,
    ext_transducers: Arc<Gauge>,
    ext_encodings: Arc<Gauge>,
    ext_pipelines: Arc<Gauge>,
    ext_plan_cache_hits: Arc<Gauge>,
    ext_plan_cache_misses: Arc<Gauge>,
    ext_plan_cache_entries: Arc<Gauge>,
    ext_queue_capacity: Arc<Gauge>,
    ext_uptime_seconds: Arc<Gauge>,
    ext_started_at: Arc<Gauge>,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new()
    }
}

impl ServerStats {
    pub fn new() -> ServerStats {
        let reg = Arc::new(MetricsRegistry::new());
        let c = |name: &str, help: &str| reg.counter(name, help, &[]);
        let g = |name: &str, help: &str| reg.gauge(name, help, &[]);
        let started_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let stats = ServerStats {
            started: Instant::now(),
            started_unix,
            rejected: c(
                "xtt_connections_rejected_total",
                "Requests answered 503 because the queue was full.",
            ),
            accepted: c(
                "xtt_connections_accepted_total",
                "Connections accepted by the event loop.",
            ),
            requests: c("xtt_http_requests_total", "Requests parsed and dispatched."),
            reused_requests: c(
                "xtt_http_reused_requests_total",
                "Requests served on a reused (kept-alive) connection.",
            ),
            closed_idle: c(
                "xtt_connections_closed_idle_total",
                "Kept-alive connections closed by the idle timeout.",
            ),
            queue_depth: g("xtt_queue_depth", "Jobs currently waiting for a worker."),
            queue_wait: reg.histogram(
                "xtt_queue_wait_micros",
                "Time requests waited in the queue before a worker popped them.",
                &[],
            ),
            handler_panics: c(
                "xtt_handler_panics_total",
                "Requests whose handler panicked (answered 500).",
            ),
            documents: c(
                "xtt_documents_total",
                "Documents seen on the transform endpoint.",
            ),
            document_errors: c("xtt_document_errors_total", "Documents that failed."),
            documents_type_errors: c(
                "xtt_document_type_errors_total",
                "Documents rejected by the domain guard before evaluation.",
            ),
            typecheck_runs: c("xtt_typecheck_runs_total", "Output-typecheck runs."),
            typecheck_ill_typed: c(
                "xtt_typecheck_ill_typed_total",
                "Typecheck runs that found a counterexample.",
            ),
            docs_streamed: c(
                "xtt_docs_streamed_total",
                "Documents answered through mode=stream incremental emission.",
            ),
            bytes_flushed_early: c(
                "xtt_bytes_flushed_early_total",
                "Output bytes flushed to clients during evaluation.",
            ),
            write_timeouts: c(
                "xtt_write_timeouts_total",
                "Streamed responses aborted by the write deadline.",
            ),
            connections_open: g(
                "xtt_connections_open",
                "Connections currently registered with the event loop.",
            ),
            parked_idle: g(
                "xtt_parked_idle",
                "Kept-alive connections currently idle between requests.",
            ),
            epoll_wakeups: c(
                "xtt_epoll_wakeups_total",
                "epoll_wait returns that delivered at least one event.",
            ),
            epoll_wait_nanos: g(
                "xtt_epoll_wait_nanos_total",
                "Cumulative nanoseconds the event loop spent blocked in epoll_wait.",
            ),
            epoll_waits: g("xtt_epoll_waits_total", "epoll_wait calls completed."),
            outbuf_highwater: g(
                "xtt_outbuf_highwater_bytes",
                "Largest per-connection output backlog ever observed.",
            ),
            worker_handoffs: c(
                "xtt_worker_handoffs_total",
                "Jobs handed from the event loop to the worker pool.",
            ),
            slow_client_yields: c(
                "xtt_slow_client_yields_total",
                "Streamed responses that yielded their worker to a slow client.",
            ),
            traces_sampled: c(
                "xtt_traces_sampled_total",
                "Transform requests that carried a sampled pipeline trace.",
            ),
            slow_requests: c(
                "xtt_slow_requests_total",
                "Requests that crossed the slow-request log threshold.",
            ),
            slow_ring: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAP)),
            target_names: Mutex::new(HashSet::new()),
            pipeline_transforms: c(
                "xtt_pipeline_transforms_total",
                "Transform requests dispatched to a registered pipeline.",
            ),
            transform: EndpointStats::new(&reg, "transform"),
            transducers: EndpointStats::new(&reg, "transducers"),
            encodings: EndpointStats::new(&reg, "encodings"),
            pipelines: EndpointStats::new(&reg, "pipelines"),
            typecheck: EndpointStats::new(&reg, "typecheck"),
            health: EndpointStats::new(&reg, "healthz"),
            stats: EndpointStats::new(&reg, "stats"),
            other: EndpointStats::new(&reg, "other"),
            ext_cache_hits: g("xtt_engine_cache_hits", "Engine compile-cache hits."),
            ext_cache_misses: g("xtt_engine_cache_misses", "Engine compile-cache misses."),
            ext_cache_entries: g(
                "xtt_engine_cache_entries",
                "Transducers currently in the engine compile cache.",
            ),
            ext_skipped_subtrees: g(
                "xtt_engine_skipped_subtrees",
                "Subtrees skipped by deletion-aware evaluation.",
            ),
            ext_docs_validated: g(
                "xtt_docs_validated",
                "Documents run through the domain guard.",
            ),
            ext_docs_rejected_pre_eval: g(
                "xtt_docs_rejected_pre_eval",
                "Documents the guard rejected before evaluation.",
            ),
            ext_guards_compiled: g("xtt_guards_compiled", "Domain guards compiled."),
            ext_transducers: g("xtt_transducers_registered", "Registered transducers."),
            ext_encodings: g("xtt_encodings_registered", "Registered ranked encodings."),
            ext_pipelines: g("xtt_pipelines_registered", "Registered pipelines."),
            ext_plan_cache_hits: g("xtt_pipeline_plan_cache_hits", "Pipeline plan-cache hits."),
            ext_plan_cache_misses: g(
                "xtt_pipeline_plan_cache_misses",
                "Pipeline plan-cache misses.",
            ),
            ext_plan_cache_entries: g(
                "xtt_pipeline_plan_cache_entries",
                "Plans currently in the pipeline plan cache.",
            ),
            ext_queue_capacity: g("xtt_queue_capacity", "Work-queue backpressure bound."),
            ext_uptime_seconds: g("xtt_uptime_seconds", "Seconds since the server started."),
            ext_started_at: g(
                "xtt_started_at_seconds",
                "Unix timestamp of the server start.",
            ),
            metrics: reg,
        };
        stats.ext_started_at.set(started_unix);
        stats
    }

    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Appends a slow-request line to the bounded ring behind `GET /slow`
    /// (oldest line evicted at capacity).
    pub fn push_slow(&self, line: String) {
        let mut ring = self.slow_ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= SLOW_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(line);
    }

    /// The `GET /slow` body: total slow-request count plus the retained
    /// recent lines, oldest first.
    pub fn slow_json(&self) -> String {
        let ring = self.slow_ring.lock().unwrap_or_else(|e| e.into_inner());
        let lines: Vec<String> = ring
            .iter()
            .map(|l| format!("\"{}\"", crate::registry::escape_json(l)))
            .collect();
        format!(
            "{{\"slow_requests\":{},\"capacity\":{},\"recent\":[{}]}}\n",
            self.slow_requests.get(),
            SLOW_RING_CAP,
            lines.join(","),
        )
    }

    /// Bumps the per-target transform counter
    /// `xtt_transform_requests_by_target_total{kind=…,name=…}`. The first
    /// [`TARGET_LABEL_CAP`] distinct names get their own series; later
    /// ones collapse into `name="__other"` so registry churn cannot blow
    /// up the exposition.
    pub fn record_transform_target(&self, kind: &str, name: &str) {
        let bounded = {
            let mut seen = self.target_names.lock().unwrap_or_else(|e| e.into_inner());
            if seen.contains(name) {
                true
            } else if seen.len() < TARGET_LABEL_CAP {
                seen.insert(name.to_owned());
                true
            } else {
                false
            }
        };
        let label = if bounded { name } else { "__other" };
        self.metrics
            .counter(
                "xtt_transform_requests_by_target_total",
                "Transform requests by target (kind=transducer|pipeline, name bounded).",
                &[("kind", kind), ("name", label)],
            )
            .inc();
    }

    /// The per-stage pipeline histogram
    /// `xtt_pipeline_stage_events{stage="i"}` — input events each pipeline
    /// stage processed per document. Registration is idempotent;
    /// cardinality is bounded by the longest registered pipeline.
    pub fn stage_events(&self, stage: usize) -> Arc<Histogram> {
        self.metrics.histogram(
            "xtt_pipeline_stage_events",
            "Input events processed per pipeline stage per document.",
            &[("stage", &stage.to_string())],
        )
    }

    /// Mirrors the values owned elsewhere (engine counters, registry
    /// sizes, queue capacity, uptime) into their gauges. Both `/stats`
    /// and `/metrics` call this with the same getters, so the views stay
    /// in lockstep.
    #[allow(clippy::too_many_arguments)]
    pub fn sync_external(
        &self,
        cache: xtt_engine::CacheStats,
        validation: xtt_engine::ValidationStats,
        skipped_subtrees: u64,
        transducers: usize,
        encodings: usize,
        pipelines: usize,
        plan_cache: xtt_engine::CacheStats,
        capacity: usize,
    ) {
        self.ext_cache_hits.set(cache.hits);
        self.ext_cache_misses.set(cache.misses);
        self.ext_cache_entries.set(cache.entries as u64);
        self.ext_skipped_subtrees.set(skipped_subtrees);
        self.ext_docs_validated.set(validation.docs_validated);
        self.ext_docs_rejected_pre_eval
            .set(validation.docs_rejected_pre_eval);
        self.ext_guards_compiled.set(validation.guards_compiled);
        self.ext_transducers.set(transducers as u64);
        self.ext_encodings.set(encodings as u64);
        self.ext_pipelines.set(pipelines as u64);
        self.ext_plan_cache_hits.set(plan_cache.hits);
        self.ext_plan_cache_misses.set(plan_cache.misses);
        self.ext_plan_cache_entries.set(plan_cache.entries as u64);
        self.ext_queue_capacity.set(capacity as u64);
        self.ext_uptime_seconds.set(self.uptime_seconds());
    }

    /// Renders the `/stats` snapshot, splicing in the engine cache and
    /// validation counters and the live transducer count.
    #[allow(clippy::too_many_arguments)]
    pub fn json(
        &self,
        cache: xtt_engine::CacheStats,
        validation: xtt_engine::ValidationStats,
        skipped_subtrees: u64,
        transducers: usize,
        encodings: usize,
        pipelines: usize,
        plan_cache: xtt_engine::CacheStats,
        capacity: usize,
    ) -> String {
        self.sync_external(
            cache,
            validation,
            skipped_subtrees,
            transducers,
            encodings,
            pipelines,
            plan_cache,
            capacity,
        );
        let queue_wait = self.queue_wait.snapshot();
        format!(
            "{{\"engine\":{{\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{},\"skipped_subtrees\":{}}},\
             \"queue\":{{\"depth\":{},\"capacity\":{},\"accepted\":{},\"rejected\":{},\"wait_p50_us\":{},\"wait_p99_us\":{}}},\
             \"connections\":{{\"accepted\":{},\"requests\":{},\"reused_requests\":{},\"closed_idle\":{}}},\
             \"documents\":{{\"total\":{},\"errors\":{},\"type_errors\":{}}},\
             \"validation\":{{\"docs_validated\":{},\"docs_rejected_pre_eval\":{},\"guards_compiled\":{}}},\
             \"typecheck\":{{\"runs\":{},\"ill_typed\":{}}},\
             \"streaming\":{{\"docs_streamed\":{},\"bytes_flushed_early\":{},\"write_timeouts\":{}}},\
             \"event_loop\":{{\"connections_open\":{},\"parked_idle\":{},\"epoll_wakeups\":{},\"worker_handoffs\":{},\"slow_client_yields\":{},\"epoll_wait_nanos\":{},\"epoll_waits\":{},\"outbuf_highwater_bytes\":{}}},\
             \"tracing\":{{\"traces_sampled\":{},\"slow_requests\":{}}},\
             \"handler_panics\":{},\
             \"uptime_seconds\":{},\
             \"started_at\":{},\
             \"transducers\":{},\
             \"encodings\":{},\
             \"pipelines\":{{\"registered\":{},\"transforms\":{},\"plan_cache_hits\":{},\"plan_cache_misses\":{},\"plan_cache_entries\":{}}},\
             \"endpoints\":{{\"transform\":{},\"transducers\":{},\"encodings\":{},\"pipelines\":{},\"typecheck\":{},\"healthz\":{},\"stats\":{},\"other\":{}}}}}",
            cache.hits,
            cache.misses,
            cache.entries,
            skipped_subtrees,
            self.queue_depth.get(),
            capacity,
            self.accepted.get(),
            self.rejected.get(),
            queue_wait.p50(),
            queue_wait.p99(),
            self.accepted.get(),
            self.requests.get(),
            self.reused_requests.get(),
            self.closed_idle.get(),
            self.documents.get(),
            self.document_errors.get(),
            self.documents_type_errors.get(),
            validation.docs_validated,
            validation.docs_rejected_pre_eval,
            validation.guards_compiled,
            self.typecheck_runs.get(),
            self.typecheck_ill_typed.get(),
            self.docs_streamed.get(),
            self.bytes_flushed_early.get(),
            self.write_timeouts.get(),
            self.connections_open.get(),
            self.parked_idle.get(),
            self.epoll_wakeups.get(),
            self.worker_handoffs.get(),
            self.slow_client_yields.get(),
            self.epoll_wait_nanos.get(),
            self.epoll_waits.get(),
            self.outbuf_highwater.get(),
            self.traces_sampled.get(),
            self.slow_requests.get(),
            self.handler_panics.get(),
            self.uptime_seconds(),
            self.started_unix,
            transducers,
            encodings,
            pipelines,
            self.pipeline_transforms.get(),
            plan_cache.hits,
            plan_cache.misses,
            plan_cache.entries,
            self.transform.json(),
            self.transducers.json(),
            self.encodings.json(),
            self.pipelines.json(),
            self.typecheck.json(),
            self.health.json(),
            self.stats.json(),
            self.other.json(),
        )
    }
}
