//! The named-encoding registry behind `PUT /encodings/{name}`.
//!
//! Clients upload a DTD (the W3C `<!ELEMENT …>` syntax) and get back a
//! compiled [`Encoding`] they can reference on transform requests with
//! `?encoding={name}` — genuine unranked XML in, transformed unranked
//! XML out, encoded and decoded incrementally by `xtt-unranked`. The
//! built-in name `fcns` (the first-child/next-sibling encoding) is
//! always available and needs no upload.
//!
//! Entries are immutable `Arc`s behind an `RwLock`, hot-swappable like
//! the transducer registry: in-flight transforms keep the old `Arc`.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use xtt_engine::{unknown_symbol, XmlCodec};
use xtt_xml::encode::EncodingStyle;
use xtt_xml::{Dtd, Encoding, PcDataMode};

use crate::registry::escape_json;

/// One registered encoding.
pub struct EncodingEntry {
    pub name: String,
    pub encoding: Arc<Encoding>,
}

impl EncodingEntry {
    /// The JSON summary used by the list and upload responses.
    pub fn json(&self) -> String {
        let dtd = self.encoding.dtd();
        format!(
            "{{\"name\":\"{}\",\"root\":\"{}\",\"elements\":{},\"alphabet\":{},\"style\":\"{}\",\"pcdata\":\"{}\"}}",
            escape_json(&self.name),
            escape_json(dtd.root()),
            dtd.elements().len(),
            self.encoding.alphabet().len(),
            match self.encoding.style() {
                EncodingStyle::Paper => "paper",
                EncodingStyle::PathClosed => "path-closed",
            },
            match self.encoding.mode() {
                PcDataMode::Abstract => "abstract".to_owned(),
                PcDataMode::Valued(vals) => format!("valued({})", vals.len()),
            },
        )
    }
}

/// Errors raised while registering an encoding (mapped to `422`).
#[derive(Debug)]
pub struct EncodingRegistryError(pub String);

impl std::fmt::Display for EncodingRegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for EncodingRegistryError {}

/// Thread-safe name → encoding map.
#[derive(Default)]
pub struct EncodingRegistry {
    entries: RwLock<HashMap<String, Arc<EncodingEntry>>>,
}

impl EncodingRegistry {
    pub fn new() -> EncodingRegistry {
        EncodingRegistry::default()
    }

    /// Compiles and registers (or hot-swaps) an encoding from DTD text.
    /// `pcdata`: `None` = the paper's abstract pcdata; `Some(values)` =
    /// a finite text universe. `style`: `paper` (default) or
    /// `path-closed`.
    pub fn upload(
        &self,
        name: &str,
        dtd_text: &str,
        pcdata: Option<Vec<String>>,
        style: EncodingStyle,
    ) -> Result<Arc<EncodingEntry>, EncodingRegistryError> {
        if name == "fcns" {
            return Err(EncodingRegistryError(
                "the name 'fcns' is reserved for the built-in first-child/next-sibling encoding"
                    .into(),
            ));
        }
        let dtd =
            Dtd::parse(dtd_text).map_err(|e| EncodingRegistryError(format!("bad DTD: {e}")))?;
        let mode = match pcdata {
            None => PcDataMode::Abstract,
            Some(values) => PcDataMode::Valued(values),
        };
        let entry = Arc::new(EncodingEntry {
            name: name.to_owned(),
            encoding: Arc::new(Encoding::with_style(dtd, mode, style)),
        });
        self.write().insert(name.to_owned(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Resolves a `?encoding=` value to a codec: `fcns` is built in;
    /// anything else must have been uploaded.
    pub fn codec(&self, name: &str) -> Option<XmlCodec> {
        self.codec_pair(name, name)
    }

    /// Resolves an input/output encoding pair (`?encoding=` +
    /// `?output_encoding=`): with distinct DTD encodings, documents are
    /// encoded with the first and outputs decoded with the second — the
    /// shape of schema-changing transformations like the paper's
    /// `xmlflip`. `fcns` cannot be mixed with a DTD encoding.
    pub fn codec_pair(&self, input: &str, output: &str) -> Option<XmlCodec> {
        match (input == "fcns", output == "fcns") {
            (true, true) => Some(XmlCodec::fcns_bounded(unknown_symbol())),
            (true, false) | (false, true) => None,
            (false, false) => {
                let input = Arc::clone(&self.read().get(input).cloned()?.encoding);
                let output = Arc::clone(&self.read().get(output).cloned()?.encoding);
                Some(XmlCodec::dtd_pair(input, output))
            }
        }
    }

    pub fn get(&self, name: &str) -> Option<Arc<EncodingEntry>> {
        self.read().get(name).cloned()
    }

    pub fn remove(&self, name: &str) -> bool {
        self.write().remove(name).is_some()
    }

    pub fn len(&self) -> usize {
        self.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// JSON array of all entries (plus the built-in `fcns`), sorted.
    pub fn list_json(&self) -> String {
        let map = self.read();
        let mut entries: Vec<_> = map.values().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let mut items = vec!["{\"name\":\"fcns\",\"builtin\":true}".to_owned()];
        items.extend(entries.iter().map(|e| e.json()));
        format!("[{}]", items.join(","))
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<EncodingEntry>>> {
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<EncodingEntry>>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_resolve_and_remove() {
        let reg = EncodingRegistry::new();
        assert!(reg.codec("fcns").is_some(), "fcns is built in");
        assert!(reg.codec("flipdtd").is_none());
        let entry = reg
            .upload(
                "flipdtd",
                "<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >",
                None,
                EncodingStyle::Paper,
            )
            .unwrap();
        assert_eq!(entry.encoding.dtd().root(), "root");
        assert!(reg.codec("flipdtd").is_some());
        assert!(reg.list_json().contains("\"flipdtd\""));
        assert!(reg.remove("flipdtd"));
        assert!(reg.codec("flipdtd").is_none());
    }

    #[test]
    fn rejects_bad_dtds_and_reserved_names() {
        let reg = EncodingRegistry::new();
        assert!(reg
            .upload(
                "x",
                "<!ELEMENT root (unknown) >",
                None,
                EncodingStyle::Paper
            )
            .is_err());
        assert!(reg
            .upload("x", "not a dtd", None, EncodingStyle::Paper)
            .is_err());
        assert!(reg
            .upload("fcns", "<!ELEMENT a EMPTY >", None, EncodingStyle::Paper)
            .is_err());
        assert!(reg.is_empty());
    }
}
