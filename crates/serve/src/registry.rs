//! The named-transducer registry behind `/transducers`.
//!
//! Transducers arrive over the wire in two forms:
//!
//! * **term syntax** — the `Display` rendering parsed by
//!   [`xtt_transducer::parse_dtop`] (rules as text);
//! * **samples** — `input => output` pairs, one per line, run through the
//!   paper's learner `RPNIdtop` with an inferred alphabet and a universal
//!   domain automaton, so a client that has examples but no transducer
//!   can still be served.
//!
//! Entries are immutable `Arc`s behind an `RwLock`: a `PUT` to an
//! existing name *hot-swaps* it atomically — in-flight transforms keep
//! the old `Arc`, new requests pick up the new one, and the engine's
//! fingerprint LRU keeps both compiled forms warm during the swap.

use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

use xtt_automata::Dtta;
use xtt_core::{rpni_dtop, Sample};
use xtt_engine::fingerprint;
use xtt_transducer::{parse_dtop, Dtop};
use xtt_trees::{parse_tree, RankedAlphabet, Tree};

/// How a registered transducer was created.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    Uploaded,
    Learned,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Uploaded => write!(f, "uploaded"),
            Source::Learned => write!(f, "learned"),
        }
    }
}

/// One registered transducer.
pub struct Entry {
    pub name: String,
    pub dtop: Dtop,
    pub source: Source,
    pub fingerprint: u64,
}

impl Entry {
    /// The JSON summary used by the list and upload responses.
    pub fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"source\":\"{}\",\"states\":{},\"rules\":{},\"fingerprint\":\"{:016x}\"}}",
            escape_json(&self.name),
            self.source,
            self.dtop.state_count(),
            self.dtop.rule_count(),
            self.fingerprint,
        )
    }
}

/// Errors raised while registering a transducer (mapped to `422`).
#[derive(Debug)]
pub struct RegistryError(pub String);

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RegistryError {}

/// Thread-safe name → transducer map.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<HashMap<String, std::sync::Arc<Entry>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// True for names safe to appear in paths and JSON unescaped-ish.
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.len() <= 64
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.'))
    }

    /// Registers (or hot-swaps) a transducer from its term-syntax text.
    pub fn upload(&self, name: &str, text: &str) -> Result<std::sync::Arc<Entry>, RegistryError> {
        Ok(self.register(name, parse_rules(text)?, Source::Uploaded))
    }

    /// Learns a transducer from `input => output` sample lines and
    /// registers it.
    pub fn learn(&self, name: &str, body: &str) -> Result<std::sync::Arc<Entry>, RegistryError> {
        Ok(self.register(name, learn_dtop(body)?, Source::Learned))
    }

    /// Registers (or hot-swaps) an already-validated transducer. The
    /// server uses this so a transducer that fails to *compile* is never
    /// registered in the first place.
    pub fn register(&self, name: &str, dtop: Dtop, source: Source) -> std::sync::Arc<Entry> {
        let entry = std::sync::Arc::new(Entry {
            name: name.to_owned(),
            fingerprint: fingerprint(&dtop),
            dtop,
            source,
        });
        self.write()
            .insert(name.to_owned(), std::sync::Arc::clone(&entry));
        entry
    }

    pub fn get(&self, name: &str) -> Option<std::sync::Arc<Entry>> {
        self.read().get(name).cloned()
    }

    pub fn remove(&self, name: &str) -> bool {
        self.write().remove(name).is_some()
    }

    pub fn len(&self) -> usize {
        self.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// JSON array of all entries, sorted by name.
    pub fn list_json(&self) -> String {
        let map = self.read();
        let mut entries: Vec<_> = map.values().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let items: Vec<String> = entries.iter().map(|e| e.json()).collect();
        format!("[{}]", items.join(","))
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, std::sync::Arc<Entry>>> {
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, std::sync::Arc<Entry>>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Parses a term-syntax transducer body (the `Display` rendering).
pub fn parse_rules(text: &str) -> Result<Dtop, RegistryError> {
    parse_dtop(text).map_err(|e| RegistryError(format!("bad transducer: {e}")))
}

/// Learns a transducer from `input => output` sample lines with the
/// paper's `RPNIdtop` (alphabets inferred, universal domain automaton).
pub fn learn_dtop(body: &str) -> Result<Dtop, RegistryError> {
    let mut pairs: Vec<(Tree, Tree)> = Vec::new();
    for (lineno, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let (lhs, rhs) = line.split_once("=>").ok_or_else(|| {
            RegistryError(format!("line {}: expected `input => output`", lineno + 1))
        })?;
        let input = parse_tree(lhs.trim())
            .map_err(|e| RegistryError(format!("line {}: bad input: {e}", lineno + 1)))?;
        let output = parse_tree(rhs.trim())
            .map_err(|e| RegistryError(format!("line {}: bad output: {e}", lineno + 1)))?;
        pairs.push((input, output));
    }
    if pairs.is_empty() {
        return Err(RegistryError("empty sample".into()));
    }
    let input_alpha = infer_alphabet(pairs.iter().map(|(i, _)| i), "input")?;
    let output_alpha = infer_alphabet(pairs.iter().map(|(_, o)| o), "output")?;
    let sample =
        Sample::from_pairs(pairs).map_err(|e| RegistryError(format!("bad sample: {e}")))?;
    let domain = Dtta::universal(input_alpha);
    let learned = rpni_dtop(&sample, &domain, &output_alpha)
        .map_err(|e| RegistryError(format!("learning failed: {e}")))?;
    Ok(learned.dtop)
}

/// Collects every `(symbol, arity)` of the given trees into a ranked
/// alphabet, rejecting rank conflicts.
fn infer_alphabet<'a, I: Iterator<Item = &'a Tree>>(
    trees: I,
    side: &str,
) -> Result<RankedAlphabet, RegistryError> {
    let mut alpha = RankedAlphabet::new();
    for tree in trees {
        let mut stack = vec![tree];
        while let Some(t) = stack.pop() {
            match alpha.rank(t.symbol()) {
                None => {
                    alpha.add(t.symbol(), t.arity());
                }
                Some(r) if r == t.arity() => {}
                Some(r) => {
                    return Err(RegistryError(format!(
                        "{side} symbol {} used with ranks {r} and {}",
                        t.symbol(),
                        t.arity()
                    )));
                }
            }
            stack.extend(t.children());
        }
    }
    Ok(alpha)
}

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and control characters (error messages can carry
/// newlines or raw client input).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::examples;

    #[test]
    fn upload_and_hot_swap() {
        let reg = Registry::new();
        let e1 = reg
            .upload("flip", &examples::flip().dtop.to_string())
            .unwrap();
        assert_eq!(e1.source, Source::Uploaded);
        assert_eq!(reg.len(), 1);
        // Hot swap with a different transducer under the same name.
        let e2 = reg
            .upload("flip", &examples::monadic_to_binary().dtop.to_string())
            .unwrap();
        assert_ne!(e1.fingerprint, e2.fingerprint);
        assert_eq!(reg.get("flip").unwrap().fingerprint, e2.fingerprint);
        assert_eq!(reg.len(), 1);
        assert!(reg.remove("flip"));
        assert!(!reg.remove("flip"));
    }

    /// The learn endpoint runs `RPNIdtop` with a *universal* domain
    /// automaton over the inferred input alphabet, so the sample must be
    /// characteristic for a total-domain transduction — exactly what a
    /// fixture with a universal domain provides.
    #[test]
    fn learns_copier_from_its_characteristic_sample() {
        use xtt_core::characteristic_sample;
        use xtt_transducer::canonical_form;

        let fix = examples::monadic_to_binary(); // domain: universal
        let canonical = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let sample = characteristic_sample(&canonical).unwrap();
        let body: String = sample
            .pairs()
            .iter()
            .map(|(i, o)| format!("{i} => {o}\n"))
            .collect();

        let reg = Registry::new();
        let entry = reg.learn("copy", &body).unwrap();
        assert_eq!(entry.source, Source::Learned);
        let input = parse_tree("f(f(f(e)))").unwrap();
        assert_eq!(
            xtt_transducer::eval(&entry.dtop, &input),
            xtt_transducer::eval(&fix.dtop, &input)
        );
    }

    #[test]
    fn rejects_bad_uploads() {
        let reg = Registry::new();
        assert!(reg.upload("x", "not a transducer").is_err());
        assert!(
            reg.learn("x", "root(#,#) -> root(#,#)").is_err(),
            "wrong arrow"
        );
        assert!(reg.learn("x", "").is_err());
        assert!(
            reg.learn("x", "f(a) => b\nf(a,a) => b").is_err(),
            "rank conflict"
        );
        assert!(!Registry::valid_name(""));
        assert!(!Registry::valid_name("a/b"));
        assert!(Registry::valid_name("flip-v2.1_final"));
    }
}
