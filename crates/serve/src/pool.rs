//! The bounded connection queue between the acceptor and the worker pool.
//!
//! Backpressure is explicit: the queue has a fixed capacity, a full queue
//! makes [`WorkQueue::push`] fail (the acceptor answers `503` and closes),
//! and nothing in the server ever buffers an unbounded number of
//! connections. Shutdown is cooperative: once [`WorkQueue::shutdown`] is
//! called, pushes fail, pops drain what is queued, and [`WorkQueue::pop`]
//! returns `None` when the queue is dry — in-flight requests finish
//! first, which is what makes shutdown graceful.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Inner<T> {
    queue: VecDeque<T>,
    shutdown: bool,
}

/// A bounded MPMC queue with drain-on-shutdown semantics.
pub struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
    /// Items popped but not yet finished (see [`InFlightGuard`]).
    in_flight: AtomicUsize,
    /// Items parked elsewhere that *will* be re-enqueued (a yielded
    /// stream job waiting for its client to drain). Keeps [`WorkQueue::pop`]
    /// from returning `None` during a drain while a resume is pending.
    held: AtomicUsize,
}

/// Error returned by [`WorkQueue::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the load.
    Full,
    /// The queue is shutting down — stop accepting.
    ShuttingDown,
}

/// Decrements the in-flight count when the worker finishes an item.
pub struct InFlightGuard<'a, T> {
    queue: &'a WorkQueue<T>,
}

impl<T> Drop for InFlightGuard<'_, T> {
    fn drop(&mut self) {
        self.queue.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> WorkQueue<T> {
    pub fn new(capacity: usize) -> WorkQueue<T> {
        WorkQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            in_flight: AtomicUsize::new(0),
            held: AtomicUsize::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues an item, failing fast when full or shutting down. On
    /// failure the item is handed back so the caller can answer `503`.
    pub fn push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.shutdown {
            return Err((item, PushError::ShuttingDown));
        }
        if inner.queue.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.queue.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues bypassing both the capacity bound and the shutdown flag:
    /// a *resumed* job is in-flight work the server already accepted, so
    /// it must land even while the queue is draining. Pair with
    /// [`WorkQueue::hold`]/[`WorkQueue::unhold`] for the parked interval.
    pub fn push_unbounded(&self, item: T) {
        let mut inner = self.lock();
        inner.queue.push_back(item);
        drop(inner);
        self.ready.notify_one();
    }

    /// Marks one item as parked-for-resume (see [`WorkQueue::push_unbounded`]).
    pub fn hold(&self) {
        self.held.fetch_add(1, Ordering::SeqCst);
    }

    /// Releases one parked item — call *after* re-enqueueing it (or after
    /// deciding it will never come back).
    pub fn unhold(&self) {
        self.held.fetch_sub(1, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Blocks for the next item. Returns `None` only when the queue is
    /// shutting down *and* fully drained. The returned guard keeps the
    /// item counted as in-flight until the worker drops it.
    pub fn pop(&self) -> Option<(T, InFlightGuard<'_, T>)> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                // Count in-flight before releasing the lock so the drain
                // check (empty && none in flight) can never miss it.
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                return Some((item, InFlightGuard { queue: self }));
            }
            if inner.shutdown
                && self.in_flight.load(Ordering::SeqCst) == 0
                && self.held.load(Ordering::SeqCst) == 0
            {
                // Nothing queued, nothing running that could yield, and
                // nothing parked awaiting resume: the drain is complete.
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Flips the shutdown flag and wakes every waiting worker.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    pub fn is_shutting_down(&self) -> bool {
        self.lock().shutdown
    }

    /// True once the queue is empty and no popped item is still being
    /// processed or parked for resume — the graceful-drain condition.
    pub fn drained(&self) -> bool {
        let inner = self.lock();
        inner.queue.is_empty()
            && self.in_flight.load(Ordering::SeqCst) == 0
            && self.held.load(Ordering::SeqCst) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_fails_fast_when_full() {
        let q: WorkQueue<u32> = WorkQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err((3, PushError::Full)));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shutdown_drains_queued_items_then_returns_none() {
        let q: WorkQueue<u32> = WorkQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.shutdown();
        assert_eq!(q.push(3), Err((3, PushError::ShuttingDown)));
        let (a, ga) = q.pop().unwrap();
        assert!(!q.drained(), "item a is in flight");
        drop(ga);
        let (b, gb) = q.pop().unwrap();
        drop(gb);
        assert_eq!((a, b), (1, 2));
        assert!(q.pop().is_none());
        assert!(q.drained());
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = std::sync::Arc::new(WorkQueue::<u32>::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().map(|(v, _g)| v));
        std::thread::sleep(Duration::from_millis(30));
        q.push(7).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
