//! Dependency-free SIGTERM/SIGINT hooks (the binary's graceful-shutdown
//! trigger). `std` has no signal API and the workspace vendors no `libc`
//! crate, but `std` already links the platform libc, so the two symbols
//! we need are declared here directly. The handler only stores into an
//! atomic — the strictest async-signal-safety there is.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the libc that `std` already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (no-op off unix). Call once from
/// the binary before entering the accept loop.
pub fn install() {
    imp::install();
}

/// True once a hooked signal has fired. The server's accept loop polls
/// this; `POST /shutdown` and `ServeHandle::shutdown` bypass it and flip
/// the per-server queue flag directly.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}
