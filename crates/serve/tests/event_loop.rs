//! Event-loop-specific integration tests: the properties the epoll
//! front end was built for. Idle keep-alive connections must cost no
//! thread (an army of them cannot starve fresh requests), a slow
//! streamed reader must yield its worker at a document boundary instead
//! of pinning it, and the SIGTERM drain of the `xtt-serve` binary must
//! survive the rebuild onto the readiness loop.
#![cfg(unix)]

use std::io::Write as _;
use std::time::{Duration, Instant};

use xtt_engine::EngineOptions;
use xtt_serve::{ServeClient, ServeOptions, Server};
use xtt_transducer::examples;

fn boot(
    opts: ServeOptions,
) -> (
    ServeClient,
    std::thread::JoinHandle<std::io::Result<()>>,
    xtt_serve::ServeHandle,
) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr)
        .unwrap()
        .with_timeout(Duration::from_secs(10));
    assert!(client.wait_ready(Duration::from_secs(5)), "server not up");
    (client, runner, handle)
}

/// Pulls an integer counter out of the `/stats` JSON.
fn stat_u64(json: &str, key: &str) -> u64 {
    json.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no {key} in {json}"))
}

/// Hundreds of idle keep-alive connections hold epoll registrations, not
/// threads: with only 4 workers, a fresh request still answers promptly,
/// and the `event_loop` stats block accounts for the idle army.
#[test]
fn idle_keep_alive_army_does_not_starve_fresh_requests() {
    const ARMY: usize = 500;
    let opts = ServeOptions {
        workers: 4,
        queue_capacity: 64,
        // The army must stay parked for the whole test.
        keep_alive_timeout: Duration::from_secs(60),
        engine: EngineOptions {
            workers: 2,
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    };
    let (client, runner, _handle) = boot(opts);

    // Each soldier makes one real request (so it counts as kept-alive,
    // not merely connected) and then goes silent, holding the socket.
    let mut army = Vec::with_capacity(ARMY);
    for i in 0..ARMY {
        let mut conn = std::net::TcpStream::connect(client.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let resp = xtt_serve::http::read_response(&mut conn)
            .unwrap_or_else(|e| panic!("soldier {i}: {e}"));
        assert_eq!(resp.status, 200, "soldier {i}");
        army.push(conn);
    }

    // Fresh requests answer at full speed in front of the parked army.
    let started = Instant::now();
    for _ in 0..10 {
        let resp = client.request("GET", "/healthz", "").unwrap();
        assert_eq!(resp.status, 200);
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "10 fresh requests took {elapsed:?} behind {ARMY} idle connections"
    );

    // The gauges see the army (updated once per tick; give it a moment).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let json = client.stats().unwrap().body_str();
        let open = stat_u64(&json, "connections_open");
        let parked = stat_u64(&json, "parked_idle");
        if open >= ARMY as u64 && parked >= ARMY as u64 {
            assert!(stat_u64(&json, "worker_handoffs") >= ARMY as u64, "{json}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauges never saw the army: open={open} parked={parked}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    drop(army);
    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// A streamed response to a client that stops reading yields its worker
/// at a document boundary (counted in `event_loop.slow_client_yields`)
/// instead of pinning it — with a single worker, the server stays
/// responsive while the stream is parked — and the resumed response is
/// byte-identical to the batch answer.
#[test]
fn slow_stream_reader_yields_its_worker_and_resumes_correctly() {
    let opts = ServeOptions {
        workers: 1,
        queue_capacity: 64,
        // Small buffer so a few documents back it up; long deadline so
        // the parked connection survives our deliberate stall.
        stream_buffer: 16 * 1024,
        stream_write_deadline: Duration::from_secs(30),
        engine: EngineOptions {
            workers: 2,
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    };
    let (client, runner, _handle) = boot(opts);
    client
        .put_transducer("copy", &examples::monadic_to_binary().dtop.to_string())
        .unwrap();

    // 32 documents of ~3KB output each: far past the 16KB buffer in
    // total, but each small enough to end at a document boundary.
    let mut deep = String::from("e");
    for _ in 0..9 {
        deep = format!("f({deep})");
    }
    let docs: Vec<&str> = std::iter::repeat(deep.as_str()).take(32).collect();
    let (batch_resp, expected) = client.transform("copy", "", &docs).unwrap();
    assert_eq!(batch_resp.status, 200);

    let body = format!("{}\n", docs.join("\n"));
    let mut raw = std::net::TcpStream::connect(client.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let head = format!(
        "POST /transform/copy?mode=stream HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    raw.write_all(head.as_bytes()).unwrap();
    raw.write_all(body.as_bytes()).unwrap();
    raw.flush().unwrap();

    // Stall without reading: the single worker must yield — these stats
    // requests only get answered at all if it did.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let json = client.stats().unwrap().body_str();
        if stat_u64(&json, "slow_client_yields") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stream never yielded its worker: {json}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Start reading: the parked job resumes and completes, and the
    // streamed bytes match the batch answer document for document.
    let resp = xtt_serve::http::read_response(&mut raw).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-xtt-streamed"), Some("1"));
    let streamed_body = resp.body_str();
    let streamed: Vec<&str> = streamed_body.lines().collect();
    assert_eq!(streamed.len(), expected.len());
    for (i, (got, want)) in streamed.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "document {i} diverged after the yield");
    }

    let json = client.stats().unwrap().body_str();
    assert_eq!(stat_u64(&json, "write_timeouts"), 0, "{json}");

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// SIGTERM regression under the event loop: the binary drains in-flight
/// work, says goodbye on stderr, and exits 0.
#[test]
fn sigterm_drains_the_binary_gracefully() {
    use std::io::{BufRead, BufReader, Read};
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_xtt-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--preload",
            "flip",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xtt-serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in banner")
        .to_owned();

    let client = ServeClient::new(addr.as_str())
        .unwrap()
        .with_timeout(Duration::from_secs(10));
    assert!(client.wait_ready(Duration::from_secs(5)), "binary not up");

    // A slow-ish batch in flight when the signal lands.
    let worker = {
        let docs: Vec<String> = (0..2000)
            .map(|i| examples::flip_input(i % 5, i % 3).to_string())
            .collect();
        let client = ServeClient::new(addr.as_str())
            .unwrap()
            .with_timeout(Duration::from_secs(10));
        std::thread::spawn(move || {
            let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            client.transform("flip", "", &doc_refs)
        })
    };
    std::thread::sleep(Duration::from_millis(30));

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -TERM failed");

    // In-flight work either drains to a complete answer or was turned
    // away whole — never a torn response.
    match worker.join().unwrap() {
        Ok((resp, lines)) if resp.status == 200 => assert_eq!(lines.len(), 2000),
        Ok((resp, _)) => assert_eq!(resp.status, 503),
        Err(_) => {}
    }

    let deadline = Instant::now() + Duration::from_secs(15);
    let exit = loop {
        if let Some(exit) = child.try_wait().unwrap() {
            break exit;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("binary did not exit after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(exit.success(), "exit status {exit:?}");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(stderr.contains("drained, bye"), "stderr: {stderr}");
}
