//! Integration tests for the pipeline subsystem over a real socket:
//! register transducers, compose them into a named pipeline, transform
//! through it in every evaluation mode under both execution strategies
//! (byte-identical results), and exercise the 422 paths, `/slow`, and
//! the pipeline metrics.

use std::time::Duration;

use xtt_engine::EngineOptions;
use xtt_serve::{ServeClient, ServeOptions, Server};
use xtt_transducer::{examples, identity};

fn boot(
    opts: ServeOptions,
) -> (
    ServeClient,
    std::thread::JoinHandle<std::io::Result<()>>,
    xtt_serve::ServeHandle,
) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr)
        .unwrap()
        .with_timeout(Duration::from_secs(10));
    assert!(client.wait_ready(Duration::from_secs(5)), "server not up");
    (client, runner, handle)
}

fn small_opts() -> ServeOptions {
    ServeOptions {
        workers: 4,
        queue_capacity: 64,
        // Every request is "slow" at a 1ns threshold, so the /slow ring
        // fills deterministically.
        slow_request: Duration::from_nanos(1),
        engine: EngineOptions {
            workers: 2,
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    }
}

#[test]
fn pipeline_register_transform_all_modes_and_teardown() {
    let (client, runner, handle) = boot(small_opts());

    let flip = examples::flip().dtop;
    let resp = client.put_transducer("flip", &flip.to_string()).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    let resp = client
        .put_transducer("id", &identity(flip.output()).to_string())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());

    // Register flip ∘ id as a named pipeline.
    let resp = client
        .request("PUT", "/pipelines/flipid", "flip,id\n")
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    let body = resp.body_str();
    assert!(body.contains("\"name\":\"flipid\""), "{body}");
    assert!(body.contains("\"stages\":[\"flip\",\"id\"]"), "{body}");
    assert!(
        body.contains("\"strategy\":\"composed\"") || body.contains("\"strategy\":\"chained\""),
        "{body}"
    );

    // Inspect and list.
    let resp = client.request("GET", "/pipelines/flipid", "").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.request("GET", "/pipelines", "").unwrap();
    assert!(resp.body_str().contains("\"flipid\""));
    let resp = client.request("GET", "/pipelines/nope", "").unwrap();
    assert_eq!(resp.status, 404);

    // Transform through the pipeline in all four modes; results must be
    // byte-identical across modes AND across forced strategies. Doc 2 is
    // outside the composed domain — rejected by the shared guard at the
    // same position everywhere.
    let docs = [
        examples::flip_input(2, 3).to_string(),
        examples::flip_input(0, 0).to_string(),
        "root(b(#,#),#)".to_owned(),
        examples::flip_input(4, 1).to_string(),
    ];
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let mut outputs: Vec<(String, Vec<String>)> = Vec::new();
    for mode in ["tree", "stream", "dag", "walk"] {
        for strategy in ["auto", "composed", "chained"] {
            let query = format!("?mode={mode}&strategy={strategy}");
            let (resp, lines) = client.transform("flipid", &query, &doc_refs).unwrap();
            // mode=stream commits the status before evaluating; batch
            // modes answer 207 on partial failure.
            assert!(
                resp.status == 200 || resp.status == 207,
                "{mode}/{strategy}: {}",
                resp.status
            );
            assert_eq!(lines.len(), 4, "{mode}/{strategy}: {lines:?}");
            outputs.push((query, lines));
        }
    }
    let (ref baseline_query, ref baseline) = outputs[0];
    for (query, lines) in &outputs[1..] {
        assert_eq!(lines, baseline, "{query} disagrees with {baseline_query}");
    }
    assert!(
        baseline[2].starts_with("!error: type error at"),
        "guard rejection names the violating node: {}",
        baseline[2]
    );

    // The slow ring captured pipeline requests (1ns threshold).
    let resp = client.request("GET", "/slow", "").unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.body_str();
    assert!(body.contains("\"recent\":["), "{body}");
    assert!(body.contains("target=flipid"), "{body}");

    // Stats and metrics carry the pipeline counters and labels.
    let resp = client.stats().unwrap();
    let stats = resp.body_str();
    assert!(stats.contains("\"pipelines\":{\"registered\":1"), "{stats}");
    let resp = client.request("GET", "/metrics", "").unwrap();
    let metrics = resp.body_str();
    assert!(metrics.contains("xtt_pipelines_registered 1"), "{metrics}");
    assert!(
        metrics
            .contains("xtt_transform_requests_by_target_total{kind=\"pipeline\",name=\"flipid\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("xtt_pipeline_stage_events_count{stage=\"0\"}"),
        "{metrics}"
    );

    // Unregister: transforms stop resolving.
    let resp = client.request("DELETE", "/pipelines/flipid", "").unwrap();
    assert_eq!(resp.status, 204);
    let (resp, _) = client.transform("flipid", "", &doc_refs).unwrap();
    assert_eq!(resp.status, 404);

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn pipeline_registration_error_paths() {
    let (client, runner, handle) = boot(small_opts());

    let flip = examples::flip().dtop;
    client.put_transducer("flip", &flip.to_string()).unwrap();

    // Undefined stages.
    let resp = client
        .request("PUT", "/pipelines/p1", "flip,nosuch,other\n")
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("undefined stages: nosuch, other"),
        "{}",
        resp.body_str()
    );

    // Empty stage list.
    let resp = client.request("PUT", "/pipelines/p1", "\n").unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body_str());

    // Empty composition: stage 2 only accepts `a`-rooted inputs, which
    // flip never emits. The `dead` state keeps every alphabet symbol
    // mentioned in some rule so the upload round-trip (which rebuilds the
    // alphabet from the rule text) preserves flip's output alphabet — the
    // miss is then an in-alphabet domain shrink, not a compose error.
    let sym = |n: &str| {
        *flip
            .output()
            .symbols()
            .iter()
            .find(|s| s.name() == n)
            .unwrap()
    };
    let leaf = sym("#");
    let mut b = xtt_transducer::Dtop::builder(flip.output().clone(), flip.output().clone());
    let q = b.add_state("q");
    let dead = b.add_state("dead");
    b.set_axiom(xtt_transducer::Rhs::Call { state: q, child: 0 });
    b.add_rule(q, sym("a"), xtt_transducer::Rhs::Out(leaf, vec![]))
        .unwrap();
    b.add_rule(dead, sym("root"), xtt_transducer::Rhs::Out(leaf, vec![]))
        .unwrap();
    b.add_rule(dead, sym("b"), xtt_transducer::Rhs::Out(leaf, vec![]))
        .unwrap();
    let only_a = b.build().unwrap();
    let resp = client
        .put_transducer("only_a", &only_a.to_string())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    let resp = client
        .request("PUT", "/pipelines/p1", "flip,only_a\n")
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("empty domain"),
        "{}",
        resp.body_str()
    );

    // Bad names and unknown schema encodings.
    let resp = client
        .request("PUT", "/pipelines/bad%20name", "flip\n")
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let resp = client
        .request("PUT", "/pipelines/p2?schema=missing", "flip\n")
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body_str());
    let resp = client
        .request("PUT", "/pipelines/p2?schema=fcns", "flip\n")
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body_str());

    // Wrong method on the pipelines namespace is 405, not 404.
    let resp = client.request("PATCH", "/pipelines/p1", "").unwrap();
    assert_eq!(resp.status, 405);

    handle.shutdown();
    runner.join().unwrap().unwrap();
}
