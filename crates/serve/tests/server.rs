//! Integration tests driving a real `xtt-serve` over a socket with
//! [`ServeClient`] — including the acceptance scenario: upload a
//! transducer, send a 100-document batch containing malformed documents,
//! get per-document positional results plus correct `/stats` counters,
//! and shut down gracefully with in-flight work drained.

use std::time::Duration;

use xtt_engine::EngineOptions;
use xtt_serve::{ServeClient, ServeOptions, Server};
use xtt_transducer::examples;

/// Boots a server on an ephemeral port; returns the client, the run-loop
/// thread handle, and the serve handle.
fn boot(
    opts: ServeOptions,
) -> (
    ServeClient,
    std::thread::JoinHandle<std::io::Result<()>>,
    xtt_serve::ServeHandle,
) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr)
        .unwrap()
        .with_timeout(Duration::from_secs(10));
    assert!(client.wait_ready(Duration::from_secs(5)), "server not up");
    (client, runner, handle)
}

fn small_opts() -> ServeOptions {
    ServeOptions {
        workers: 4,
        queue_capacity: 64,
        engine: EngineOptions {
            workers: 2,
            // Inherit the serve defaults (notably max_output_nodes) —
            // `EngineOptions::default()` is the *library* default, which
            // is unbounded.
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    }
}

#[test]
fn acceptance_upload_batch_stats_graceful_shutdown() {
    let (client, runner, _handle) = boot(small_opts());

    // Upload the flip transducer in term syntax.
    let resp = client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    let body = resp.body_str();
    assert!(body.contains("\"name\":\"flip\""), "{body}");
    assert!(body.contains("\"states\":4"), "{body}");

    // A 100-document batch with two malformed documents and one
    // out-of-domain document at known positions.
    let mut docs: Vec<String> = (0..100)
        .map(|i| examples::flip_input(i % 5, i % 3).to_string())
        .collect();
    docs[17] = "root((".to_owned(); // malformed
    docs[42] = "root(b(#,#),#)".to_owned(); // outside the domain
    docs[93] = "not a term (".to_owned(); // malformed
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let (resp, lines) = client.transform("flip", "", &doc_refs).unwrap();
    assert_eq!(resp.status, 207, "partial success is multi-status");
    assert_eq!(resp.header("x-xtt-docs"), Some("100"));
    assert_eq!(resp.header("x-xtt-failed"), Some("3"));
    assert_eq!(lines.len(), 100, "one result line per document");
    for (i, line) in lines.iter().enumerate() {
        match i {
            17 | 93 => assert!(line.starts_with("!error: parse error"), "doc {i}: {line}"),
            42 => assert!(
                line.contains("outside the transduction domain"),
                "doc {i}: {line}"
            ),
            _ => {
                let expected = xtt_transducer::eval(
                    &examples::flip().dtop,
                    &xtt_trees::parse_tree(&docs[i]).unwrap(),
                )
                .unwrap()
                .to_string();
                assert_eq!(line, &expected, "doc {i}");
            }
        }
    }

    // Stats reflect the traffic: the upload compiled once (miss), the
    // transform hit the fingerprint LRU, and the document counters add up.
    let stats = client.stats().unwrap();
    assert_eq!(stats.status, 200);
    let json = stats.body_str();
    assert!(json.contains("\"cache_misses\":1"), "{json}");
    assert!(json.contains("\"cache_hits\":1"), "{json}");
    assert!(
        json.contains("\"documents\":{\"total\":100,\"errors\":3,\"type_errors\":0}"),
        "{json}"
    );
    assert!(
        json.contains("\"validation\":{\"docs_validated\":0,\"docs_rejected_pre_eval\":0"),
        "{json}"
    );
    assert!(json.contains("\"transducers\":1"), "{json}");

    // Graceful shutdown: the server drains and the run loop exits Ok.
    let resp = client.shutdown().unwrap();
    assert_eq!(resp.status, 200);
    runner.join().unwrap().unwrap();
    assert!(!client.healthz(), "server still answering after shutdown");
}

/// The typecheck surface over the wire: `POST /typecheck/{name}` decides
/// output types (ok and counterexample both), `?validate=1` turns
/// out-of-domain documents into positional type errors whose lines carry
/// the violation path, and `/stats` exposes the new counters.
#[test]
fn typecheck_and_validation_over_the_wire() {
    let (client, runner, _handle) = boot(small_opts());
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();

    // flip's true output type: root(b-list, a-list) → well-typed.
    let good_schema = "dtta (initial s)\n\
         s(root(x1,x2)) -> root(<bl,x1>,<al,x2>)\n\
         bl(b(x1,x2)) -> b(<nil,x1>,<bl,x2>)\n\
         bl(#) -> #\n\
         al(a(x1,x2)) -> a(<nil,x1>,<al,x2>)\n\
         al(#) -> #\n\
         nil(#) -> #\n";
    let resp = client.typecheck("flip", good_schema).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("\"ok\":true"),
        "{}",
        resp.body_str()
    );

    // Demanding the *input* shape fails with a concrete counterexample.
    let wrong_schema = good_schema.replace("root(<bl,x1>,<al,x2>)", "root(<al,x1>,<bl,x2>)");
    let resp = client.typecheck("flip", &wrong_schema).unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.body_str().to_owned();
    assert!(body.contains("\"ok\":false"), "{body}");
    assert!(body.contains("\"counterexample\":"), "{body}");

    // Bad schema → 422; unknown transducer → 404.
    assert_eq!(client.typecheck("flip", "not a dtta").unwrap().status, 422);
    assert_eq!(client.typecheck("nope", good_schema).unwrap().status, 404);

    // Guarded batch transform: the out-of-domain document answers with a
    // typed, positional error line naming the first violating node; the
    // same document unguarded is an opaque domain error.
    for mode in ["tree", "stream", "dag", "walk"] {
        let (resp, lines) = client
            .transform(
                "flip",
                &format!("?mode={mode}&validate=1"),
                &["root(a(#,#),b(#,#))", "root(a(#,b(#,#)),b(#,#))"],
            )
            .unwrap();
        // mode=stream commits the status before evaluating; errors are
        // in-band only.
        let expected = if mode == "stream" { 200 } else { 207 };
        assert_eq!(resp.status, expected, "mode {mode}");
        assert_eq!(lines[0], "root(b(#,#),a(#,#))", "mode {mode}");
        assert_eq!(
            lines[1], "!error: type error at 1.2: symbol b not allowed in state {q4}",
            "mode {mode}"
        );
    }
    let (_, lines) = client
        .transform("flip", "?validate=0", &["root(a(#,b(#,#)),b(#,#))"])
        .unwrap();
    assert_eq!(lines[0], "!error: input outside the transduction domain");
    assert_eq!(
        client
            .transform("flip", "?validate=maybe", &["root(#,#)"])
            .unwrap()
            .0
            .status,
        400
    );

    // Counters: 2 typecheck runs (the 422/404 never ran), 1 ill-typed;
    // 8 documents validated, 4 rejected pre-eval.
    let stats = client.stats().unwrap();
    let json = stats.body_str();
    assert!(
        json.contains("\"typecheck\":{\"runs\":2,\"ill_typed\":1}"),
        "{json}"
    );
    assert!(
        json.contains("\"docs_validated\":8,\"docs_rejected_pre_eval\":4,\"guards_compiled\":1"),
        "{json}"
    );
    assert!(json.contains("\"type_errors\":4"), "{json}");

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

#[test]
fn all_modes_agree_over_the_wire() {
    let (client, runner, _handle) = boot(small_opts());
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    let docs: Vec<String> = (0..20)
        .map(|i| examples::flip_input(i % 4 + 1, i % 3).to_string())
        .collect();
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let mut outputs = Vec::new();
    for mode in ["tree", "stream", "dag", "walk"] {
        let (resp, lines) = client
            .transform("flip", &format!("?mode={mode}"), &doc_refs)
            .unwrap();
        assert_eq!(resp.status, 200, "mode {mode}");
        outputs.push(lines);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
    assert_eq!(outputs[0], outputs[3]);
    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

#[test]
fn xml_format_and_learning_over_the_wire() {
    use xtt_core::characteristic_sample;
    use xtt_transducer::canonical_form;

    let (client, runner, _handle) = boot(small_opts());

    // Learn the monadic→binary copier from its characteristic sample.
    let fix = examples::monadic_to_binary();
    let canonical = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
    let sample: String = characteristic_sample(&canonical)
        .unwrap()
        .pairs()
        .iter()
        .map(|(i, o)| format!("{i} => {o}\n"))
        .collect();
    let resp = client.learn_transducer("copy", &sample).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    assert!(resp.body_str().contains("\"source\":\"learned\""));
    let (_, lines) = client.transform("copy", "", &["f(f(e))"]).unwrap();
    assert_eq!(lines, vec!["g(g(e,e),g(e,e))"]);

    // The output bound protects the server from copying blow-ups: a
    // ~120-byte document whose output would be 2^41 nodes is rejected
    // positionally; its neighbors still transform.
    let mut deep = String::from("e");
    for _ in 0..40 {
        deep = format!("f({deep})");
    }
    let (resp, lines) = client.transform("copy", "", &["f(e)", &deep, "e"]).unwrap();
    assert_eq!(resp.status, 207);
    assert_eq!(lines[0], "g(e,e)");
    assert!(
        lines[1].starts_with("!error: output too large"),
        "{}",
        lines[1]
    );
    assert_eq!(lines[2], "e");

    // XML round-trip through the flip transducer, streaming mode.
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    let (resp, lines) = client
        .transform(
            "flip",
            "?format=xml&mode=stream",
            &["<root><a># #</a><b># #</b></root>"],
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(lines, vec!["<root><b># #</b><a># #</a></root>"]);

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

#[test]
fn registry_endpoints_and_errors() {
    let (client, runner, _handle) = boot(small_opts());

    // Unknown transducer → 404.
    let (resp, _) = client.transform("nope", "", &["e"]).unwrap();
    assert_eq!(resp.status, 404);
    // A slash in the name (raw or percent-encoded) is extra path
    // segments → 405; an invalid character in a single segment → 400;
    // bad body → 422; bad mode → 400.
    let resp = client.put_transducer("a/b", "ax = e").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client
        .request("PUT", "/transducers/bad%20name", "ax = e")
        .unwrap();
    assert_eq!(resp.status, 400);
    let resp = client.put_transducer("x", "not a transducer").unwrap();
    assert_eq!(resp.status, 422);
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    let (resp, _) = client
        .transform("flip", "?mode=warp", &["root(#,#)"])
        .unwrap();
    assert_eq!(resp.status, 400);

    // List + get + delete.
    let resp = client.request("GET", "/transducers", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().starts_with('['), "{}", resp.body_str());
    let resp = client.request("GET", "/transducers/flip", "").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.request("DELETE", "/transducers/flip", "").unwrap();
    assert_eq!(resp.status, 204);
    let resp = client.request("GET", "/transducers/flip", "").unwrap();
    assert_eq!(resp.status, 404);
    // Method confusion → 405; unknown path → 404.
    let resp = client.request("POST", "/healthz", "").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.request("GET", "/nonsense", "").unwrap();
    assert_eq!(resp.status, 404);

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// Keep-alive: one TCP connection serves many requests, `/stats` counts
/// the reuse, a `Connection: close` request ends the session, and the
/// idle timeout reaps silent connections.
#[test]
fn keep_alive_reuses_connections() {
    let (client, runner, _handle) = boot(ServeOptions {
        keep_alive_timeout: Duration::from_millis(300),
        ..small_opts()
    });
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();

    let mut session = client.session().unwrap();
    for i in 0..5 {
        let resp = session
            .request("POST", "/transform/flip", "root(a(#,#),b(#,#))\n")
            .unwrap_or_else(|e| panic!("request {i} on the shared connection: {e}"));
        assert_eq!(resp.status, 200, "request {i}");
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert_eq!(resp.body_str(), "root(b(#,#),a(#,#))\n");
    }
    let resp = session.request("GET", "/stats", "").unwrap();
    let json = resp.body_str();
    assert!(json.contains("\"reused_requests\":"), "{json}");
    // This session alone reused the connection at least 5 times.
    let reused: u64 = json
        .split("\"reused_requests\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(reused >= 5, "reused_requests = {reused}");

    // Connection: close is honored — the server answers, then closes.
    let resp = session.request_close("GET", "/healthz", "").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(
        session.request("GET", "/healthz", "").is_err(),
        "connection must be closed after Connection: close"
    );

    // Idle sessions are reaped after the keep-alive timeout.
    let mut idle = client.session().unwrap();
    idle.request("GET", "/healthz", "").unwrap();
    std::thread::sleep(Duration::from_millis(700));
    assert!(
        idle.request("GET", "/healthz", "").is_err(),
        "idle connection must be closed by the server"
    );
    let json = client.stats().unwrap().body_str();
    assert!(json.contains("\"closed_idle\":1"), "{json}");

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// The unranked pipeline over the wire: upload a DTD as a named
/// encoding, transform genuine unranked XML through it (the paper's
/// xmlflip, wrong-DTD documents failing positionally), and use the
/// built-in fcns encoding without any upload.
#[test]
fn encodings_over_the_wire() {
    use xtt_xml::xmlflip;
    let (client, runner, _handle) = boot(small_opts());

    // Upload the xmlflip transducer (over the DTD-encoding alphabet).
    let resp = client
        .put_transducer("xmlflip", &xmlflip::target_dtop().to_string())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());

    // Bad DTD → 422, nothing registered; good DTD → 201.
    let resp = client
        .request("PUT", "/encodings/flipdtd", "<!ELEMENT root (undeclared) >")
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body_str());
    let resp = client.request("GET", "/encodings/flipdtd", "").unwrap();
    assert_eq!(resp.status, 404);
    let dtd = "<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >";
    let resp = client.request("PUT", "/encodings/flipdtd", dtd).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    assert!(resp.body_str().contains("\"root\":\"root\""));

    // xmlflip changes the schema: inputs match root → (a*,b*), outputs
    // root → (b*,a*) — so register the output DTD too and decode with
    // `?output_encoding=`.
    let out_dtd = "<!ELEMENT root (b*,a*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >";
    let resp = client
        .request("PUT", "/encodings/flipout", out_dtd)
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    for mode in ["tree", "stream", "dag", "walk"] {
        let (resp, lines) = client
            .transform(
                "xmlflip",
                &format!("?encoding=flipdtd&output_encoding=flipout&mode={mode}"),
                &[
                    "<root><a/><a/><b/></root>",
                    "<root><b/><a/></root>",
                    "<root/>",
                ],
            )
            .unwrap();
        // Streamed responses commit their status before any document
        // runs; failures stay positional (`!error:` lines).
        let expected = if mode == "stream" { 200 } else { 207 };
        assert_eq!(resp.status, expected, "mode {mode}: {lines:?}");
        assert_eq!(lines[0], "<root><b/><a/><a/></root>", "mode {mode}");
        assert!(
            lines[1].starts_with("!error: encoding error"),
            "mode {mode}: {}",
            lines[1]
        );
        assert_eq!(lines[2], "<root/>", "mode {mode}");
    }

    // The built-in fcns encoding needs no upload: a small pruning
    // transducer over the fc/ns alphabet, uploaded in term syntax.
    let prune = "ax = <q0,x0>\n\
                 q0(root(x1,x2)) -> root(<q,x1>,<q,x2>)\n\
                 q(a(x1,x2)) -> a(<q,x1>,<q,x2>)\n\
                 q(b(x1,x2)) -> <q,x2>\n\
                 q(#) -> #\n";
    let resp = client.put_transducer("prune", prune).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_str());
    let (resp, lines) = client
        .transform(
            "prune",
            "?encoding=fcns&mode=stream",
            &["<root><a><b><a/></b><a/></a><b/></root>"],
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{lines:?}");
    assert_eq!(lines, vec!["<root><a><a/></a></root>"]);

    // Unknown encoding → 400; list shows fcns + the upload; delete works.
    let (resp, _) = client
        .transform("prune", "?encoding=nope", &["<root/>"])
        .unwrap();
    assert_eq!(resp.status, 400);
    let resp = client.request("GET", "/encodings", "").unwrap();
    let body = resp.body_str();
    assert!(body.contains("\"fcns\""), "{body}");
    assert!(body.contains("\"flipdtd\""), "{body}");
    let json = client.stats().unwrap().body_str();
    assert!(json.contains("\"encodings\":2"), "{json}");
    let resp = client.request("DELETE", "/encodings/flipdtd", "").unwrap();
    assert_eq!(resp.status, 204);

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// Shutdown with queued work: everything accepted before the shutdown is
/// still answered (drain), nothing is lost, and the run loop exits 0.
#[test]
fn shutdown_drains_concurrent_requests() {
    let (client, runner, handle) = boot(ServeOptions {
        workers: 2,
        ..small_opts()
    });
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    // Big enough batches that the transforms are still running when the
    // shutdown lands.
    let docs: Vec<String> = (0..2000)
        .map(|i| examples::flip_input(i % 6, i % 4).to_string())
        .collect();
    let clients: Vec<_> = (0..8).map(|_| client.clone()).collect();
    let threads: Vec<_> = clients
        .into_iter()
        .map(|c| {
            let docs = docs.clone();
            std::thread::spawn(move || {
                let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
                c.transform("flip", "", &doc_refs)
            })
        })
        .collect();
    // Trigger shutdown while transforms are in flight.
    std::thread::sleep(Duration::from_millis(30));
    handle.shutdown();
    let mut answered = 0;
    for t in threads {
        // A request is either fully answered (accepted before shutdown,
        // drained to completion) or turned away at accept time (503 /
        // connection refused) — never half-answered.
        match t.join().unwrap() {
            Ok((resp, lines)) if resp.status == 200 => {
                assert_eq!(lines.len(), docs.len(), "drained response is complete");
                answered += 1;
            }
            Ok((resp, _)) => assert_eq!(resp.status, 503, "unexpected partial answer"),
            Err(_) => {} // connection refused after the acceptor exited
        }
    }
    runner.join().unwrap().unwrap();
    assert!(answered >= 1, "drain lost every in-flight request");
}

/// Satellite coverage for streamed *uploads*: chunked request bodies are
/// decoded on the transform endpoint (positionally identical to a
/// Content-Length batch) and the decoded size is capped at `max_body`.
#[test]
fn chunked_request_bodies_over_the_wire() {
    let (client, runner, _handle) = boot(small_opts());
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    let resp = client
        .request_chunked(
            "POST",
            "/transform/flip",
            &["root(a(#,#)", ",b(#,#))\n", "root((\n"],
        )
        .unwrap();
    assert_eq!(resp.status, 207, "{}", resp.body_str());
    let body = resp.body_str();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines[0], "root(b(#,#),a(#,#))");
    assert!(lines[1].starts_with("!error: parse error"), "{}", lines[1]);

    // The decoded-size cap answers 413 like an oversized Content-Length.
    let opts = ServeOptions {
        max_body: 64,
        ..small_opts()
    };
    let (small_client, small_runner, _h) = boot(opts);
    let big = "x".repeat(256);
    let resp = small_client
        .request_chunked("POST", "/transform/flip", &[&big])
        .unwrap();
    assert_eq!(resp.status, 413, "{}", resp.body_str());
    small_client.shutdown().unwrap();
    small_runner.join().unwrap().unwrap();

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// The tentpole ordering property over the wire: a `mode=stream`
/// response is fully delivered while the *next* pipelined request's
/// large body has not even been sent — the first chunk cannot be waiting
/// on batch completion or request-body reads.
#[test]
fn streamed_response_arrives_before_pipelined_body_is_read() {
    use std::io::Write;

    let (client, runner, _handle) = boot(small_opts());
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();

    let mut raw = std::net::TcpStream::connect(client.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let first_body = "root(a(#,#),b(#,#))\n";
    // A big pipelined follow-up batch, declared but only partially sent.
    let second_body: String = "root(a(#,#),b(#,#))\n".repeat(4096);
    let first = format!(
        "POST /transform/flip?mode=stream HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{first_body}",
        first_body.len()
    );
    let second_head = format!(
        "POST /transform/flip HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        second_body.len()
    );
    raw.write_all(first.as_bytes()).unwrap();
    raw.write_all(second_head.as_bytes()).unwrap();
    raw.write_all(&second_body.as_bytes()[..8]).unwrap();
    raw.flush().unwrap();

    // The streamed response completes while the server is still waiting
    // on the rest of the pipelined body we have not sent.
    let mut reader = raw.try_clone().unwrap();
    let resp = xtt_serve::http::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-xtt-streamed"), Some("1"));
    assert_eq!(resp.body_str(), "root(b(#,#),a(#,#))\n");

    // Now finish the pipelined body; the second (batch) response answers.
    raw.write_all(&second_body.as_bytes()[8..]).unwrap();
    raw.flush().unwrap();
    let resp = xtt_serve::http::read_response(&mut reader).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_str().lines().count(), 4096);

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// A streamed response to a client that stops reading is aborted by the
/// write deadline and counted in `/stats` `streaming.write_timeouts`.
#[test]
fn slow_stream_readers_trip_the_write_deadline() {
    use std::io::Write;

    let opts = ServeOptions {
        stream_write_deadline: Duration::from_millis(250),
        ..small_opts()
    };
    let (client, runner, _handle) = boot(opts);
    client
        .put_transducer("copy", &examples::monadic_to_binary().dtop.to_string())
        .unwrap();

    // Each document's output is a full binary tree of ~4M nodes (~12MB
    // of text): far beyond what the kernel socket buffers absorb, so an
    // unread connection must block the writer past the deadline.
    let mut deep = String::from("e");
    for _ in 0..21 {
        deep = format!("f({deep})");
    }
    let body = format!("{deep}\n{deep}\n{deep}\n{deep}\n");
    let mut raw = std::net::TcpStream::connect(client.addr()).unwrap();
    let head = format!(
        "POST /transform/copy?mode=stream HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    raw.write_all(head.as_bytes()).unwrap();
    raw.write_all(body.as_bytes()).unwrap();
    raw.flush().unwrap();

    // Stall: never read. The server must give up on its own.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let json = client.stats().unwrap().body_str();
        if json.contains("\"write_timeouts\":1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "write deadline never tripped: {json}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    drop(raw);

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}
