//! Observability integration tests: `/stats` and `/metrics` are two
//! views of one registry, so they can never disagree — including under
//! concurrent hammering — and sampled requests carry their stage
//! breakdown in response headers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xtt_engine::EngineOptions;
use xtt_serve::{ServeClient, ServeOptions, Server};
use xtt_transducer::examples;

fn boot(opts: ServeOptions) -> (ServeClient, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let runner = std::thread::spawn(move || server.run());
    let client = ServeClient::new(addr)
        .unwrap()
        .with_timeout(Duration::from_secs(10));
    assert!(client.wait_ready(Duration::from_secs(5)), "server not up");
    (client, runner)
}

fn opts(trace_sample: u64) -> ServeOptions {
    ServeOptions {
        workers: 4,
        queue_capacity: 64,
        trace_sample,
        engine: EngineOptions {
            workers: 2,
            ..ServeOptions::default().engine
        },
        ..ServeOptions::default()
    }
}

/// The value of one exposition series, e.g.
/// `xtt_documents_total` or `xtt_endpoint_requests_total{endpoint="transform"}`.
fn metric_value(text: &str, series: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?.strip_prefix(' ')?;
        rest.parse::<f64>().ok().map(|v| v as u64)
    })
}

/// Every exposition line is a comment (`# HELP` / `# TYPE`) or a
/// `series value` sample with a numeric value.
fn lint_exposition(text: &str) {
    assert!(!text.is_empty(), "empty /metrics body");
    for line in text.lines() {
        if let Some(comment) = line.strip_prefix('#') {
            assert!(
                comment.starts_with(" HELP ") || comment.starts_with(" TYPE "),
                "bad exposition comment: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition sample without a value: {line}");
        });
        assert!(
            series
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "bad series name: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value: {line}"
        );
    }
}

/// The concurrent hammer: transform traffic on four connections while
/// two scrapers pound `/stats` and `/metrics`. Every `/stats` snapshot
/// must parse as valid JSON (no torn writes, no trailing commas under
/// concurrency), every `/metrics` body must lint; once traffic
/// quiesces, the two views must agree on every shared counter.
#[test]
fn hammer_stats_snapshots_parse_and_agree_with_metrics() {
    let (client, runner) = boot(opts(3));
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    let addr = client.addr();
    let body = {
        let doc = examples::flip_input(2, 2).to_string();
        format!("{doc}\n{doc}\n{doc}\n")
    };

    let traffic: Vec<_> = (0..4)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let c = ServeClient::new(addr)
                    .unwrap()
                    .with_timeout(Duration::from_secs(10));
                for _ in 0..40 {
                    let resp = c.request("POST", "/transform/flip", &body).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body_str());
                }
            })
        })
        .collect();

    let done = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..2)
        .map(|scraper| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let c = ServeClient::new(addr)
                    .unwrap()
                    .with_timeout(Duration::from_secs(10));
                let mut scrapes = 0u64;
                while !done.load(Ordering::Relaxed) {
                    if scraper == 0 {
                        let resp = c.stats().unwrap();
                        assert_eq!(resp.status, 200);
                        let snapshot: serde_json::Value = serde_json::from_str(&resp.body_str())
                            .expect("mid-traffic /stats is not valid JSON");
                        assert!(snapshot["documents"]["total"].is_u64());
                    } else {
                        let resp = c.request("GET", "/metrics", "").unwrap();
                        assert_eq!(resp.status, 200);
                        lint_exposition(&resp.body_str());
                    }
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    for t in traffic {
        t.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for s in scrapers {
        assert!(s.join().unwrap() > 0, "scraper never got a snapshot in");
    }

    // Quiesced: both views must report identical shared counters.
    let stats: serde_json::Value =
        serde_json::from_str(&client.stats().unwrap().body_str()).unwrap();
    let metrics = client.request("GET", "/metrics", "").unwrap().body_str();
    lint_exposition(&metrics);
    let pairs: &[(&str, &serde_json::Value)] = &[
        ("xtt_documents_total", &stats["documents"]["total"]),
        ("xtt_document_errors_total", &stats["documents"]["errors"]),
        (
            "xtt_endpoint_requests_total{endpoint=\"transform\"}",
            &stats["endpoints"]["transform"]["count"],
        ),
        (
            "xtt_traces_sampled_total",
            &stats["tracing"]["traces_sampled"],
        ),
        ("xtt_transducers_registered", &stats["transducers"]),
        ("xtt_queue_capacity", &stats["queue"]["capacity"]),
        ("xtt_handler_panics_total", &stats["handler_panics"]),
    ];
    for (series, stat) in pairs {
        assert_eq!(
            metric_value(&metrics, series),
            stat.as_u64(),
            "/stats and /metrics disagree on {series}"
        );
    }
    assert_eq!(stats["documents"]["total"].as_u64(), Some(4 * 40 * 3));
    // 1-in-3 sampling over 160 transform requests.
    let sampled = stats["tracing"]["traces_sampled"].as_u64().unwrap();
    assert!(sampled > 0, "no traces sampled at 1-in-3");

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}

/// A traced request answers with its id and per-stage timing; healthz
/// reports the start time the same registry exposes.
#[test]
fn traced_request_carries_trace_headers_with_stage_breakdown() {
    let (client, runner) = boot(opts(1));
    client
        .put_transducer("flip", &examples::flip().dtop.to_string())
        .unwrap();
    let doc = examples::flip_input(3, 2).to_string();
    let resp = client.request("POST", "/transform/flip", &doc).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let id = resp
        .header("x-xtt-trace-id")
        .expect("traced response missing X-Xtt-Trace-Id");
    assert_eq!(id.len(), 16, "trace id not 16 hex digits: {id}");
    assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "not hex: {id}");

    let timing = resp
        .header("server-timing")
        .expect("traced response missing Server-Timing");
    for stage in ["tokenize;dur=", "eval;dur=", "emit;dur="] {
        assert!(timing.contains(stage), "missing {stage} in: {timing}");
    }

    // healthz carries the same start time /stats and /metrics expose.
    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    let health: serde_json::Value = serde_json::from_str(&health.body_str()).unwrap();
    assert_eq!(health["ok"], serde_json::Value::Bool(true));
    let stats: serde_json::Value =
        serde_json::from_str(&client.stats().unwrap().body_str()).unwrap();
    assert_eq!(health["started_at"], stats["started_at"]);

    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
}
