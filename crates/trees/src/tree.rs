//! Immutable ranked trees with cached structural hashes.
//!
//! [`Tree`] is the ground-term type `T_F` of the paper (Section 2). Trees are
//! reference-counted and immutable, so subtrees are shared freely: taking a
//! subtree, substituting a leaf, or copying a subtree into several output
//! positions (as copying transducers do) never deep-copies. Every node caches
//! its structural hash, size, and height, giving an O(1) fast path for
//! equality and hashing — the hot operations in residual and common-prefix
//! computations.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use crate::path::NodePath;
use crate::symbol::Symbol;

#[derive(Debug)]
struct NodeInner {
    symbol: Symbol,
    children: Vec<Tree>,
    hash: u64,
    size: u64,
    height: u32,
}

/// An immutable, cheaply clonable ranked tree.
#[derive(Clone)]
pub struct Tree(Rc<NodeInner>);

impl Drop for NodeInner {
    fn drop(&mut self) {
        // Iterative drop: path-shaped trees (e.g. monadic encodings of long
        // strings) would otherwise overflow the stack in the default
        // recursive drop.
        let mut stack = std::mem::take(&mut self.children);
        while let Some(Tree(rc)) = stack.pop() {
            if let Ok(mut inner) = Rc::try_unwrap(rc) {
                stack.append(&mut inner.children);
            }
        }
    }
}

fn mix(mut h: u64, v: u64) -> u64 {
    // FNV-ish mixing; quality is sufficient for a fast-path discriminator
    // (equality always falls back to a structural comparison).
    h ^= v;
    h = h.wrapping_mul(0x100_0000_01b3);
    h ^ (h >> 29)
}

impl Tree {
    /// Builds the tree `symbol(children...)`.
    pub fn new(symbol: Symbol, children: Vec<Tree>) -> Tree {
        let mut hash = mix(0xcbf2_9ce4_8422_2325, u64::from(symbol.id()));
        let mut size = 1u64;
        let mut height = 0u32;
        for child in &children {
            hash = mix(hash, child.structural_hash());
            size += child.size();
            height = height.max(child.height() + 1);
        }
        Tree(Rc::new(NodeInner {
            symbol,
            children,
            hash,
            size,
            height,
        }))
    }

    /// Builds a leaf (rank-0) tree.
    pub fn leaf(symbol: Symbol) -> Tree {
        Tree::new(symbol, Vec::new())
    }

    /// Convenience: builds a leaf from a name.
    pub fn leaf_named(name: &str) -> Tree {
        Tree::leaf(Symbol::new(name))
    }

    /// Convenience: builds `name(children...)`.
    pub fn node(name: &str, children: Vec<Tree>) -> Tree {
        Tree::new(Symbol::new(name), children)
    }

    /// The root symbol.
    pub fn symbol(&self) -> Symbol {
        self.0.symbol
    }

    /// The children, in order.
    pub fn children(&self) -> &[Tree] {
        &self.0.children
    }

    /// The `i`-th child (0-based), if it exists.
    pub fn child(&self, i: usize) -> Option<&Tree> {
        self.0.children.get(i)
    }

    /// Number of children of the root.
    pub fn arity(&self) -> usize {
        self.0.children.len()
    }

    /// True if the root has no children.
    pub fn is_leaf(&self) -> bool {
        self.0.children.is_empty()
    }

    /// Total number of nodes.
    pub fn size(&self) -> u64 {
        self.0.size
    }

    /// Height (a leaf has height 0).
    pub fn height(&self) -> u32 {
        self.0.height
    }

    /// Cached structural hash. Equal trees have equal hashes.
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }

    /// True if `self` and `other` are the same allocation.
    pub fn ptr_eq(&self, other: &Tree) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    /// A stable address for memoization keyed on shared subtrees.
    pub fn addr(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// The subtree at `path` (`π⁻¹s` in the paper), if `path` is a node of
    /// `self`. Cheap: shares the subtree.
    pub fn subtree_at(&self, path: &NodePath) -> Option<Tree> {
        let mut cur = self;
        for &i in path.indices() {
            cur = cur.child(i as usize)?;
        }
        Some(cur.clone())
    }

    /// The label at `path` (`s[π]`), if `path` is a node of `self`.
    pub fn label_at(&self, path: &NodePath) -> Option<Symbol> {
        self.node_at(path).map(Tree::symbol)
    }

    fn node_at(&self, path: &NodePath) -> Option<&Tree> {
        let mut cur = self;
        for &i in path.indices() {
            cur = cur.child(i as usize)?;
        }
        Some(cur)
    }

    /// Returns a tree equal to `self` except that the subtree at `path` is
    /// replaced by `replacement`. Returns `None` if `path` is not a node.
    /// Only the spine from the root to `path` is rebuilt.
    pub fn replace_at(&self, path: &NodePath, replacement: Tree) -> Option<Tree> {
        fn go(node: &Tree, indices: &[u32], replacement: Tree) -> Option<Tree> {
            match indices.split_first() {
                None => Some(replacement),
                Some((&i, rest)) => {
                    let i = i as usize;
                    node.child(i)?;
                    let mut children = node.children().to_vec();
                    children[i] = go(&children[i], rest, replacement)?;
                    Some(Tree::new(node.symbol(), children))
                }
            }
        }
        go(self, path.indices(), replacement)
    }

    /// Pre-order iterator over all subtree handles (root first).
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder { stack: vec![self] }
    }

    /// All node paths of the tree, pre-order.
    pub fn node_paths(&self) -> Vec<NodePath> {
        let mut out = Vec::with_capacity(self.size() as usize);
        let mut stack: Vec<(NodePath, &Tree)> = vec![(NodePath::root(), self)];
        while let Some((p, t)) = stack.pop() {
            for (i, c) in t.children().iter().enumerate().rev() {
                stack.push((p.child(i as u32), c));
            }
            out.push(p);
        }
        out
    }

    /// Replaces every leaf whose symbol appears in `mapping` with the mapped
    /// tree — the substitution `[f₁ ← s₁, …, fₙ ← sₙ]` of Section 2. Inner
    /// nodes are never replaced, matching the paper (substitution is on
    /// rank-0 symbols).
    pub fn substitute_leaves(&self, mapping: &std::collections::HashMap<Symbol, Tree>) -> Tree {
        if self.is_leaf() {
            return match mapping.get(&self.symbol()) {
                Some(t) => t.clone(),
                None => self.clone(),
            };
        }
        // Fast path: if no mapped symbol occurs in this subtree, reuse it.
        if !self.contains_any_leaf(mapping) {
            return self.clone();
        }
        let children = self
            .children()
            .iter()
            .map(|c| c.substitute_leaves(mapping))
            .collect();
        Tree::new(self.symbol(), children)
    }

    fn contains_any_leaf(&self, mapping: &std::collections::HashMap<Symbol, Tree>) -> bool {
        if self.is_leaf() {
            return mapping.contains_key(&self.symbol());
        }
        self.children().iter().any(|c| c.contains_any_leaf(mapping))
    }

    /// Counts occurrences of leaves labeled `symbol`.
    pub fn count_leaves(&self, symbol: Symbol) -> usize {
        if self.is_leaf() {
            return usize::from(self.symbol() == symbol);
        }
        self.children().iter().map(|c| c.count_leaves(symbol)).sum()
    }
}

/// Pre-order iterator over subtrees.
pub struct Preorder<'a> {
    stack: Vec<&'a Tree>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = &'a Tree;

    fn next(&mut self) -> Option<&'a Tree> {
        let t = self.stack.pop()?;
        self.stack.extend(t.children().iter().rev());
        Some(t)
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Tree) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        if self.0.hash != other.0.hash || self.0.size != other.0.size {
            return false;
        }
        self.0.symbol == other.0.symbol && self.0.children == other.0.children
    }
}

impl Eq for Tree {}

impl Hash for Tree {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())?;
        if !self.is_leaf() {
            write!(f, "(")?;
            for (i, c) in self.children().iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl serde::Serialize for Tree {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for Tree {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Tree, D::Error> {
        let text = String::deserialize(deserializer)?;
        crate::parse::parse_tree(&text).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn flip_input() -> Tree {
        // root(a(#,#), b(#,#))
        let h = Tree::leaf_named("#");
        Tree::node(
            "root",
            vec![
                Tree::node("a", vec![h.clone(), h.clone()]),
                Tree::node("b", vec![h.clone(), h]),
            ],
        )
    }

    #[test]
    fn size_height_arity() {
        let t = flip_input();
        assert_eq!(t.size(), 7);
        assert_eq!(t.height(), 2);
        assert_eq!(t.arity(), 2);
        assert!(!t.is_leaf());
        assert!(Tree::leaf_named("#").is_leaf());
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(flip_input(), flip_input());
        assert_ne!(flip_input(), Tree::leaf_named("root"));
        let a = flip_input();
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.structural_hash(), flip_input().structural_hash());
    }

    #[test]
    fn subtree_and_label_access() {
        let t = flip_input();
        let p = NodePath::from_indices(&[0]);
        assert_eq!(t.label_at(&p).unwrap().name(), "a");
        let sub = t.subtree_at(&p).unwrap();
        assert_eq!(sub.to_string(), "a(#,#)");
        assert_eq!(t.subtree_at(&NodePath::root()).unwrap(), t);
        assert!(t.subtree_at(&NodePath::from_indices(&[5])).is_none());
        assert!(t.subtree_at(&NodePath::from_indices(&[0, 0, 0])).is_none());
    }

    #[test]
    fn replace_rebuilds_spine_only() {
        let t = flip_input();
        let c = Tree::leaf_named("c");
        let t2 = t.replace_at(&NodePath::from_indices(&[1, 0]), c).unwrap();
        assert_eq!(t2.to_string(), "root(a(#,#),b(c,#))");
        // untouched subtree is shared
        assert!(t.child(0).unwrap().ptr_eq(t2.child(0).unwrap()));
        assert!(t
            .replace_at(&NodePath::from_indices(&[9]), Tree::leaf_named("x"))
            .is_none());
    }

    #[test]
    fn display_matches_term_syntax() {
        assert_eq!(flip_input().to_string(), "root(a(#,#),b(#,#))");
        assert_eq!(Tree::leaf_named("#").to_string(), "#");
    }

    #[test]
    fn substitution_replaces_leaves_only() {
        let t = flip_input();
        let mut map = HashMap::new();
        map.insert(Symbol::new("#"), Tree::leaf_named("z"));
        let t2 = t.substitute_leaves(&map);
        assert_eq!(t2.to_string(), "root(a(z,z),b(z,z))");
        // inner "a" nodes are untouched even if "a" is mapped
        let mut map2 = HashMap::new();
        map2.insert(Symbol::new("a"), Tree::leaf_named("z"));
        assert_eq!(t.substitute_leaves(&map2), t);
    }

    #[test]
    fn preorder_visits_all_nodes() {
        let t = flip_input();
        let symbols: Vec<&str> = t.preorder().map(|n| n.symbol().name()).collect();
        assert_eq!(symbols, vec!["root", "a", "#", "#", "b", "#", "#"]);
        assert_eq!(t.node_paths().len(), 7);
    }

    #[test]
    fn count_leaves_counts_only_leaves() {
        let t = flip_input();
        assert_eq!(t.count_leaves(Symbol::new("#")), 4);
        assert_eq!(t.count_leaves(Symbol::new("a")), 0);
    }
}
