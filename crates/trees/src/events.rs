//! Pre-order event streams over ranked trees.
//!
//! A tree is equivalently a well-nested sequence of `Open(symbol)` /
//! `Close` events — the ranked-tree analogue of SAX events. The streaming
//! evaluator in `xtt-engine` consumes these instead of materialized
//! [`Tree`]s, so a document can be transformed while it is being parsed,
//! keeping only the spine of the input in memory.

use std::fmt;

use crate::symbol::Symbol;
use crate::tree::Tree;

/// One event of a pre-order tree traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeEvent {
    /// A node with the given symbol starts; its children follow, then the
    /// matching [`TreeEvent::Close`].
    Open(Symbol),
    /// The most recently opened node ends.
    Close,
}

impl Tree {
    /// Iterates over the pre-order event stream of this tree. A tree with
    /// `n` nodes yields exactly `2n` events.
    pub fn events(&self) -> Events<'_> {
        Events {
            stack: vec![EvItem::Node(self)],
        }
    }
}

enum EvItem<'a> {
    Node(&'a Tree),
    Close,
}

/// Iterator produced by [`Tree::events`].
pub struct Events<'a> {
    stack: Vec<EvItem<'a>>,
}

impl Iterator for Events<'_> {
    type Item = TreeEvent;

    fn next(&mut self) -> Option<TreeEvent> {
        match self.stack.pop()? {
            EvItem::Close => Some(TreeEvent::Close),
            EvItem::Node(t) => {
                self.stack.push(EvItem::Close);
                for c in t.children().iter().rev() {
                    self.stack.push(EvItem::Node(c));
                }
                Some(TreeEvent::Open(t.symbol()))
            }
        }
    }
}

/// Errors raised by [`tree_from_events`] on ill-nested streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventError {
    /// `Close` arrived with no open node.
    UnbalancedClose,
    /// The stream ended before the root was closed.
    UnexpectedEnd,
    /// Events continued after the root closed (or the stream was empty).
    NotASingleTree,
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::UnbalancedClose => write!(f, "close event without a matching open"),
            EventError::UnexpectedEnd => write!(f, "event stream ended inside an open node"),
            EventError::NotASingleTree => write!(f, "event stream is not exactly one tree"),
        }
    }
}

impl std::error::Error for EventError {}

/// Rebuilds a tree from a pre-order event stream (inverse of
/// [`Tree::events`]).
pub fn tree_from_events(events: impl IntoIterator<Item = TreeEvent>) -> Result<Tree, EventError> {
    // Stack of nodes under construction; completed roots fall into `done`.
    let mut stack: Vec<(Symbol, Vec<Tree>)> = Vec::new();
    let mut done: Option<Tree> = None;
    for ev in events {
        if done.is_some() {
            return Err(EventError::NotASingleTree);
        }
        match ev {
            TreeEvent::Open(sym) => stack.push((sym, Vec::new())),
            TreeEvent::Close => {
                let (sym, children) = stack.pop().ok_or(EventError::UnbalancedClose)?;
                let t = Tree::new(sym, children);
                match stack.last_mut() {
                    Some((_, siblings)) => siblings.push(t),
                    None => done = Some(t),
                }
            }
        }
    }
    if !stack.is_empty() {
        return Err(EventError::UnexpectedEnd);
    }
    done.ok_or(EventError::NotASingleTree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;

    #[test]
    fn events_roundtrip() {
        for text in ["#", "root(a(#,#),b(#,b(#,#)))", "f(g(a),g(a))"] {
            let t = parse_tree(text).unwrap();
            assert_eq!(t.events().count() as u64, 2 * t.size());
            assert_eq!(tree_from_events(t.events()).unwrap(), t);
        }
    }

    #[test]
    fn events_are_preorder() {
        let t = parse_tree("f(g(a),b)").unwrap();
        let evs: Vec<TreeEvent> = t.events().collect();
        use TreeEvent::*;
        assert_eq!(
            evs,
            vec![
                Open(Symbol::new("f")),
                Open(Symbol::new("g")),
                Open(Symbol::new("a")),
                Close,
                Close,
                Open(Symbol::new("b")),
                Close,
                Close,
            ]
        );
    }

    #[test]
    fn deep_tree_events_no_overflow() {
        let mut t = Tree::leaf_named("z");
        for _ in 0..100_000 {
            t = Tree::node("s", vec![t]);
        }
        assert_eq!(t.events().count(), 2 * 100_001);
        assert_eq!(tree_from_events(t.events()).unwrap().size(), t.size());
    }

    #[test]
    fn malformed_streams_are_rejected() {
        use TreeEvent::*;
        let f = Symbol::new("f");
        assert_eq!(tree_from_events([Close]), Err(EventError::UnbalancedClose));
        assert_eq!(tree_from_events([Open(f)]), Err(EventError::UnexpectedEnd));
        assert_eq!(tree_from_events([]), Err(EventError::NotASingleTree));
        assert_eq!(
            tree_from_events([Open(f), Close, Open(f), Close]),
            Err(EventError::NotASingleTree)
        );
    }
}
