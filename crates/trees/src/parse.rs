//! Term-syntax parser for trees: `root(a(#,#),b(#,#))`.
//!
//! The printer ([`Tree`]'s `Display`) and this parser round-trip. Symbol
//! names containing structural characters (parentheses, commas, quotes,
//! whitespace) — which occur in DTD-encoded alphabets like `"(a*,b*)"` — are
//! written and read as double-quoted strings with `\"` and `\\` escapes.

use std::fmt;

use crate::symbol::Symbol;
use crate::tree::Tree;

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_symbol(&mut self) -> Result<Symbol, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.parse_quoted(),
            Some(c) if !is_structural(c) => self.parse_bare(),
            Some(c) => Err(self.error(format!("expected symbol, found {:?}", c as char))),
            None => Err(self.error("expected symbol, found end of input")),
        }
    }

    fn parse_quoted(&mut self) -> Result<Symbol, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let mut name = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Symbol::new(&name)),
                Some(b'\\') => match self.bump() {
                    Some(c @ (b'"' | b'\\')) => name.push(c as char),
                    Some(c) => {
                        return Err(self.error(format!("invalid escape \\{}", c as char)));
                    }
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => name.push(c as char),
                None => return Err(self.error("unterminated quoted symbol")),
            }
        }
    }

    fn parse_bare(&mut self) -> Result<Symbol, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_structural(c) || c.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("symbol is not valid UTF-8"))?;
        Ok(Symbol::new(name))
    }

    fn parse_tree(&mut self) -> Result<Tree, ParseError> {
        let symbol = self.parse_symbol()?;
        self.skip_ws();
        if self.peek() != Some(b'(') {
            return Ok(Tree::leaf(symbol));
        }
        self.bump();
        let mut children = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b')') {
            self.bump();
            return Ok(Tree::new(symbol, children));
        }
        loop {
            children.push(self.parse_tree()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b')') => break,
                Some(c) => {
                    return Err(self.error(format!("expected ',' or ')', found {:?}", c as char)));
                }
                None => return Err(self.error("unterminated argument list")),
            }
        }
        Ok(Tree::new(symbol, children))
    }
}

fn is_structural(c: u8) -> bool {
    matches!(c, b'(' | b')' | b',' | b'"')
}

/// Parses a tree in term syntax. The whole input must be consumed.
pub fn parse_tree(input: &str) -> Result<Tree, ParseError> {
    let mut parser = Parser::new(input);
    let tree = parser.parse_tree()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing input after tree"));
    }
    Ok(tree)
}

/// Parses several trees separated by whitespace or semicolons.
pub fn parse_trees(input: &str) -> Result<Vec<Tree>, ParseError> {
    let mut parser = Parser::new(input);
    let mut out = Vec::new();
    loop {
        parser.skip_ws();
        while parser.peek() == Some(b';') {
            parser.bump();
            parser.skip_ws();
        }
        if parser.peek().is_none() {
            return Ok(out);
        }
        out.push(parser.parse_tree()?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_leaves_and_nodes() {
        assert_eq!(parse_tree("#").unwrap().to_string(), "#");
        assert_eq!(
            parse_tree("root(a(#,#),b(#,#))").unwrap().to_string(),
            "root(a(#,#),b(#,#))"
        );
    }

    #[test]
    fn tolerates_whitespace() {
        let t = parse_tree("  f ( a , g ( b ) ) ").unwrap();
        assert_eq!(t.to_string(), "f(a,g(b))");
    }

    #[test]
    fn quoted_symbols_roundtrip() {
        let input = r#"root("(a*,b*)"("a*"(a,"a*"(#,#)),"b*"(b,"b*"(#,#))))"#;
        let t = parse_tree(input).unwrap();
        // canonical form: only names with structural characters stay quoted
        let canonical = r#"root("(a*,b*)"(a*(a,a*(#,#)),b*(b,b*(#,#))))"#;
        assert_eq!(t.to_string(), canonical);
        assert_eq!(parse_tree(canonical).unwrap(), t);
        assert_eq!(t.child(0).unwrap().symbol().name(), "(a*,b*)");
    }

    #[test]
    fn quoted_escapes() {
        let t = parse_tree(r#""a\"b""#).unwrap();
        assert_eq!(t.symbol().name(), "a\"b");
        let t2 = parse_tree(r#""a\\b""#).unwrap();
        assert_eq!(t2.symbol().name(), "a\\b");
    }

    #[test]
    fn explicit_empty_args_is_leaf_like() {
        let t = parse_tree("f()").unwrap();
        assert!(t.is_leaf());
        assert_eq!(t.to_string(), "f");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_tree("").is_err());
        assert!(parse_tree("f(a").is_err());
        assert!(parse_tree("f(a,)").is_err());
        assert!(parse_tree("f)x").is_err());
        assert!(parse_tree("f(a) trailing").is_err());
        assert!(parse_tree("\"unterminated").is_err());
    }

    #[test]
    fn parse_many() {
        let ts = parse_trees("a; b(c) \n d").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[1].to_string(), "b(c)");
        assert!(parse_trees("   ").unwrap().is_empty());
    }

    #[test]
    fn display_parse_roundtrip_on_nested() {
        let s = "L(B(A(P),T(P),Y(P)),B(A(P),T(P),Y(P)))";
        assert_eq!(parse_tree(s).unwrap().to_string(), s);
    }
}
