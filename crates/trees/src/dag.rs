//! Minimal DAG representation of trees.
//!
//! The paper (Section 1, "Learning Algorithm") notes that a dtop can turn a
//! monadic input of height *n* into a full binary tree of height *n*, so
//! characteristic samples can contain exponentially large output trees — and
//! that this is avoided by representing outputs as their minimal DAGs, which
//! a dtop produces in time linear in the input size (cf. [Maneth & Busatto,
//! FOSSACS 2004]).
//!
//! [`TreeDag`] is a hash-consing arena: structurally equal subtrees are
//! stored exactly once. Insertion of an [`crate::tree::Tree`] is linear in
//! the number of *distinct* subtrees thanks to a memo table keyed on the
//! `Rc` address of shared nodes (outputs of copying transducers are already
//! heavily shared in memory).

use std::collections::HashMap;
use std::fmt;

use crate::symbol::Symbol;
use crate::tree::Tree;

/// Identifier of a DAG node within one [`TreeDag`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DagId(u32);

impl DagId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct DagNode {
    symbol: Symbol,
    children: Vec<DagId>,
}

/// A hash-consing arena of tree nodes; the minimal DAG of every inserted
/// tree.
#[derive(Default)]
pub struct TreeDag {
    nodes: Vec<DagNode>,
    intern: HashMap<DagNode, DagId>,
    /// Memo from `Tree::addr()` to id, so shared subtrees are revisited O(1).
    tree_memo: HashMap<usize, DagId>,
    /// Per-node tree-unfolding size, maintained at intern time so
    /// [`TreeDag::tree_size`] is O(1) (saturating at `u64::MAX`).
    sizes: Vec<u64>,
}

impl TreeDag {
    pub fn new() -> TreeDag {
        TreeDag::default()
    }

    /// Number of distinct nodes stored (the DAG size).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Interns a node with already-interned children.
    pub fn intern_node(&mut self, symbol: Symbol, children: Vec<DagId>) -> DagId {
        for c in &children {
            assert!(c.index() < self.nodes.len(), "foreign DagId");
        }
        let node = DagNode { symbol, children };
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = DagId(u32::try_from(self.nodes.len()).expect("DAG too large"));
        self.intern.insert(node.clone(), id);
        let size = node
            .children
            .iter()
            .fold(1u64, |acc, c| acc.saturating_add(self.sizes[c.index()]));
        self.nodes.push(node);
        self.sizes.push(size);
        id
    }

    /// Inserts a tree, sharing all equal subtrees. Returns the root id.
    pub fn insert(&mut self, tree: &Tree) -> DagId {
        if let Some(&id) = self.tree_memo.get(&tree.addr()) {
            return id;
        }
        // Explicit stack to avoid recursion limits on path-shaped trees.
        enum Frame<'a> {
            Enter(&'a Tree),
            Exit(&'a Tree),
        }
        let mut stack = vec![Frame::Enter(tree)];
        let mut results: Vec<DagId> = Vec::new();
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(t) => {
                    if let Some(&id) = self.tree_memo.get(&t.addr()) {
                        results.push(id);
                        continue;
                    }
                    stack.push(Frame::Exit(t));
                    for c in t.children().iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Exit(t) => {
                    let k = t.arity();
                    let children = results.split_off(results.len() - k);
                    let id = self.intern_node(t.symbol(), children);
                    self.tree_memo.insert(t.addr(), id);
                    results.push(id);
                }
            }
        }
        debug_assert_eq!(results.len(), 1);
        results[0]
    }

    /// The symbol of a node.
    pub fn symbol(&self, id: DagId) -> Symbol {
        self.nodes[id.index()].symbol
    }

    /// The children of a node.
    pub fn children(&self, id: DagId) -> &[DagId] {
        &self.nodes[id.index()].children
    }

    /// The number of nodes of the *tree* unfolding rooted at `id`
    /// (may be exponentially larger than the DAG). O(1) — maintained at
    /// intern time — and saturating at `u64::MAX`: a 100-byte monadic
    /// input to a copying transducer is enough to overflow 64 bits, and
    /// callers use this to *bound* work.
    pub fn tree_size(&self, id: DagId) -> u64 {
        self.sizes[id.index()]
    }

    /// Number of distinct nodes reachable from `id` (the minimal-DAG size of
    /// the tree rooted there).
    pub fn reachable_count(&self, id: DagId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            count += 1;
            stack.extend(self.children(n).iter().copied());
        }
        count
    }

    /// Unfolds a DAG node back into a tree. Shared DAG nodes unfold into
    /// shared `Rc` subtrees, so this is linear in the DAG size.
    pub fn extract(&self, id: DagId) -> Tree {
        // Children have smaller ids than parents; build bottom-up.
        let mut built: Vec<Option<Tree>> = vec![None; id.index() + 1];
        for i in 0..=id.index() {
            let node = &self.nodes[i];
            let children = node
                .children
                .iter()
                .map(|c| built[c.index()].clone().expect("child built before parent"))
                .collect();
            built[i] = Some(Tree::new(node.symbol, children));
        }
        built[id.index()].take().expect("root built")
    }

    /// Compression statistics for the tree rooted at `id`.
    pub fn stats(&self, id: DagId) -> DagStats {
        let tree_size = self.tree_size(id);
        let dag_size = self.reachable_count(id) as u64;
        DagStats {
            tree_size,
            dag_size,
        }
    }
}

/// Tree-vs-DAG size comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagStats {
    pub tree_size: u64,
    pub dag_size: u64,
}

impl DagStats {
    /// `tree_size / dag_size` as a float.
    pub fn compression_ratio(&self) -> f64 {
        self.tree_size as f64 / self.dag_size as f64
    }
}

impl fmt::Debug for TreeDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreeDag")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tree;

    fn full_binary(n: u32) -> Tree {
        // Built with sharing: both children are the same Rc.
        let mut t = Tree::leaf_named("leaf");
        for _ in 0..n {
            t = Tree::node("bin", vec![t.clone(), t]);
        }
        t
    }

    #[test]
    fn insert_shares_equal_subtrees() {
        let mut dag = TreeDag::new();
        let id = dag.insert(&parse_tree("f(g(a),g(a))").unwrap());
        // nodes: a, g(a), f — the two g(a) children collapse.
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.tree_size(id), 5);
        assert_eq!(dag.reachable_count(id), 3);
    }

    #[test]
    fn exponential_tree_linear_dag() {
        let mut dag = TreeDag::new();
        let n = 16;
        let id = dag.insert(&full_binary(n));
        let stats = dag.stats(id);
        assert_eq!(stats.tree_size, (1u64 << (n + 1)) - 1);
        assert_eq!(stats.dag_size, u64::from(n) + 1);
        assert!(stats.compression_ratio() > 1000.0);
    }

    #[test]
    fn extract_roundtrips() {
        let mut dag = TreeDag::new();
        let t = parse_tree("root(a(#,#),b(#,a(#,#)))").unwrap();
        let id = dag.insert(&t);
        assert_eq!(dag.extract(id), t);
    }

    #[test]
    fn repeated_insert_is_stable() {
        let mut dag = TreeDag::new();
        let t = parse_tree("f(a,b)").unwrap();
        let id1 = dag.insert(&t);
        let id2 = dag.insert(&t.clone());
        let id3 = dag.insert(&parse_tree("f(a,b)").unwrap());
        assert_eq!(id1, id2);
        assert_eq!(id1, id3);
        assert_eq!(dag.node_count(), 3);
    }

    #[test]
    fn multiple_trees_share_across_insertions() {
        let mut dag = TreeDag::new();
        dag.insert(&parse_tree("f(a,b)").unwrap());
        let before = dag.node_count();
        dag.insert(&parse_tree("g(a,b)").unwrap());
        // only the root g is new
        assert_eq!(dag.node_count(), before + 1);
    }

    #[test]
    fn deep_monadic_tree_no_stack_overflow() {
        let mut t = Tree::leaf_named("z");
        for _ in 0..200_000 {
            t = Tree::node("s", vec![t]);
        }
        let mut dag = TreeDag::new();
        let id = dag.insert(&t);
        assert_eq!(dag.node_count(), 200_001);
        assert_eq!(dag.tree_size(id), 200_001);
    }
}
