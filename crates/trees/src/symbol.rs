//! Interned symbols.
//!
//! Every node label, state name, or alphabet letter in the library is a
//! [`Symbol`]: a `Copy` handle into a process-global string interner. Interning
//! makes symbol comparison and hashing O(1) and keeps tree nodes small, which
//! matters because transducer evaluation and sample residual computation are
//! dominated by symbol comparisons.
//!
//! The global intern order is *not* used for any semantically meaningful
//! ordering (the paper's order `<` on paths is derived from per-alphabet
//! declaration order, see [`crate::alphabet::RankedAlphabet`]); it only
//! provides a stable `Ord` for deterministic iteration of hash maps after
//! sorting.

use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// An interned string, used for tree node labels and alphabet letters.
///
/// `Symbol` is `Copy` and 4 bytes wide. Two symbols are equal iff their names
/// are equal. The `Ord` instance is by interner id, which is stable within a
/// process but has no semantic meaning; use
/// [`RankedAlphabet::symbol_index`](crate::alphabet::RankedAlphabet::symbol_index)
/// for the declaration order the learning algorithms rely on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        // Interned names live for the whole process; the set of distinct
        // symbols in any workload is small and bounded, so leaking is the
        // standard interner trade-off (O(1) `name()` without locks or clones).
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(self.names.len()).expect("symbol interner overflow");
        self.names.push(leaked);
        self.ids.insert(leaked, id);
        id
    }
}

static INTERNER: RwLock<Option<Interner>> = RwLock::new(None);

fn with_interner<R>(f: impl FnOnce(&mut Interner) -> R) -> R {
    let mut guard = INTERNER.write().unwrap_or_else(|e| e.into_inner());
    let interner = guard.get_or_insert_with(|| Interner {
        names: Vec::new(),
        ids: HashMap::new(),
    });
    f(interner)
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    pub fn new(name: &str) -> Symbol {
        Symbol(with_interner(|i| i.intern(name)))
    }

    /// Returns the symbol for `name` only if it was interned before; never
    /// grows the interner. This is the entry point for *untrusted* input
    /// (e.g. arbitrary document text in a long-running server): unknown
    /// names can be mapped to a sentinel instead of leaking interner
    /// memory per distinct token.
    pub fn lookup(name: &str) -> Option<Symbol> {
        let guard = INTERNER.read().unwrap_or_else(|e| e.into_inner());
        guard
            .as_ref()
            .and_then(|i| i.ids.get(name).copied())
            .map(Symbol)
    }

    /// The symbol's name. O(1), no allocation.
    pub fn name(self) -> &'static str {
        let guard = INTERNER.read().unwrap_or_else(|e| e.into_inner());
        let interner = guard.as_ref().expect("symbol not interned");
        interner.names[self.0 as usize]
    }

    /// The raw interner id. Stable within a process; only useful as a compact
    /// map key.
    pub fn id(self) -> u32 {
        self.0
    }

    /// True if the name needs quoting in term syntax (contains characters
    /// that the term grammar treats as structure).
    pub fn needs_quoting(self) -> bool {
        let n = self.name();
        n.is_empty()
            || n.chars()
                .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '"' | '<' | '>'))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.name())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.needs_quoting() {
            write!(f, "{:?}", self.name())
        } else {
            f.write_str(self.name())
        }
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::new(name)
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.name())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Symbol, D::Error> {
        let name = String::deserialize(deserializer)?;
        Ok(Symbol::new(&name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("foo");
        let b = Symbol::new("foo");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.name(), "foo");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("left"), Symbol::new("right"));
    }

    #[test]
    fn lookup_never_interns() {
        assert_eq!(
            Symbol::lookup("never-interned-by-any-test-qzx"),
            None,
            "lookup must not create symbols"
        );
        let s = Symbol::new("lookup-roundtrip");
        assert_eq!(Symbol::lookup("lookup-roundtrip"), Some(s));
    }

    #[test]
    fn display_quotes_structured_names() {
        let plain = Symbol::new("root");
        let fancy = Symbol::new("(a*,b*)");
        assert_eq!(plain.to_string(), "root");
        assert_eq!(fancy.to_string(), "\"(a*,b*)\"");
        assert!(fancy.needs_quoting());
        assert!(!plain.needs_quoting());
    }

    #[test]
    fn symbol_ids_are_stable() {
        let s = Symbol::new("BOOK");
        let t = Symbol::new("BOOK");
        assert_eq!(s.id(), t.id());
    }

    #[test]
    fn hash_set_of_symbols() {
        use std::collections::HashSet;
        let set: HashSet<Symbol> = ["a", "b", "a", "c"]
            .iter()
            .map(|n| Symbol::new(n))
            .collect();
        assert_eq!(set.len(), 3);
    }
}
