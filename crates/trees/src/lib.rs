//! # xtt-trees
//!
//! Ranked trees and path machinery for the `xtt` workspace — the substrate
//! shared by the tree-automata, tree-transducer, learning, and XML crates.
//!
//! This crate implements Section 2 of *"A Learning Algorithm for Top-Down
//! XML Transformations"* (Lemay, Maneth, Niehren; PODS 2010):
//!
//! * [`symbol::Symbol`] — interned node labels;
//! * [`alphabet::RankedAlphabet`] — ranked alphabets `F` with the
//!   declaration order that underlies the paper's path order `<`;
//! * [`tree::Tree`] — the ground terms `T_F`, immutable and shared;
//! * [`path`] — node paths `π`, labeled paths `u ∈ F#*`, npaths `U = u·f`,
//!   and the order `<` of Section 8;
//! * [`prefix::PTree`] — trees over `G ∪ {⊥}` with the largest-common-prefix
//!   operation `⊔` of Section 3 (plus the transient `⊤` used by normal-form
//!   fixpoints);
//! * [`dag::TreeDag`] — minimal DAG representation of (possibly
//!   exponentially large) output trees;
//! * [`events::TreeEvent`] — pre-order `Open`/`Close` event streams, the
//!   SAX-style interface consumed by the streaming engine;
//! * [`parse`] — a term-syntax reader matching the `Display` writer;
//! * [`gen`] — deterministic enumeration and random generation of trees.

pub mod alphabet;
pub mod dag;
pub mod events;
pub mod gen;
pub mod parse;
pub mod path;
pub mod prefix;
pub mod symbol;
pub mod tree;

pub use alphabet::RankedAlphabet;
pub use dag::{DagId, DagStats, TreeDag};
pub use events::{tree_from_events, EventError, TreeEvent};
pub use parse::{parse_tree, parse_trees, ParseError};
pub use path::{FPath, NPath, NodePath, PathOrder, Step};
pub use prefix::{PLabel, PTree};
pub use symbol::Symbol;
pub use tree::Tree;
