//! Tree enumeration and random generation over a ranked alphabet.
//!
//! Used for workload generation in benches and for property-based tests.
//! Enumeration is by increasing size with a deterministic order (symbol
//! declaration order, then child combinations), which the distinguisher
//! search in `xtt-core` relies on to find *minimal* witnesses.

use rand::Rng;

use crate::alphabet::RankedAlphabet;
use crate::tree::Tree;

/// Enumerates all trees over `alphabet` in order of increasing size, up to
/// `max_count` trees and `max_size` nodes. Deterministic.
pub fn enumerate_trees(alphabet: &RankedAlphabet, max_count: usize, max_size: usize) -> Vec<Tree> {
    // by_size[n] = all trees with exactly n nodes (n >= 1)
    let mut by_size: Vec<Vec<Tree>> = vec![Vec::new(); max_size + 1];
    let mut out = Vec::new();
    for n in 1..=max_size {
        let mut bucket = Vec::new();
        for &symbol in alphabet.symbols() {
            let rank = alphabet.rank(symbol).unwrap();
            if rank == 0 {
                if n == 1 {
                    bucket.push(Tree::leaf(symbol));
                }
                continue;
            }
            if n < rank + 1 {
                continue;
            }
            // Distribute n-1 nodes over `rank` children, each >= 1.
            let mut combos: Vec<Vec<Tree>> = Vec::new();
            distribute(n - 1, rank, &by_size, &mut Vec::new(), &mut combos);
            for children in combos {
                bucket.push(Tree::new(symbol, children));
                if out.len() + bucket.len() >= max_count {
                    break;
                }
            }
            if out.len() + bucket.len() >= max_count {
                break;
            }
        }
        for t in &bucket {
            out.push(t.clone());
            if out.len() >= max_count {
                return out;
            }
        }
        by_size[n] = bucket;
    }
    out
}

fn distribute(
    total: usize,
    slots: usize,
    by_size: &[Vec<Tree>],
    prefix: &mut Vec<Tree>,
    out: &mut Vec<Vec<Tree>>,
) {
    if slots == 0 {
        if total == 0 {
            out.push(prefix.clone());
        }
        return;
    }
    let min_rest = slots - 1; // each remaining child needs >= 1 node
    for take in 1..=total.saturating_sub(min_rest) {
        for t in &by_size[take] {
            prefix.push(t.clone());
            distribute(total - take, slots - 1, by_size, prefix, out);
            prefix.pop();
        }
    }
}

/// Generates a random tree over `alphabet` with roughly `target_size` nodes.
///
/// The generator walks top-down: while below the budget it prefers non-leaf
/// symbols, then switches to constants. Panics if the alphabet has no
/// constant (no finite tree exists then).
pub fn random_tree<R: Rng + ?Sized>(
    alphabet: &RankedAlphabet,
    target_size: usize,
    rng: &mut R,
) -> Tree {
    let constants: Vec<_> = alphabet.constants().collect();
    assert!(
        !constants.is_empty(),
        "alphabet without constants has no finite trees"
    );
    let non_constants: Vec<_> = alphabet
        .symbols()
        .iter()
        .copied()
        .filter(|&s| alphabet.rank(s).unwrap() > 0)
        .collect();
    let mut budget = target_size as i64;
    gen_node(alphabet, &constants, &non_constants, &mut budget, rng)
}

fn gen_node<R: Rng + ?Sized>(
    alphabet: &RankedAlphabet,
    constants: &[crate::symbol::Symbol],
    non_constants: &[crate::symbol::Symbol],
    budget: &mut i64,
    rng: &mut R,
) -> Tree {
    *budget -= 1;
    if *budget <= 0 || non_constants.is_empty() {
        return Tree::leaf(constants[rng.gen_range(0..constants.len())]);
    }
    let symbol = non_constants[rng.gen_range(0..non_constants.len())];
    let rank = alphabet.rank(symbol).unwrap();
    let children = (0..rank)
        .map(|_| gen_node(alphabet, constants, non_constants, budget, rng))
        .collect();
    Tree::new(symbol, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn alpha() -> RankedAlphabet {
        RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0), ("b", 0)])
    }

    #[test]
    fn enumeration_is_by_increasing_size() {
        let trees = enumerate_trees(&alpha(), 50, 10);
        for w in trees.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
        // smallest trees first: the two constants
        assert_eq!(trees[0].to_string(), "a");
        assert_eq!(trees[1].to_string(), "b");
        // then size-2: g(a), g(b)
        assert_eq!(trees[2].to_string(), "g(a)");
        assert_eq!(trees[3].to_string(), "g(b)");
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let trees = enumerate_trees(&alpha(), 200, 12);
        let set: std::collections::HashSet<_> = trees.iter().cloned().collect();
        assert_eq!(set.len(), trees.len());
    }

    #[test]
    fn enumeration_counts_small_sizes() {
        // size 3 trees: f(a,a), f(a,b), f(b,a), f(b,b), g(g(a)), g(g(b))
        let trees = enumerate_trees(&alpha(), 10_000, 3);
        let size3 = trees.iter().filter(|t| t.size() == 3).count();
        assert_eq!(size3, 6);
    }

    #[test]
    fn enumeration_respects_max_count() {
        assert_eq!(enumerate_trees(&alpha(), 7, 20).len(), 7);
    }

    #[test]
    fn random_trees_are_well_formed_and_near_target() {
        let alpha = alpha();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let t = random_tree(&alpha, 50, &mut rng);
            for node in t.preorder() {
                assert_eq!(
                    alpha.rank(node.symbol()).unwrap(),
                    node.arity(),
                    "rank mismatch in generated tree"
                );
            }
            assert!(t.size() >= 1);
        }
    }

    #[test]
    fn random_tree_deterministic_for_seed() {
        let alpha = alpha();
        let t1 = random_tree(&alpha, 30, &mut StdRng::seed_from_u64(7));
        let t2 = random_tree(&alpha, 30, &mut StdRng::seed_from_u64(7));
        assert_eq!(t1, t2);
    }
}
